//! The experiment executor: compiles a parsed [`Spec`] into campaign
//! invocations and results files.
//!
//! Every simulated cell goes through
//! [`impatience_sim::runner::run_campaign`], which gives
//! each one panic isolation, optional checkpoint/resume, and fault
//! injection for free; without a checkpoint or faults the campaign path
//! is bit-identical to the plain trial runner, so the declarative
//! pipeline reproduces exactly what the retired per-figure binaries
//! wrote. Per-cell progress streams through the recorder as
//! [`Event::ExperimentDone`](impatience_obs::Event) events.

mod analytic;
mod homogeneous;
mod trace;

use std::path::PathBuf;
use std::time::Instant;

use impatience_obs::{Progress, Recorder, Sink};
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::policy::PolicyKind;
use impatience_sim::runner::{run_campaign, CampaignOptions, TrialAggregate};

use crate::error::ExpError;
use crate::spec::{Spec, SpecKind};
use crate::suite;

/// Where and how a spec executes.
pub struct ExecContext<'a, S: Sink> {
    /// Results directory.
    pub out_dir: PathBuf,
    /// Checkpoint directory; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Worker threads per campaign (`None` picks one per core).
    pub workers: Option<usize>,
    /// The CLI invocation, stored in checkpoints for `--resume` replay.
    pub cli_args: Vec<String>,
    /// Suppress per-artifact stdout notes.
    pub quiet: bool,
    /// Event/counter stream for per-cell progress.
    pub rec: &'a mut Recorder<S>,
    /// Live per-cell progress meter (stderr, TTY-gated; ticked at the
    /// same site that emits `ExperimentDone`). Use
    /// [`Progress::disabled`] when no live feedback is wanted.
    pub progress: Progress,
}

/// What a spec execution produced.
#[derive(Debug, Default)]
pub struct ExecReport {
    /// CSV paths written, in order.
    pub artifacts: Vec<PathBuf>,
    /// Cells completed.
    pub cells: usize,
    /// `(cell/policy, panic message)` of trials the campaigns skipped.
    pub skipped: Vec<(String, String)>,
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

impl<S: Sink> ExecContext<'_, S> {
    fn note(&self, msg: &str) {
        if !self.quiet {
            println!("{msg}");
        }
    }

    /// Run one `(cell, policy)` through the campaign runner.
    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &mut self,
        spec: &Spec,
        cell: &str,
        config: &SimConfig,
        source: &ContactSource,
        policy: &PolicyKind,
        trials: usize,
        base_seed: u64,
        report: &mut ExecReport,
    ) -> Result<TrialAggregate, ExpError> {
        let _span = impatience_obs::span!("cell");
        let label = policy.label();
        let options = CampaignOptions {
            checkpoint_path: self.checkpoint_dir.as_ref().map(|dir| {
                dir.join(format!(
                    "{}--{}--{}.ckpt",
                    spec.name,
                    slug(cell),
                    slug(&label)
                ))
            }),
            workers: self.workers,
            cli_args: self.cli_args.clone(),
            ..CampaignOptions::default()
        };
        let outcome = run_campaign(
            config, source, policy, trials, base_seed, &options, self.rec,
        )
        .map_err(|source| ExpError::Campaign {
            spec: spec.name.clone(),
            cell: format!("{cell}/{label}"),
            source,
        })?;
        for (k, msg) in outcome.skipped {
            report
                .skipped
                .push((format!("{cell}/{label} trial {k}"), msg));
        }
        // The checkpoint has served its purpose once the cell completes;
        // removing it keeps `--resume` directories from accumulating.
        if let Some(path) = &options.checkpoint_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(outcome.aggregate)
    }

    /// Run QCR plus a competitor list, returning `(label, aggregate)`
    /// pairs. All policies share `base_seed` (paired randomness) so
    /// their contact and demand realizations match trial-for-trial.
    #[allow(clippy::too_many_arguments)]
    fn policy_suite(
        &mut self,
        spec: &Spec,
        cell: &str,
        config: &SimConfig,
        source: &ContactSource,
        competitors: Vec<PolicyKind>,
        trials: usize,
        base_seed: u64,
        report: &mut ExecReport,
    ) -> Result<Vec<(String, TrialAggregate)>, ExpError> {
        let mut policies = vec![PolicyKind::qcr_default()];
        policies.extend(competitors);
        policies
            .into_iter()
            .map(|p| {
                let agg =
                    self.run_one(spec, cell, config, source, &p, trials, base_seed, report)?;
                Ok((p.label(), agg))
            })
            .collect()
    }

    /// Close a cell: bump the counter, emit the progress event.
    fn cell_done(
        &mut self,
        spec: &Spec,
        cell: &str,
        rows: u64,
        started: Instant,
        report: &mut ExecReport,
    ) {
        report.cells += 1;
        self.rec
            .experiment_done(&spec.name, cell, rows, started.elapsed().as_secs_f64());
        self.progress.tick(&format!("{}: {cell}", spec.name));
    }
}

impl Spec {
    /// Compile the spec's simulation configurations and validate them
    /// against the simulator's own rules
    /// ([`SimConfig::try_validate`]) without running anything.
    /// Analytic kinds and trace suites (whose node count only exists
    /// once the trace is generated) validate trivially.
    pub fn validate(&self) -> Result<(), ExpError> {
        // Mirror the campaign runner: resolve the run-time-sized profile
        // before validating (the builder defaults it to one node until
        // the population is known).
        let check = |config: &SimConfig, nodes: usize| -> Result<(), ExpError> {
            let result = if config.profile.nodes() == config.clients(nodes) {
                config.try_validate(nodes)
            } else {
                config.for_nodes(nodes).try_validate(nodes)
            };
            result.map_err(|source| ExpError::Config {
                spec: self.name.clone(),
                source,
            })
        };
        let need_trials = |trials: usize| {
            if trials == 0 {
                Err(ExpError::spec(&self.name, "trials must be at least 1"))
            } else {
                Ok(())
            }
        };
        match &self.kind {
            SpecKind::LossSweep(s) => {
                need_trials(s.trials)?;
                for sweep in &s.sweeps {
                    let utility =
                        crate::spec::family_utility(&self.name, &sweep.family, sweep.values[0])?;
                    let (config, source, _) = homogeneous::sweep_setting(s, utility);
                    check(&config, source.nodes())?;
                }
                Ok(())
            }
            SpecKind::MandateRouting(s) => {
                need_trials(s.trials)?;
                let utility: std::sync::Arc<dyn impatience_core::utility::DelayUtility> =
                    std::sync::Arc::new(impatience_core::utility::Power::new(s.alpha));
                let (config, source, _) = suite::paper_homogeneous_setting(utility, s.duration);
                check(&config, source.nodes())
            }
            SpecKind::QcrAblation(s) => {
                need_trials(s.trials)?;
                for family in &s.regimes {
                    let utility = crate::spec::utility_of(&self.name, family)?;
                    let (config, source, _) = suite::paper_homogeneous_setting(utility, s.duration);
                    check(&config, source.nodes())?;
                }
                Ok(())
            }
            SpecKind::Eviction(s) => {
                need_trials(s.trials)?;
                for family in &s.regimes {
                    let utility = crate::spec::utility_of(&self.name, family)?;
                    let (config, source, _) = suite::paper_homogeneous_setting(utility, s.duration);
                    check(&config, source.nodes())?;
                }
                Ok(())
            }
            SpecKind::Degraded(s) => {
                need_trials(s.trials)?;
                let utility = crate::spec::utility_of(&self.name, &s.utility)?;
                let (config, source, _) = suite::paper_homogeneous_setting(utility, s.duration);
                check(&config, source.nodes())
            }
            SpecKind::DynamicDemand(s) => {
                need_trials(s.trials)?;
                let utility = crate::spec::utility_of(&self.name, &s.utility)?;
                let config = SimConfig::builder(s.items, s.rho)
                    .demand(suite::pareto_demand(s.items))
                    .utility(utility)
                    .bin(100.0)
                    .warmup_fraction(0.0)
                    .build();
                check(&config, s.nodes)
            }
            SpecKind::TraceSuite(s) => need_trials(s.trials),
            SpecKind::UtilityCurves(_)
            | SpecKind::AllocExponent(_)
            | SpecKind::ClosedForms(_)
            | SpecKind::MixedCatalog(_) => Ok(()),
        }
    }
}

/// Execute one spec, writing its artifacts into `ctx.out_dir`.
pub fn run_spec<S: Sink>(
    spec: &Spec,
    ctx: &mut ExecContext<'_, S>,
) -> Result<ExecReport, ExpError> {
    let _span = impatience_obs::span!("spec");
    let mut report = ExecReport::default();
    match &spec.kind {
        SpecKind::UtilityCurves(s) => analytic::utility_curves(spec, s, ctx, &mut report)?,
        SpecKind::AllocExponent(s) => analytic::alloc_exponent(spec, s, ctx, &mut report)?,
        SpecKind::ClosedForms(s) => analytic::closed_forms(spec, s, ctx, &mut report)?,
        SpecKind::MixedCatalog(s) => analytic::mixed_catalog(spec, s, ctx, &mut report)?,
        SpecKind::LossSweep(s) => homogeneous::loss_sweep(spec, s, ctx, &mut report)?,
        SpecKind::MandateRouting(s) => homogeneous::mandate_routing(spec, s, ctx, &mut report)?,
        SpecKind::QcrAblation(s) => homogeneous::qcr_ablation(spec, s, ctx, &mut report)?,
        SpecKind::DynamicDemand(s) => homogeneous::dynamic_demand(spec, s, ctx, &mut report)?,
        SpecKind::Eviction(s) => homogeneous::eviction(spec, s, ctx, &mut report)?,
        SpecKind::Degraded(s) => homogeneous::degraded(spec, s, ctx, &mut report)?,
        SpecKind::TraceSuite(s) => trace::trace_suite(spec, s, ctx, &mut report)?,
    }
    Ok(report)
}

/// Shared by the engines: write a CSV + manifest and note it.
#[allow(clippy::too_many_arguments)]
fn emit<S: Sink>(
    spec: &Spec,
    ctx: &ExecContext<'_, S>,
    report: &mut ExecReport,
    name: &str,
    header: &str,
    rows: &[String],
    seeds: &[u64],
    trials: usize,
) -> Result<(), ExpError> {
    let meta = crate::artifact::ArtifactMeta {
        spec,
        seeds,
        trials,
    };
    let write_span = impatience_obs::span!("write_csv");
    let path = crate::artifact::write_csv(&ctx.out_dir, name, header, rows, &meta)?;
    write_span.close();
    ctx.note(&format!("wrote {}", path.display()));
    report.artifacts.push(path);
    Ok(())
}
