//! Engines for the analytic (simulation-free) experiment kinds:
//! Fig. 1's utility curves, Fig. 2's allocation exponent, Table 1's
//! closed forms, and the mixed-catalog welfare comparison.

use std::sync::Arc;
use std::time::Instant;

use impatience_core::demand::{DemandRates, Popularity};
use impatience_core::solver::fixed::{proportional, sqrt_proportional, uniform};
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::solver::relaxed::relaxed_optimum;
use impatience_core::types::SystemModel;
use impatience_core::utility::{DelayUtility, Exponential, NegLog, Power, UtilityKind};
use impatience_core::welfare::{
    greedy_homogeneous_mixed, social_welfare_homogeneous_mixed, UtilityCatalog,
};
use impatience_obs::Sink;

use super::{emit, ExecContext, ExecReport};
use crate::error::ExpError;
use crate::spec::{
    utility_of, AllocExponentSpec, ClosedFormsSpec, MixedCatalogSpec, Spec, UtilityCurvesSpec,
};

/// Fig. 1: sample `h(t)` for each panel's utility families.
pub fn utility_curves<S: Sink>(
    spec: &Spec,
    s: &UtilityCurvesSpec,
    ctx: &mut ExecContext<'_, S>,
    report: &mut ExecReport,
) -> Result<(), ExpError> {
    for panel in &s.panels {
        let started = Instant::now();
        let utilities: Vec<Arc<dyn DelayUtility>> = panel
            .utilities
            .iter()
            .map(|u| utility_of(&spec.name, u))
            .collect::<Result<_, _>>()?;
        let mut header = "t".to_string();
        for name in &panel.labels {
            header.push(',');
            header.push_str(name);
        }
        let mut rows = Vec::new();
        for k in 1..=s.points {
            let t = s.t_step * k as f64;
            let mut row = format!("{t}");
            for u in &utilities {
                row.push_str(&format!(",{}", u.h(t)));
            }
            rows.push(row);
        }
        emit(spec, ctx, report, &panel.file, &header, &rows, &[], 0)?;
        ctx.cell_done(spec, &panel.file, rows.len() as u64, started, report);
    }
    Ok(())
}

/// Least-squares slope of `ln x` against `ln d`, skipping clamped points.
fn fit_slope(d: &[f64], x: &[f64]) -> f64 {
    let pts: Vec<(f64, f64)> = d
        .iter()
        .zip(x)
        .filter(|&(&di, &xi)| di > 0.0 && xi > 1e-7)
        .map(|(&di, &xi)| (di.ln(), xi.ln()))
        .collect();
    let n = pts.len() as f64;
    let (sx, sy) = pts
        .iter()
        .fold((0.0, 0.0), |(a, b), &(u, v)| (a + u, b + v));
    let (sxx, sxy) = pts
        .iter()
        .fold((0.0, 0.0), |(a, b), &(u, v)| (a + u * u, b + u * v));
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Fig. 2: the relaxed optimum satisfies `x̃_i ∝ d_i^{1/(2−α)}`
/// (Property 1 water-filling); fit the log-log slope and compare with
/// the analytic exponent. The α grid is carried as integer tenths so the
/// swept values are bit-exact; α = 1 is realized by NegLog.
pub fn alloc_exponent<S: Sink>(
    spec: &Spec,
    s: &AllocExponentSpec,
    ctx: &mut ExecContext<'_, S>,
    report: &mut ExecReport,
) -> Result<(), ExpError> {
    let started = Instant::now();
    let system = SystemModel::dedicated(s.clients, s.servers, s.rho, s.mu);
    let demand = Popularity::pareto(s.items, s.omega).demand_rates(1.0);
    let mut rows = Vec::new();
    for k in s.alpha_tenths.0..=s.alpha_tenths.1 {
        if k == 10 {
            continue; // α = 1 diverges for the power family; NegLog covers it below.
        }
        let alpha = 0.1 * k as f64;
        let utility = Power::new(alpha);
        let relaxed = relaxed_optimum(&system, &demand, &utility);
        let fitted = fit_slope(demand.rates(), &relaxed.x);
        let expect = 1.0 / (2.0 - alpha);
        rows.push(format!("{alpha},{fitted},{expect}"));
    }
    let relaxed = relaxed_optimum(&system, &demand, &NegLog::new());
    let fitted = fit_slope(demand.rates(), &relaxed.x);
    rows.push(format!("1,{fitted},1"));
    emit(
        spec,
        ctx,
        report,
        &s.file,
        "alpha,fitted_exponent,analytic_exponent",
        &rows,
        &[],
        0,
    )?;
    ctx.cell_done(spec, &s.file, rows.len() as u64, started, report);
    Ok(())
}

fn rel_err(closed: f64, numeric: f64) -> f64 {
    if closed == numeric {
        return 0.0;
    }
    (closed - numeric).abs() / closed.abs().max(numeric.abs()).max(1e-300)
}

/// Table 1: for every family, cross-validate the closed-form gain `G`,
/// equilibrium transform `φ` and reaction function `ψ` against direct
/// numerical integration.
pub fn closed_forms<S: Sink>(
    spec: &Spec,
    s: &ClosedFormsSpec,
    ctx: &mut ExecContext<'_, S>,
    report: &mut ExecReport,
) -> Result<(), ExpError> {
    let mu = s.mu;
    let mut rows = Vec::new();
    for (name, family) in s.labels.iter().zip(&s.families) {
        let started = Instant::now();
        let u = utility_of(&spec.name, family)?;
        for &x in &s.gain_points {
            let lambda = mu * x;
            let closed = u.gain(lambda);
            let numeric = u.gain_numeric(lambda).map_err(|e| {
                ExpError::spec(&spec.name, format!("{name}: gain integral failed: {e}"))
            })?;
            let e = rel_err(closed, numeric);
            rows.push(format!("{name},gain,{x},{closed},{numeric},{e}"));
        }
        // φ(x): the step family's differential utility is a Dirac
        // measure, so its numeric column uses a finite-difference of the
        // (already verified) gain.
        for &x in &s.phi_points {
            let closed = u.phi(x, mu);
            let numeric = match u.kind() {
                UtilityKind::Step { .. } => {
                    let eps = 1e-6 * x;
                    (u.gain(mu * (x + eps)) - u.gain(mu * (x - eps))) / (2.0 * eps)
                }
                _ => u.phi_numeric(x, mu).map_err(|e| {
                    ExpError::spec(&spec.name, format!("{name}: phi integral failed: {e}"))
                })?,
            };
            let e = rel_err(closed, numeric);
            rows.push(format!("{name},phi,{x},{closed},{numeric},{e}"));
        }
        // ψ(y) against the defining relation (s/y)·φ(s/y).
        for &y in &s.psi_points {
            let closed = u.psi(y, s.servers, mu);
            let x = s.servers / y;
            let numeric = x * u.phi(x, mu);
            let e = rel_err(closed, numeric);
            rows.push(format!("{name},psi,{y},{closed},{numeric},{e}"));
        }
        ctx.cell_done(
            spec,
            name,
            (s.gain_points.len() + s.phi_points.len() + s.psi_points.len()) as u64,
            started,
            report,
        );
    }
    emit(
        spec,
        ctx,
        report,
        &s.file,
        "family,quantity,point,closed,numeric,rel_err",
        &rows,
        &[],
        0,
    )?;
    Ok(())
}

/// Mixed-catalog extension: even items urgent, odd items patient; every
/// allocation strategy evaluated under the true per-item welfare.
pub fn mixed_catalog<S: Sink>(
    spec: &Spec,
    s: &MixedCatalogSpec,
    ctx: &mut ExecContext<'_, S>,
    report: &mut ExecReport,
) -> Result<(), ExpError> {
    let started = Instant::now();
    let system = SystemModel::pure_p2p(s.nodes, s.rho, s.mu);
    let demand: DemandRates = Popularity::pareto(s.items, 1.0).demand_rates(1.0);
    let catalog = UtilityCatalog::new(
        (0..s.items)
            .map(|i| -> Arc<dyn DelayUtility> {
                if i % 2 == 0 {
                    Arc::new(Exponential::new(s.urgent_nu))
                } else {
                    Arc::new(Exponential::new(s.patient_nu))
                }
            })
            .collect(),
    );
    let evaluate = |counts: &[u32]| {
        let xs: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        social_welfare_homogeneous_mixed(&system, &demand, &catalog, &xs)
    };
    let mixed_opt = greedy_homogeneous_mixed(&system, &demand, &catalog);
    let w_star = evaluate(mixed_opt.counts());

    let mut rows = Vec::new();
    let mut push = |name: &str, counts: &[u32]| {
        let w = evaluate(counts);
        let loss = 100.0 * (w - w_star) / w_star.abs();
        rows.push(format!("{name},{w},{loss}"));
    };
    push("mixed-aware greedy", mixed_opt.counts());
    for (name, nu) in [
        ("assume-all-urgent", s.urgent_nu),
        ("assume-all-patient", s.patient_nu),
        ("assume-average", (s.urgent_nu * s.patient_nu).sqrt()),
    ] {
        let counts = greedy_homogeneous(&system, &demand, &Exponential::new(nu));
        push(name, counts.counts());
    }
    push("UNI", uniform(s.items, s.nodes, s.rho).counts());
    push("SQRT", sqrt_proportional(&demand, s.nodes, s.rho).counts());
    push("PROP", proportional(&demand, s.nodes, s.rho).counts());

    emit(
        spec,
        ctx,
        report,
        &s.file,
        "strategy,welfare,loss_vs_mixed_pct",
        &rows,
        &[],
        0,
    )?;
    ctx.cell_done(spec, &s.file, rows.len() as u64, started, report);
    Ok(())
}
