//! Engine for the generated-trace suites (Figs. 5–6): conference and
//! vehicular scenarios, optionally re-run on the memoryless resynthesis.

use std::sync::Arc;
use std::time::Instant;

use impatience_core::demand::DemandProfile;
use impatience_core::rng::Xoshiro256;
use impatience_core::utility::DelayUtility;
use impatience_obs::Sink;
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_traces::gen::{ConferenceConfig, VehicularConfig};
use impatience_traces::{resynthesize_memoryless, ContactTrace, TraceStats};

use super::{emit, ExecContext, ExecReport};
use crate::error::ExpError;
use crate::spec::{family_utility, utility_of, Spec, TraceKind, TraceSuiteSpec};
use crate::suite::{loss_header, loss_row, normalized_losses, pareto_demand, trace_competitors};

/// Figs. 5–6: generate the trace from its seed, run the optional
/// observed-utility time series, then each sweep axis — on the actual
/// trace or (Fig. 5c) on the memoryless resynthesis, whose generation
/// *continues* the trace RNG exactly as the retired figure binaries did.
pub fn trace_suite<S: Sink>(
    spec: &Spec,
    s: &TraceSuiteSpec,
    ctx: &mut ExecContext<'_, S>,
    report: &mut ExecReport,
) -> Result<(), ExpError> {
    let mut rng = Xoshiro256::seed_from_u64(s.trace_seed);
    let trace = match s.trace {
        TraceKind::Conference => ConferenceConfig::default().generate(&mut rng),
        TraceKind::Vehicular => VehicularConfig::default().generate(&mut rng),
    };
    let synthesized = s
        .sweeps
        .iter()
        .any(|sw| sw.synthesized)
        .then(|| resynthesize_memoryless(&trace, &mut rng));

    let stats = TraceStats::from_trace(&trace);
    let demand = pareto_demand(s.items);
    let profile = DemandProfile::uniform(s.items, trace.nodes());

    let build_config = |utility: Arc<dyn DelayUtility>| {
        SimConfig::builder(s.items, s.rho)
            .demand(demand.clone())
            .profile(profile.clone())
            .utility(utility)
            .bin(s.bin)
            .warmup_fraction(s.warmup_fraction)
            .build()
    };

    // The observed-utility time series (Fig. 5a), on the actual trace.
    if let Some(ts) = &s.timeseries {
        let started = Instant::now();
        let utility = utility_of(&spec.name, &ts.utility)?;
        let config = build_config(utility.clone());
        let competitors = trace_competitors(&stats, s.rho, &demand, &profile, utility.as_ref());
        let source = ContactSource::trace(trace.clone());
        let cell = format!("{} timeseries", ts.file);
        let suite = ctx.policy_suite(
            spec,
            &cell,
            &config,
            &source,
            competitors,
            s.trials,
            ts.seed,
            report,
        )?;
        let bins = suite[0].1.observed_series.len();
        let mut header = "time".to_string();
        for (label, _) in &suite {
            header.push_str(&format!(",{label}"));
        }
        let mut rows = Vec::new();
        for b in 0..bins {
            let mut row = format!("{}", b as f64 * s.bin);
            for (_, agg) in &suite {
                row.push_str(&format!(",{}", agg.observed_series[b]));
            }
            rows.push(row);
        }
        emit(
            spec,
            ctx,
            report,
            &ts.file,
            &header,
            &rows,
            &[ts.seed],
            s.trials,
        )?;
        ctx.cell_done(spec, &cell, suite.len() as u64, started, report);
    }

    // The loss-vs-parameter sweep axes.
    for sweep in &s.sweeps {
        let (sweep_trace, sweep_stats): (&ContactTrace, TraceStats) = if sweep.synthesized {
            let t = synthesized
                .as_ref()
                .expect("synthesized trace exists when a sweep asks for it");
            (t, TraceStats::from_trace(t))
        } else {
            (&trace, TraceStats::from_trace(&trace))
        };
        let source = ContactSource::trace(sweep_trace.clone());
        let mut rows = Vec::new();
        let mut header = String::new();
        for &value in &sweep.axis.values {
            let tag = if sweep.synthesized {
                " (synthesized)"
            } else {
                ""
            };
            let cell = format!("{}={value}{tag}", sweep.axis.param);
            let started = Instant::now();
            let utility = family_utility(&spec.name, &sweep.axis.family, value)?;
            let config = build_config(utility.clone());
            let competitors =
                trace_competitors(&sweep_stats, s.rho, &demand, &profile, utility.as_ref());
            let suite = ctx.policy_suite(
                spec,
                &cell,
                &config,
                &source,
                competitors,
                s.trials,
                sweep.axis.seed,
                report,
            )?;
            let losses = normalized_losses(&suite);
            if header.is_empty() {
                header = loss_header(&sweep.axis.param, &losses);
            }
            rows.push(loss_row(value, &losses));
            ctx.cell_done(spec, &cell, suite.len() as u64, started, report);
        }
        emit(
            spec,
            ctx,
            report,
            &sweep.axis.file,
            &header,
            &rows,
            &[sweep.axis.seed],
            s.trials,
        )?;
    }
    Ok(())
}
