//! Engines for the homogeneous-contact experiment kinds: the Fig. 3/4
//! evaluations, the QCR knob ablation, and the dedicated-population,
//! dynamic-demand, eviction, and degraded-network extensions.

use std::sync::Arc;
use std::time::Instant;

use impatience_core::demand::{DemandProfile, DemandRates};
use impatience_core::solver::fixed::uniform;
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::solver::incremental::{Delta, DeltaSolver};
use impatience_core::types::SystemModel;
use impatience_core::utility::{DelayUtility, Power};
use impatience_obs::Sink;
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::faults::{Churn, ContactDrop, FaultConfig};
use impatience_sim::policy::{PolicyKind, QcrConfig, Reaction};
use impatience_sim::state::EvictionPolicy;

use super::{emit, ExecContext, ExecReport};
use crate::error::ExpError;
use crate::spec::{
    family_utility, utility_of, DegradedSpec, DynamicDemandSpec, EvictionSpec, LossSweepSpec,
    MandateRoutingSpec, QcrAblationSpec, Spec,
};
use crate::suite::{
    homogeneous_competitors, loss_header, loss_row, normalized_losses, paper_homogeneous_setting,
    pareto_demand,
};

/// Build the (config, source, system) triple of a [`LossSweepSpec`]
/// setting for one utility. `servers = 0` is the paper's pure-P2P §6.2
/// setting; `servers > 0` is the dedicated-population extension (the
/// first `servers` trace nodes are throwboxes, the rest clients).
pub(super) fn sweep_setting(
    s: &LossSweepSpec,
    utility: Arc<dyn DelayUtility>,
) -> (SimConfig, ContactSource, SystemModel) {
    if s.servers == 0 {
        let system = SystemModel::pure_p2p(s.nodes, s.rho, s.mu);
        let config = SimConfig::builder(s.items, s.rho)
            .demand(pareto_demand(s.items))
            .utility(utility)
            .bin(s.bin)
            .warmup_fraction(s.warmup_fraction)
            .build();
        let source = ContactSource::homogeneous(s.nodes, s.mu, s.duration);
        (config, source, system)
    } else {
        let clients = s.nodes - s.servers;
        let system = SystemModel::dedicated(clients, s.servers, s.rho, s.mu);
        let config = SimConfig::builder(s.items, s.rho)
            .demand(pareto_demand(s.items))
            .profile(DemandProfile::uniform(s.items, clients))
            .utility(utility)
            .dedicated_servers(s.servers)
            .bin(s.bin)
            .warmup_fraction(s.warmup_fraction)
            .build();
        let source = ContactSource::homogeneous(s.nodes, s.mu, s.duration);
        (config, source, system)
    }
}

/// Figs. 4 / dedicated extension: normalized loss vs the swept utility
/// parameter, one CSV per sweep axis.
pub fn loss_sweep<S: Sink>(
    spec: &Spec,
    s: &LossSweepSpec,
    ctx: &mut ExecContext<'_, S>,
    report: &mut ExecReport,
) -> Result<(), ExpError> {
    for sweep in &s.sweeps {
        let mut rows = Vec::new();
        let mut header = String::new();
        for &value in &sweep.values {
            let cell = format!("{}={value}", sweep.param);
            let started = Instant::now();
            let utility = family_utility(&spec.name, &sweep.family, value)?;
            let (config, source, system) = sweep_setting(s, utility.clone());
            let competitors = homogeneous_competitors(&system, &config.demand, utility.as_ref());
            let suite = ctx.policy_suite(
                spec,
                &cell,
                &config,
                &source,
                competitors,
                s.trials,
                sweep.seed,
                report,
            )?;
            let losses = normalized_losses(&suite);
            if header.is_empty() {
                header = loss_header(&sweep.param, &losses);
            }
            rows.push(loss_row(value, &losses));
            ctx.cell_done(spec, &cell, suite.len() as u64, started, report);
        }
        emit(
            spec,
            ctx,
            report,
            &sweep.file,
            &header,
            &rows,
            &[sweep.seed],
            s.trials,
        )?;
    }
    Ok(())
}

/// Fig. 3: the effect of mandate routing. Expected/observed utility
/// series for QCR, QCR-without-routing, OPT, UNI, DOM, plus top-5 item
/// replica series from one representative trial of each QCR variant.
pub fn mandate_routing<S: Sink>(
    spec: &Spec,
    s: &MandateRoutingSpec,
    ctx: &mut ExecContext<'_, S>,
    report: &mut ExecReport,
) -> Result<(), ExpError> {
    let utility: Arc<dyn DelayUtility> = Arc::new(Power::new(s.alpha));
    let (config, source, system) = paper_homogeneous_setting(utility.clone(), s.duration);

    let competitors = homogeneous_competitors(&system, &config.demand, utility.as_ref());
    let mut policies: Vec<PolicyKind> = vec![
        PolicyKind::qcr_default(),
        PolicyKind::Qcr(QcrConfig {
            mandate_routing: false,
            ..QcrConfig::default()
        }),
    ];
    policies.extend(
        competitors
            .into_iter()
            .filter(|p| ["OPT", "UNI", "DOM"].contains(&p.label().as_str())),
    );

    let mut aggregates = Vec::new();
    for p in &policies {
        let cell = p.label();
        let started = Instant::now();
        let agg = ctx.run_one(spec, &cell, &config, &source, p, s.trials, s.seed, report)?;
        ctx.cell_done(spec, &cell, 1, started, report);
        aggregates.push(agg);
    }

    // Panels (a) and (b): utility series.
    let bins = aggregates[0].expected_series.len();
    let mut expected_rows = Vec::new();
    let mut observed_rows = Vec::new();
    for b in 0..bins {
        let t = b as f64 * config.bin;
        let mut er = format!("{t}");
        let mut or = format!("{t}");
        for agg in &aggregates {
            er.push_str(&format!(",{}", agg.expected_series[b]));
            or.push_str(&format!(",{}", agg.observed_series[b]));
        }
        expected_rows.push(er);
        observed_rows.push(or);
    }
    let header = {
        let mut h = "time".to_string();
        for agg in &aggregates {
            h.push_str(&format!(",{}", agg.label));
        }
        h
    };
    emit(
        spec,
        ctx,
        report,
        &s.expected_file,
        &header,
        &expected_rows,
        &[s.seed],
        s.trials,
    )?;
    emit(
        spec,
        ctx,
        report,
        &s.observed_file,
        &header,
        &observed_rows,
        &[s.seed],
        s.trials,
    )?;

    // Panels (c)/(d): top-5 item replica series from a single
    // representative trial of each QCR variant.
    for (name, routing) in [(&s.routing_file, true), (&s.noroute_file, false)] {
        let started = Instant::now();
        let policy = PolicyKind::Qcr(QcrConfig {
            mandate_routing: routing,
            ..QcrConfig::default()
        });
        let out = impatience_sim::engine::run_trial(&config, &source, policy, s.seed);
        let mut rows = Vec::new();
        let series: Vec<Vec<u32>> = (0..5).map(|i| out.metrics.replica_series_of(i)).collect();
        for b in 0..series[0].len() {
            let t = b as f64 * config.bin;
            let mut row = format!("{t}");
            for sr in &series {
                row.push_str(&format!(",{}", sr[b]));
            }
            rows.push(row);
        }
        emit(
            spec,
            ctx,
            report,
            name,
            "time,msg1,msg2,msg3,msg4,msg5",
            &rows,
            &[s.seed],
            1,
        )?;
        ctx.cell_done(spec, name, rows.len() as u64, started, report);
    }
    Ok(())
}

/// The QCR knob variants DESIGN.md calls out, in the ablation's fixed
/// reporting order.
fn qcr_variants() -> Vec<(&'static str, QcrConfig)> {
    vec![
        ("default", QcrConfig::default()),
        (
            "no-routing",
            QcrConfig {
                mandate_routing: false,
                ..QcrConfig::default()
            },
        ),
        (
            "rewriting",
            QcrConfig {
                rewriting: true,
                ..QcrConfig::default()
            },
        ),
        (
            "cap-5",
            QcrConfig {
                mandate_cap: 5,
                ..QcrConfig::default()
            },
        ),
        (
            "uncapped",
            QcrConfig {
                mandate_cap: u64::MAX,
                ..QcrConfig::default()
            },
        ),
        (
            "raw-psi",
            QcrConfig {
                normalize_reaction: false,
                ..QcrConfig::default()
            },
        ),
        (
            "passive-1",
            QcrConfig {
                reaction: Reaction::Constant(1.0),
                ..QcrConfig::default()
            },
        ),
    ]
}

/// QCR ablation: every knob variant (plus the §4.1 hill climber as a
/// local-moves upper reference) against simulated OPT, per regime.
pub fn qcr_ablation<S: Sink>(
    spec: &Spec,
    s: &QcrAblationSpec,
    ctx: &mut ExecContext<'_, S>,
    report: &mut ExecReport,
) -> Result<(), ExpError> {
    let mut rows = Vec::new();
    for (regime, family) in s.regime_labels.iter().zip(&s.regimes) {
        let utility = utility_of(&spec.name, family)?;
        let (config, source, system) = paper_homogeneous_setting(utility.clone(), s.duration);
        let opt_counts = greedy_homogeneous(&system, &config.demand, utility.as_ref());
        let opt_cell = format!("{regime}/OPT");
        let started = Instant::now();
        let opt = ctx.run_one(
            spec,
            &opt_cell,
            &config,
            &source,
            &PolicyKind::Static {
                label: "OPT",
                counts: opt_counts,
            },
            s.trials,
            s.seed,
            report,
        )?;
        ctx.cell_done(spec, &opt_cell, 1, started, report);
        let mut contenders: Vec<(&str, PolicyKind)> = qcr_variants()
            .into_iter()
            .map(|(name, cfg)| (name, PolicyKind::Qcr(cfg)))
            .collect();
        contenders.push((
            "hill-climb",
            PolicyKind::HillClimb {
                moves_per_contact: 1,
            },
        ));
        for (name, policy) in contenders {
            let cell = format!("{regime}/{name}");
            let started = Instant::now();
            let agg = ctx.run_one(
                spec, &cell, &config, &source, &policy, s.trials, s.seed, report,
            )?;
            let loss = 100.0 * (agg.mean_rate - opt.mean_rate) / opt.mean_rate.abs();
            rows.push(format!(
                "{regime},{name},{},{loss},{}",
                agg.mean_rate, agg.mean_transmissions
            ));
            ctx.cell_done(spec, &cell, 1, started, report);
        }
    }
    emit(
        spec,
        ctx,
        report,
        &s.file,
        "regime,variant,utility,loss_vs_opt_pct,transmissions",
        &rows,
        &[s.seed],
        s.trials,
    )?;
    Ok(())
}

/// Dynamic-demand extension: the popularity ranking reverses at
/// `duration / 2`; QCR adapts, pinned allocations cannot.
pub fn dynamic_demand<S: Sink>(
    spec: &Spec,
    s: &DynamicDemandSpec,
    ctx: &mut ExecContext<'_, S>,
    report: &mut ExecReport,
) -> Result<(), ExpError> {
    let utility = utility_of(&spec.name, &s.utility)?;
    let before = pareto_demand(s.items);
    let after = DemandRates::new(before.rates().iter().rev().copied().collect());

    let config = SimConfig::builder(s.items, s.rho)
        .demand(before.clone())
        .utility(utility.clone())
        .demand_shift(s.duration / 2.0, after.clone())
        .bin(100.0)
        .warmup_fraction(0.0)
        .build();
    let source = ContactSource::homogeneous(s.nodes, s.mu, s.duration);
    let system = SystemModel::pure_p2p(s.nodes, s.rho, s.mu);

    // One incremental solver carries the allocation across the epoch
    // boundary: its initial solve is OPT for the pre-shift demand, and
    // absorbing the shift as per-item deltas re-solves for the post-shift
    // demand — each bit-identical to a from-scratch greedy solve, at a
    // fraction of the work.
    let mut resolver = DeltaSolver::new(system, &before, utility.clone());
    let stale_counts = resolver.counts().clone();
    let shift: Vec<Delta> = after
        .rates()
        .iter()
        .enumerate()
        .map(|(item, &rate)| Delta::Demand { item, rate })
        .collect();
    resolver
        .apply(&shift)
        .map_err(|e| ExpError::spec(&spec.name, format!("re-solving the demand shift: {e}")))?;
    let fresh_counts = resolver.counts().clone();

    let policies = vec![
        PolicyKind::qcr_default(),
        PolicyKind::Static {
            label: "OPT-stale",
            counts: stale_counts,
        },
        PolicyKind::Static {
            label: "OPT-fresh",
            counts: fresh_counts,
        },
        PolicyKind::Static {
            label: "UNI",
            counts: uniform(s.items, s.nodes, s.rho),
        },
    ];

    let mut aggregates = Vec::new();
    for p in &policies {
        let cell = p.label();
        let started = Instant::now();
        let agg = ctx.run_one(spec, &cell, &config, &source, p, s.trials, s.seed, report)?;
        ctx.cell_done(spec, &cell, 1, started, report);
        aggregates.push(agg);
    }

    let mut header = "time".to_string();
    for a in &aggregates {
        header.push_str(&format!(",{}", a.label));
    }
    let mut rows = Vec::new();
    for b in 0..aggregates[0].observed_series.len() {
        let mut row = format!("{}", b as f64 * config.bin);
        for a in &aggregates {
            row.push_str(&format!(",{}", a.observed_series[b]));
        }
        rows.push(row);
    }
    emit(
        spec,
        ctx,
        report,
        &s.file,
        &header,
        &rows,
        &[s.seed],
        s.trials,
    )?;
    Ok(())
}

/// Eviction ablation: QCR under random/LRU/FIFO replacement vs OPT, per
/// impatience regime.
pub fn eviction<S: Sink>(
    spec: &Spec,
    s: &EvictionSpec,
    ctx: &mut ExecContext<'_, S>,
    report: &mut ExecReport,
) -> Result<(), ExpError> {
    let mut rows = Vec::new();
    for (regime, family) in s.regime_labels.iter().zip(&s.regimes) {
        let utility = utility_of(&spec.name, family)?;
        let (base_config, source, system) = paper_homogeneous_setting(utility.clone(), s.duration);
        let opt_counts = greedy_homogeneous(&system, &base_config.demand, utility.as_ref());
        let opt_cell = format!("{regime}/OPT");
        let started = Instant::now();
        let opt = ctx.run_one(
            spec,
            &opt_cell,
            &base_config,
            &source,
            &PolicyKind::Static {
                label: "OPT",
                counts: opt_counts,
            },
            s.trials,
            s.seed,
            report,
        )?;
        ctx.cell_done(spec, &opt_cell, 1, started, report);
        for name in &s.rules {
            let rule = match name.as_str() {
                "random" => EvictionPolicy::Random,
                "lru" => EvictionPolicy::Lru,
                "fifo" => EvictionPolicy::Fifo,
                other => {
                    return Err(ExpError::spec(
                        &spec.name,
                        format!("unknown eviction rule `{other}`"),
                    ))
                }
            };
            let mut config = base_config.clone();
            config.eviction = rule;
            let cell = format!("{regime}/{name}");
            let started = Instant::now();
            let agg = ctx.run_one(
                spec,
                &cell,
                &config,
                &source,
                &PolicyKind::qcr_default(),
                s.trials,
                s.seed,
                report,
            )?;
            let loss = 100.0 * (agg.mean_rate - opt.mean_rate) / opt.mean_rate.abs();
            rows.push(format!("{regime},{name},{},{loss}", agg.mean_rate));
            ctx.cell_done(spec, &cell, 1, started, report);
        }
    }
    emit(
        spec,
        ctx,
        report,
        &s.file,
        "regime,eviction,utility,loss_vs_opt_pct",
        &rows,
        &[s.seed],
        s.trials,
    )?;
    Ok(())
}

/// Degraded-network experiment: QCR/OPT/UNI mean observed utility under
/// bursty contact drops and exponential server churn.
pub fn degraded<S: Sink>(
    spec: &Spec,
    s: &DegradedSpec,
    ctx: &mut ExecContext<'_, S>,
    report: &mut ExecReport,
) -> Result<(), ExpError> {
    let utility = utility_of(&spec.name, &s.utility)?;

    let run_point = |ctx: &mut ExecContext<'_, S>,
                     report: &mut ExecReport,
                     cell: &str,
                     faults: Option<FaultConfig>|
     -> Result<Vec<(String, f64)>, ExpError> {
        let (config, source, system) = paper_homogeneous_setting(utility.clone(), s.duration);
        let config = match faults {
            Some(fc) => {
                let mut c = config;
                c.faults = Some(fc);
                c
            }
            None => config,
        };
        let competitors = homogeneous_competitors(&system, &config.demand, utility.as_ref());
        let suite = ctx.policy_suite(
            spec,
            cell,
            &config,
            &source,
            competitors,
            s.trials,
            s.seed,
            report,
        )?;
        Ok(suite
            .into_iter()
            .filter(|(label, _)| label == "QCR" || label == "OPT" || label == "UNI")
            .map(|(label, agg)| (label, agg.mean_rate))
            .collect())
    };

    let header_for = |points: &[(String, f64)], param: &str| {
        let mut h = param.to_string();
        for (label, _) in points {
            h.push_str(&format!(",{label}"));
        }
        h
    };
    let row_for = |param: f64, points: &[(String, f64)]| {
        let mut row = format!("{param}");
        for (_, u) in points {
            row.push_str(&format!(",{u}"));
        }
        row
    };

    // Sweep 1: bursty contact loss.
    let mut rows = Vec::new();
    let mut header = String::new();
    for &p in &s.drop.values {
        let cell = format!("{}={p}", s.drop.param);
        let started = Instant::now();
        let faults = (p > 0.0).then(|| FaultConfig {
            seed: s.drop.fault_seed,
            drop: Some(ContactDrop {
                p,
                mean_burst: s.drop_mean_burst,
            }),
            ..FaultConfig::default()
        });
        let points = run_point(ctx, report, &cell, faults)?;
        if header.is_empty() {
            header = header_for(&points, &s.drop.param);
        }
        rows.push(row_for(p, &points));
        ctx.cell_done(spec, &cell, points.len() as u64, started, report);
    }
    emit(
        spec,
        ctx,
        report,
        &s.drop.file,
        &header,
        &rows,
        &[s.seed],
        s.trials,
    )?;

    // Sweep 2: exponential server churn over a fixed mean cycle.
    let mut rows = Vec::new();
    let mut header = String::new();
    for &f in &s.churn.values {
        let cell = format!("{}={f}", s.churn.param);
        let started = Instant::now();
        let faults = (f > 0.0).then(|| FaultConfig {
            seed: s.churn.fault_seed,
            churn: Some(Churn {
                mean_up: s.churn_cycle * (1.0 - f),
                mean_down: s.churn_cycle * f,
            }),
            ..FaultConfig::default()
        });
        let points = run_point(ctx, report, &cell, faults)?;
        if header.is_empty() {
            header = header_for(&points, &s.churn.param);
        }
        rows.push(row_for(f, &points));
        ctx.cell_done(spec, &cell, points.len() as u64, started, report);
    }
    emit(
        spec,
        ctx,
        report,
        &s.churn.file,
        &header,
        &rows,
        &[s.seed],
        s.trials,
    )?;
    Ok(())
}
