//! The spec registry: discovery and selection of `experiments/*.toml`.

use std::path::Path;

use crate::error::ExpError;
use crate::spec::Spec;

/// All specs found in a directory, sorted by file name (which gives a
/// stable `--list`/`--all` order).
#[derive(Debug)]
pub struct Registry {
    specs: Vec<Spec>,
}

impl Registry {
    /// Load every `*.toml` in `dir`. Duplicate spec names are an error
    /// (two files cannot both claim `fig4`).
    pub fn load_dir(dir: &Path) -> Result<Registry, ExpError> {
        let io_err = |source: std::io::Error| ExpError::Io {
            path: dir.to_path_buf(),
            source,
        };
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(io_err)?
            .collect::<Result<Vec<_>, _>>()
            .map_err(io_err)?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "toml"))
            .collect();
        paths.sort();
        let mut specs = Vec::with_capacity(paths.len());
        for path in paths {
            let spec = Spec::load(&path)?;
            if let Some(prev) = specs.iter().find(|s: &&Spec| s.name == spec.name) {
                return Err(ExpError::spec(
                    &spec.name,
                    format!(
                        "duplicate spec name (also defined by {})",
                        prev.path.display()
                    ),
                ));
            }
            specs.push(spec);
        }
        Ok(Registry { specs })
    }

    /// Every spec, in file-name order.
    pub fn all(&self) -> &[Spec] {
        &self.specs
    }

    /// Select by explicit names (spec name or file stem). Unknown names
    /// are an error listing what exists.
    pub fn by_names(&self, names: &[String]) -> Result<Vec<&Spec>, ExpError> {
        names
            .iter()
            .map(|n| {
                self.specs
                    .iter()
                    .find(|s| {
                        s.name == *n || s.path.file_stem().is_some_and(|stem| stem == n.as_str())
                    })
                    .ok_or_else(|| {
                        ExpError::spec(
                            n.clone(),
                            format!("no such spec (available: {})", self.names().join(", ")),
                        )
                    })
            })
            .collect()
    }

    /// Select every spec reproducing paper figure `fig`.
    pub fn by_figure(&self, fig: u32) -> Result<Vec<&Spec>, ExpError> {
        let hits: Vec<&Spec> = self
            .specs
            .iter()
            .filter(|s| s.figure == Some(fig))
            .collect();
        if hits.is_empty() {
            return Err(ExpError::spec(
                format!("--fig {fig}"),
                format!(
                    "no spec reproduces figure {fig} (figures: {})",
                    self.figures()
                        .iter()
                        .map(u32::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
        Ok(hits)
    }

    fn names(&self) -> Vec<String> {
        self.specs.iter().map(|s| s.name.clone()).collect()
    }

    fn figures(&self) -> Vec<u32> {
        let mut figs: Vec<u32> = self.specs.iter().filter_map(|s| s.figure).collect();
        figs.sort_unstable();
        figs.dedup();
        figs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "exp-registry-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mixed(name: &str, figure: Option<u32>) -> String {
        let fig = figure
            .map(|f| format!("figure = {f}\n"))
            .unwrap_or_default();
        format!(
            "name = \"{name}\"\n{fig}title = \"t\"\nkind = \"mixed_catalog\"\n[setting]\nitems = 4\nnodes = 4\nrho = 1\nmu = 0.05\nurgent_nu = 1.0\npatient_nu = 0.01\nfile = \"{name}\"\n"
        )
    }

    #[test]
    fn loads_sorted_and_selects() {
        let dir = scratch_dir();
        std::fs::write(dir.join("b_two.toml"), mixed("two", Some(7))).unwrap();
        std::fs::write(dir.join("a_one.toml"), mixed("one", None)).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let reg = Registry::load_dir(&dir).unwrap();
        let names: Vec<&str> = reg.all().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["one", "two"]);
        assert_eq!(reg.by_figure(7).unwrap()[0].name, "two");
        assert!(reg.by_figure(9).is_err());
        // Select by spec name and by file stem.
        assert_eq!(reg.by_names(&["one".to_string()]).unwrap()[0].name, "one");
        assert_eq!(reg.by_names(&["b_two".to_string()]).unwrap()[0].name, "two");
        assert!(reg.by_names(&["nope".to_string()]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_duplicate_names() {
        let dir = scratch_dir();
        std::fs::write(dir.join("a.toml"), mixed("same", None)).unwrap();
        std::fs::write(dir.join("b.toml"), mixed("same", None)).unwrap();
        let err = Registry::load_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
