//! Bit-for-bit conformance checks between a freshly regenerated results
//! file and the committed baseline.
//!
//! Every quantity the pipeline writes is a pure function of its spec
//! (seeds are explicit, floats print shortest-roundtrip), so the honest
//! comparison is *byte equality* — no tolerances, no parsing. A drift
//! report points at the first differing line to make the diff findable.

use std::path::{Path, PathBuf};

use crate::error::ExpError;

/// The result of comparing one regenerated CSV against its baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The files are byte-identical.
    Match,
    /// The files differ.
    Drift {
        /// 1-indexed first differing line (lines past the shorter file
        /// count as differing).
        first_line: usize,
        /// The baseline's version of that line, if it has one.
        expected: Option<String>,
        /// The regenerated version of that line, if it has one.
        actual: Option<String>,
    },
    /// The baseline file does not exist yet.
    MissingBaseline,
}

/// One artifact's check verdict, with the paths involved.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The committed baseline path.
    pub baseline: PathBuf,
    /// The freshly regenerated path.
    pub candidate: PathBuf,
    /// The verdict.
    pub outcome: CheckOutcome,
}

/// Byte-compare `candidate` (fresh) against `baseline` (committed).
pub fn compare(baseline: &Path, candidate: &Path) -> Result<CheckOutcome, ExpError> {
    let read = |path: &Path| -> Result<Vec<u8>, ExpError> {
        std::fs::read(path).map_err(|source| ExpError::Io {
            path: path.to_path_buf(),
            source,
        })
    };
    if !baseline.exists() {
        return Ok(CheckOutcome::MissingBaseline);
    }
    let base = read(baseline)?;
    let cand = read(candidate)?;
    if base == cand {
        return Ok(CheckOutcome::Match);
    }
    // Locate the first differing line for the report.
    let base_text = String::from_utf8_lossy(&base);
    let cand_text = String::from_utf8_lossy(&cand);
    let mut b_lines = base_text.lines();
    let mut c_lines = cand_text.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (b_lines.next(), c_lines.next()) {
            (None, None) => {
                // Same lines but different bytes (e.g. trailing newline).
                return Ok(CheckOutcome::Drift {
                    first_line: line,
                    expected: None,
                    actual: None,
                });
            }
            (b, c) if b == c => continue,
            (b, c) => {
                return Ok(CheckOutcome::Drift {
                    first_line: line,
                    expected: b.map(str::to_string),
                    actual: c.map(str::to_string),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str, text: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exp-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn detects_match_drift_and_missing() {
        let a = scratch("a.csv", "h\n1,2\n3,4\n");
        let same = scratch("same.csv", "h\n1,2\n3,4\n");
        let diff = scratch("diff.csv", "h\n1,2\n3,5\n");
        assert_eq!(compare(&a, &same).unwrap(), CheckOutcome::Match);
        match compare(&a, &diff).unwrap() {
            CheckOutcome::Drift {
                first_line,
                expected,
                actual,
            } => {
                assert_eq!(first_line, 3);
                assert_eq!(expected.as_deref(), Some("3,4"));
                assert_eq!(actual.as_deref(), Some("3,5"));
            }
            other => panic!("expected drift, got {other:?}"),
        }
        let missing = std::env::temp_dir().join("exp-check-definitely-absent.csv");
        assert_eq!(
            compare(&missing, &a).unwrap(),
            CheckOutcome::MissingBaseline
        );
    }
}
