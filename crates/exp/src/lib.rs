//! # impatience-exp
//!
//! The declarative experiment pipeline behind `impatience reproduce`:
//! TOML scenario specs (`experiments/*.toml`) compiled into campaign
//! invocations that regenerate every `results/*.csv` bit-for-bit.
//!
//! ## Why declarative
//!
//! Each figure, table, ablation, and extension of the evaluation used to
//! be its own binary with its own argument parsing, seeds, and CSV
//! plumbing. A spec file replaces that with *data*: one TOML document
//! per experiment naming the utility family, population shape, contact
//! model or trace, sweep axes, seeds, trials, and fault configuration.
//! One engine executes them all, which buys:
//!
//! * **provenance** — every CSV gets a manifest sibling stamping the
//!   producing spec by name and content hash ([`Spec::hash`]), its
//!   seeds, the git revision, and the creation time;
//! * **conformance** — because every output is a pure function of its
//!   spec (explicit seeds, shortest-roundtrip float printing), the
//!   committed results can be re-derived and byte-compared
//!   ([`check::compare`]), turning "does the code still reproduce the
//!   paper?" into a CI assertion;
//! * **resilience** — simulated cells run through the campaign runner,
//!   inheriting panic isolation, checkpoint/resume, and fault injection
//!   from [`impatience_sim::runner::run_campaign`].
//!
//! ## Flow
//!
//! [`Registry::load_dir`] discovers specs; [`Spec::parse`] type-checks
//! one document into a [`spec::SpecKind`] payload; [`Spec::plan`]
//! derives outputs/cells/seeds without running anything;
//! [`engine::run_spec`] executes, streaming per-cell progress through
//! an [`impatience_obs::Recorder`] as `ExperimentDone` events and
//! committing artifacts atomically.
//!
//! ```
//! use impatience_exp::Spec;
//!
//! let spec = Spec::parse(
//!     r#"
//!     name = "demo"
//!     title = "Table 1 demo"
//!     kind = "closed_forms"
//!
//!     [setting]
//!     mu = 0.05
//!     servers = 50.0
//!     labels = ["step(tau=1)"]
//!     families = ["step:1"]
//!     gain_points = [1.0, 5.0]
//!     phi_points = [1.0]
//!     psi_points = [2.0]
//!     file = "demo_closed_forms"
//!     "#,
//!     std::path::Path::new("demo.toml"),
//! )
//! .unwrap();
//! assert_eq!(spec.plan().unwrap().outputs, vec!["demo_closed_forms"]);
//! assert!(spec.hash().starts_with("fnv1a:"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifact;
pub mod check;
pub mod engine;
pub mod error;
pub mod registry;
pub mod spec;
pub mod suite;
pub mod toml;

pub use check::{CheckOutcome, CheckReport};
pub use engine::{run_spec, ExecContext, ExecReport};
pub use error::ExpError;
pub use registry::Registry;
pub use spec::{Plan, Spec, SpecKind};
