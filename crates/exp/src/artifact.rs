//! Atomic results files with provenance manifests.
//!
//! Every CSV an experiment writes commits atomically
//! (write-temp-then-rename), so a crashed or killed run never leaves a
//! truncated results file behind. Each CSV gets a `.manifest.json`
//! sibling stamping which spec (by name *and* content hash) produced it
//! from which seeds — enough to audit a results directory without
//! trusting a shared log. `reproduce --check` byte-compares the CSV only;
//! the manifest carries the volatile fields (timestamp, git revision).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use impatience_json::Json;
use impatience_obs::{AtomicFile, Manifest};

use crate::error::ExpError;
use crate::spec::Spec;

/// Provenance recorded next to each CSV.
pub struct ArtifactMeta<'a> {
    /// The producing spec.
    pub spec: &'a Spec,
    /// Base seeds that fed the artifact (empty for analytic outputs).
    pub seeds: &'a [u64],
    /// Trials per simulated cell (0 for analytic outputs).
    pub trials: usize,
}

/// Write `<out_dir>/<name>.csv` (header + rows, atomically) and its
/// manifest sibling. Returns the CSV path.
pub fn write_csv(
    out_dir: &Path,
    name: &str,
    header: &str,
    rows: &[String],
    meta: &ArtifactMeta<'_>,
) -> Result<PathBuf, ExpError> {
    let io_err = |path: &Path, source: std::io::Error| ExpError::Io {
        path: path.to_path_buf(),
        source,
    };
    std::fs::create_dir_all(out_dir).map_err(|e| io_err(out_dir, e))?;
    let path = out_dir.join(format!("{name}.csv"));
    let mut f = AtomicFile::create(&path).map_err(|e| io_err(&path, e))?;
    writeln!(f, "{header}").map_err(|e| io_err(&path, e))?;
    for row in rows {
        writeln!(f, "{row}").map_err(|e| io_err(&path, e))?;
    }
    f.commit().map_err(|e| io_err(&path, e))?;

    let mut manifest = Manifest::new("experiment");
    manifest.set("spec", meta.spec.name.as_str());
    manifest.set("spec_hash", meta.spec.hash());
    if let Some(file) = meta.spec.path.file_name() {
        manifest.set("spec_file", file.to_string_lossy().into_owned());
    }
    if let Some(fig) = meta.spec.figure {
        manifest.set("figure", u64::from(fig));
    }
    manifest.set("title", meta.spec.title.as_str());
    manifest.set("csv", format!("{name}.csv"));
    manifest.set("header", header);
    manifest.set("rows", rows.len() as u64);
    manifest.set("seeds", Json::from(meta.seeds.to_vec()));
    manifest.set("trials", meta.trials as u64);
    manifest.stamp_runtime(None);
    let mpath = Manifest::sibling_path(&path);
    manifest.write_to(&mpath).map_err(|e| io_err(&mpath, e))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> Spec {
        Spec::parse(
            "name = \"t\"\nfigure = 9\ntitle = \"x\"\nkind = \"mixed_catalog\"\n[setting]\nitems = 4\nnodes = 4\nrho = 1\nmu = 0.05\nurgent_nu = 1.0\npatient_nu = 0.01\nfile = \"f\"\n",
            Path::new("t.toml"),
        )
        .unwrap()
    }

    #[test]
    fn csv_and_manifest_land_together() {
        let dir = std::env::temp_dir().join(format!("exp-artifact-{}", std::process::id()));
        let spec = tiny_spec();
        let meta = ArtifactMeta {
            spec: &spec,
            seeds: &[42],
            trials: 3,
        };
        let path = write_csv(&dir, "unit", "a,b", &["1,2".to_string()], &meta).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let mtext = std::fs::read_to_string(Manifest::sibling_path(&path)).unwrap();
        assert!(mtext.contains("\"spec\":\"t\""), "{mtext}");
        assert!(mtext.contains("fnv1a:"), "{mtext}");
        assert!(mtext.contains("\"figure\":9"), "{mtext}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
