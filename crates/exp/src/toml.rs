//! A minimal TOML subset parser for experiment specs.
//!
//! The build environment is hermetic (no crates registry), so the spec
//! files are parsed by this small hand-rolled reader instead of a TOML
//! dependency. The supported subset is exactly what `experiments/*.toml`
//! uses:
//!
//! * `key = value` pairs with bare keys (`[A-Za-z0-9_-]+`);
//! * `[table]` headers and `[[array-of-tables]]` headers (one level);
//! * basic strings with `\"`, `\\`, `\n`, `\t` escapes;
//! * integers (optional sign, `_` separators), floats (decimal point
//!   and/or exponent), booleans;
//! * arrays `[v, v, ...]`, possibly spanning lines, with trailing commas;
//! * `#` comments.
//!
//! Floats are parsed with Rust's `str::parse::<f64>` (correctly rounded),
//! so a value written as `0.25` in a spec is bit-identical to the literal
//! `0.25` in code — the foundation of the pipeline's bit-for-bit
//! reproducibility guarantee.

/// A parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered array of values.
    Array(Vec<Value>),
    /// A nested table (from `[name]` or `[[name]]` headers).
    Table(Table),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers convert losslessly for the
    /// magnitudes specs use).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The table payload, if this is a table.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

/// An ordered table of key/value pairs (insertion order preserved).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    entries: Vec<(String, Value)>,
}

impl Table {
    /// Look a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterate entries in file order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn insert(&mut self, key: String, value: Value) -> Result<(), String> {
        if self.get(&key).is_some() {
            return Err(format!("duplicate key `{key}`"));
        }
        self.entries.push((key, value));
        Ok(())
    }
}

/// A parse failure with its 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct TomlError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> TomlError {
        TomlError {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skip spaces/tabs and comments, but stop at newlines.
    fn skip_inline_ws(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'#' => {
                    while self.peek().is_some_and(|c| c != b'\n') {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Skip all whitespace, newlines, and comments.
    fn skip_ws(&mut self) {
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'\n') {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn expect_line_end(&mut self) -> Result<(), TomlError> {
        self.skip_inline_ws();
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.err(format!("expected end of line, found `{}`", char::from(c)))),
        }
    }

    fn parse_key(&mut self) -> Result<String, TomlError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a bare key"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_string(&mut self) -> Result<Value, TomlError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.bump();
        let mut out = String::new();
        loop {
            // Peek before consuming so an unterminated string reports the
            // line it started on, not the one after the stray newline.
            if matches!(self.peek(), None | Some(b'\n')) {
                return Err(self.err("unterminated string"));
            }
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(Value::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    other => {
                        return Err(self.err(format!(
                            "unsupported escape `\\{}`",
                            other.map(char::from).unwrap_or(' ')
                        )))
                    }
                },
                Some(c) => out.push(char::from(c)),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, TomlError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| {
            c.is_ascii_digit() || matches!(c, b'+' | b'-' | b'.' | b'e' | b'E' | b'_')
        }) {
            self.pos += 1;
        }
        let raw = String::from_utf8_lossy(&self.src[start..self.pos]).replace('_', "");
        if raw.is_empty() {
            return Err(self.err("expected a value"));
        }
        let is_float = raw.contains(['.', 'e', 'E']);
        if is_float {
            raw.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err(format!("cannot parse `{raw}` as a float")))
        } else {
            raw.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err(format!("cannot parse `{raw}` as an integer")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, TomlError> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.bump();
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err("unterminated array")),
                Some(b']') => {
                    self.bump();
                    return Ok(Value::Array(items));
                }
                _ => {}
            }
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {}
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, TomlError> {
        self.skip_inline_ws();
        match self.peek() {
            Some(b'"') => self.parse_string(),
            Some(b'[') => self.parse_array(),
            Some(b't') | Some(b'f') => {
                let word_start = self.pos;
                while self.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                    self.pos += 1;
                }
                match &self.src[word_start..self.pos] {
                    b"true" => Ok(Value::Bool(true)),
                    b"false" => Ok(Value::Bool(false)),
                    other => Err(self.err(format!(
                        "unknown literal `{}`",
                        String::from_utf8_lossy(other)
                    ))),
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_header(&mut self) -> Result<(String, bool), TomlError> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.bump();
        let is_array = self.peek() == Some(b'[');
        if is_array {
            self.bump();
        }
        self.skip_inline_ws();
        let name = self.parse_key()?;
        self.skip_inline_ws();
        for _ in 0..(if is_array { 2 } else { 1 }) {
            if self.bump() != Some(b']') {
                return Err(self.err(format!("unterminated table header `[{name}`")));
            }
        }
        self.expect_line_end()?;
        Ok((name, is_array))
    }
}

/// Where key/value pairs currently land while parsing a document.
enum Target {
    Root,
    Table(String),
    ArrayTable(String),
}

/// Parse a spec document into its root table.
pub fn parse(text: &str) -> Result<Table, TomlError> {
    let mut p = Parser {
        src: text.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut root = Table::default();
    let mut target = Target::Root;
    loop {
        p.skip_ws();
        let Some(c) = p.peek() else { break };
        if c == b'[' {
            let (name, is_array) = p.parse_header()?;
            if is_array {
                match root.entries.iter_mut().find(|(k, _)| *k == name) {
                    Some((_, Value::Array(items))) => items.push(Value::Table(Table::default())),
                    Some(_) => return Err(p.err(format!("`{name}` is not an array of tables"))),
                    None => {
                        root.entries.push((
                            name.clone(),
                            Value::Array(vec![Value::Table(Table::default())]),
                        ));
                    }
                }
                target = Target::ArrayTable(name);
            } else {
                if root.get(&name).is_some() {
                    return Err(p.err(format!("duplicate table `{name}`")));
                }
                root.entries
                    .push((name.clone(), Value::Table(Table::default())));
                target = Target::Table(name);
            }
            continue;
        }
        let key = p.parse_key()?;
        p.skip_inline_ws();
        if p.bump() != Some(b'=') {
            return Err(p.err(format!("expected `=` after key `{key}`")));
        }
        let value = p.parse_value()?;
        p.expect_line_end()?;
        let dest: &mut Table = match &target {
            Target::Root => &mut root,
            Target::Table(name) => match root.entries.iter_mut().find(|(k, _)| k == name) {
                Some((_, Value::Table(t))) => t,
                _ => unreachable!("table target always exists"),
            },
            Target::ArrayTable(name) => match root.entries.iter_mut().find(|(k, _)| k == name) {
                Some((_, Value::Array(items))) => match items.last_mut() {
                    Some(Value::Table(t)) => t,
                    _ => unreachable!("array-of-tables target always ends with a table"),
                },
                _ => unreachable!("array-of-tables target always exists"),
            },
        };
        dest.insert(key, value).map_err(|m| p.err(m))?;
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
            # a spec
            name = "fig4"
            figure = 4
            exact = 0.25
            deep = true

            [setting]
            mu = 0.05
            trials = 15
            values = [
                -2.0, -1.5, # comment inside
                1_000.0,
            ]

            [[sweep]]
            file = "a"

            [[sweep]]
            file = "b"
            synthesized = false
        "#;
        let t = parse(doc).unwrap();
        assert_eq!(t.get("name").unwrap().as_str(), Some("fig4"));
        assert_eq!(t.get("figure").unwrap().as_int(), Some(4));
        assert_eq!(t.get("exact").unwrap().as_f64(), Some(0.25));
        assert_eq!(t.get("deep").unwrap().as_bool(), Some(true));
        let setting = t.get("setting").unwrap().as_table().unwrap();
        assert_eq!(setting.get("mu").unwrap().as_f64(), Some(0.05));
        let values = setting.get("values").unwrap().as_array().unwrap();
        assert_eq!(values.len(), 3);
        assert_eq!(values[2].as_f64(), Some(1000.0));
        let sweeps = t.get("sweep").unwrap().as_array().unwrap();
        assert_eq!(sweeps.len(), 2);
        assert_eq!(
            sweeps[1].as_table().unwrap().get("file").unwrap().as_str(),
            Some("b")
        );
        assert_eq!(
            sweeps[1]
                .as_table()
                .unwrap()
                .get("synthesized")
                .unwrap()
                .as_bool(),
            Some(false)
        );
    }

    #[test]
    fn floats_parse_bit_identical_to_literals() {
        let t = parse("a = 0.05\nb = -1.5\nc = 0.25\n").unwrap();
        assert_eq!(t.get("a").unwrap().as_f64(), Some(0.05));
        assert_eq!(t.get("b").unwrap().as_f64(), Some(-1.5));
        assert_eq!(t.get("c").unwrap().as_f64(), Some(0.25));
        // Display round-trips through the shortest representation.
        assert_eq!(format!("{}", t.get("a").unwrap().as_f64().unwrap()), "0.05");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbad =\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("x = \"unterminated\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("x = 1\nx = 2\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn strings_support_escapes() {
        let t = parse(r#"s = "a\"b\\c\nd""#).unwrap();
        assert_eq!(t.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
    }
}
