//! Shared experiment plumbing: competitor construction, the paper's
//! canonical settings, and normalized-loss tables.
//!
//! These helpers are the (former) `impatience-bench` library routines,
//! kept bit-for-bit compatible so the declarative pipeline regenerates
//! the same CSVs the figure binaries used to produce.

use std::sync::Arc;

use impatience_core::demand::{DemandProfile, DemandRates, Popularity};
use impatience_core::solver::fixed::{dominant, proportional, sqrt_proportional, uniform};
use impatience_core::solver::greedy::greedy_homogeneous;
use impatience_core::solver::het_greedy::greedy_heterogeneous;
use impatience_core::types::SystemModel;
use impatience_core::utility::DelayUtility;
use impatience_core::welfare::HeterogeneousSystem;
use impatience_sim::config::{ContactSource, SimConfig};
use impatience_sim::policy::PolicyKind;
use impatience_sim::runner::TrialAggregate;
use impatience_traces::TraceStats;

/// The paper's Pareto(ω = 1) demand at 1 request/min system-wide — the
/// popularity model of every simulated evaluation section.
pub fn pareto_demand(items: usize) -> DemandRates {
    Popularity::pareto(items, 1.0).demand_rates(1.0)
}

/// The §6.1 competitor suite for a *homogeneous* setting: OPT (exact
/// greedy of Theorem 2), UNI, SQRT, PROP, DOM.
pub fn homogeneous_competitors(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
) -> Vec<PolicyKind> {
    let servers = system.servers();
    let rho = system.cache_capacity;
    vec![
        PolicyKind::Static {
            label: "OPT",
            counts: greedy_homogeneous(system, demand, utility),
        },
        PolicyKind::Static {
            label: "UNI",
            counts: uniform(demand.items(), servers, rho),
        },
        PolicyKind::Static {
            label: "SQRT",
            counts: sqrt_proportional(demand, servers, rho),
        },
        PolicyKind::Static {
            label: "PROP",
            counts: proportional(demand, servers, rho),
        },
        PolicyKind::Static {
            label: "DOM",
            counts: dominant(demand, servers, rho),
        },
    ]
}

/// The competitor suite for a *trace* setting: OPT is the submodular
/// greedy of Theorem 1 on rates estimated from the trace (the paper's
/// memoryless approximation, §6.3); the others are rate-blind.
pub fn trace_competitors(
    trace_stats: &TraceStats,
    rho: usize,
    demand: &DemandRates,
    profile: &DemandProfile,
    utility: &dyn DelayUtility,
) -> Vec<PolicyKind> {
    let nodes = trace_stats.nodes();
    let mut rates = trace_stats.rates().clone();
    if utility.h_infinity() == f64::NEG_INFINITY {
        // Unbounded waiting costs make the memoryless welfare −∞ whenever
        // some client cannot reach any holder, which degenerates the
        // greedy (every placement looks equally worthless and OPT
        // collapses to DOM). Never-observed pairs are a finite-observation
        // artifact, so smooth them with a small ambient rate (2 % of the
        // trace mean) before estimating OPT.
        let floor = (rates.mean_rate() * 0.02).max(1e-12);
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                if rates.rate(a, b) == 0.0 {
                    rates.set_rate(a, b, floor);
                }
            }
        }
    }
    let hsys = HeterogeneousSystem::pure_p2p(rates, rho);
    let opt_matrix = greedy_heterogeneous(&hsys, demand, profile, utility);
    vec![
        PolicyKind::Static {
            label: "OPT",
            counts: opt_matrix.to_counts(),
        },
        PolicyKind::Static {
            label: "UNI",
            counts: uniform(demand.items(), nodes, rho),
        },
        PolicyKind::Static {
            label: "SQRT",
            counts: sqrt_proportional(demand, nodes, rho),
        },
        PolicyKind::Static {
            label: "PROP",
            counts: proportional(demand, nodes, rho),
        },
        PolicyKind::Static {
            label: "DOM",
            counts: dominant(demand, nodes, rho),
        },
    ]
}

/// Extract `(U − U_OPT)/|U_OPT|` in percent for every non-OPT policy,
/// using the *simulated* OPT utility as the reference (as the paper's
/// Fig. 4–6 do).
///
/// # Panics
/// Panics if the suite carries no `OPT` entry; every suite the engines
/// build includes one.
pub fn normalized_losses(suite: &[(String, TrialAggregate)]) -> Vec<(String, f64)> {
    let u_opt = suite
        .iter()
        .find(|(l, _)| l == "OPT")
        .map(|(_, a)| a.mean_rate)
        .expect("suite must contain OPT");
    suite
        .iter()
        .filter(|(l, _)| l != "OPT")
        .map(|(l, a)| {
            (
                l.clone(),
                impatience_sim::metrics::normalized_loss_percent(a.mean_rate, u_opt),
            )
        })
        .collect()
}

/// Convenience: the paper's §6.2 homogeneous setting (50 pure-P2P nodes,
/// 50 items, ρ = 5, μ = 0.05, Pareto(ω = 1) demand).
pub fn paper_homogeneous_setting(
    utility: Arc<dyn DelayUtility>,
    duration: f64,
) -> (SimConfig, ContactSource, SystemModel) {
    let system = SystemModel::pure_p2p(50, 5, 0.05);
    let demand = pareto_demand(50);
    let config = SimConfig::builder(50, 5)
        .demand(demand)
        .utility(utility)
        .bin(60.0)
        .warmup_fraction(0.3)
        .build();
    let source = ContactSource::homogeneous(50, 0.05, duration);
    (config, source, system)
}

/// Format one CSV row of a loss table.
pub fn loss_row(param: f64, losses: &[(String, f64)]) -> String {
    let mut row = format!("{param}");
    for (_, loss) in losses {
        row.push_str(&format!(",{loss}"));
    }
    row
}

/// Header matching [`loss_row`].
pub fn loss_header(param_name: &str, losses: &[(String, f64)]) -> String {
    let mut h = param_name.to_string();
    for (label, _) in losses {
        h.push_str(&format!(",{label}"));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::utility::Step;

    #[test]
    fn competitor_suite_has_expected_labels() {
        let system = SystemModel::pure_p2p(10, 2, 0.05);
        let demand = pareto_demand(10);
        let comp = homogeneous_competitors(&system, &demand, &Step::new(1.0));
        let labels: Vec<String> = comp.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["OPT", "UNI", "SQRT", "PROP", "DOM"]);
        for p in &comp {
            if let PolicyKind::Static { counts, .. } = p {
                assert_eq!(counts.total(), 20);
            }
        }
    }

    #[test]
    fn loss_table_formatting() {
        let losses = vec![("QCR".to_string(), -1.5), ("UNI".to_string(), -20.0)];
        assert_eq!(loss_header("tau", &losses), "tau,QCR,UNI");
        assert_eq!(loss_row(2.0, &losses), "2,-1.5,-20");
    }
}
