//! The committed `experiments/*.toml` specs must always parse, validate,
//! and plan. This is the cheap half of `impatience reproduce --check`:
//! it catches schema drift without running any simulation.

use std::collections::BTreeSet;
use std::path::Path;

use impatience_exp::Registry;

fn registry() -> Registry {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../experiments");
    Registry::load_dir(&dir).expect("experiments/ must load")
}

#[test]
fn all_committed_specs_parse_validate_and_plan() {
    let reg = registry();
    assert_eq!(reg.all().len(), 13, "expected 13 committed specs");
    let mut outputs = BTreeSet::new();
    for spec in reg.all() {
        spec.validate()
            .unwrap_or_else(|e| panic!("{} failed validation: {e}", spec.name));
        let plan = spec.plan().expect("plan");
        assert!(!plan.outputs.is_empty(), "{} plans no outputs", spec.name);
        for out in &plan.outputs {
            assert!(
                outputs.insert(out.clone()),
                "duplicate output file {out} (from {})",
                spec.name
            );
        }
    }
}

#[test]
fn every_paper_figure_is_covered() {
    let reg = registry();
    let figures: BTreeSet<u32> = reg.all().iter().filter_map(|s| s.figure).collect();
    assert_eq!(figures, (1..=6).collect::<BTreeSet<u32>>());
}

#[test]
fn spec_selection_by_name_and_figure() {
    let reg = registry();
    let by_name = reg.by_names(&["fig4".to_string()]).unwrap();
    assert_eq!(by_name.len(), 1);
    assert_eq!(by_name[0].figure, Some(4));

    let by_fig = reg.by_figure(2).unwrap();
    assert_eq!(by_fig.len(), 1);
    assert_eq!(by_fig[0].name, "fig2");

    assert!(reg.by_names(&["nonexistent".to_string()]).is_err());
    assert!(reg.by_figure(42).is_err());
}
