//! Crash-safe file output: write-temp-then-rename.
//!
//! Every results artifact in the workspace (JSONL event traces,
//! manifests, CSV tables, campaign checkpoints) is committed through
//! [`AtomicFile`]: bytes accumulate in `<path>.tmp~` and the final
//! `rename` publishes them in one step. A crash mid-write leaves the
//! previous version of the file (or nothing) plus an orphaned temp file
//! — never a torn artifact that parses halfway.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Suffix appended to the destination name while writing.
const TMP_SUFFIX: &str = ".tmp~";

/// A file that becomes visible at its destination only on [`commit`].
///
/// Implements [`Write`] (buffered). Dropping without committing removes
/// the temp file, so an aborted writer leaves no partial output behind.
///
/// [`commit`]: AtomicFile::commit
#[derive(Debug)]
pub struct AtomicFile {
    dest: PathBuf,
    tmp: PathBuf,
    writer: Option<BufWriter<File>>,
}

impl AtomicFile {
    /// Start writing the file that will land at `dest`.
    pub fn create(dest: impl Into<PathBuf>) -> io::Result<AtomicFile> {
        let dest = dest.into();
        let mut name = dest
            .file_name()
            .ok_or_else(|| io::Error::other("atomic write needs a file name"))?
            .to_os_string();
        name.push(TMP_SUFFIX);
        let tmp = dest.with_file_name(name);
        let writer = BufWriter::new(File::create(&tmp)?);
        Ok(AtomicFile {
            dest,
            tmp,
            writer: Some(writer),
        })
    }

    /// The destination path.
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    /// Flush, sync to disk, and atomically publish at the destination.
    pub fn commit(mut self) -> io::Result<()> {
        let writer = self
            .writer
            .take()
            .ok_or_else(|| io::Error::other("atomic file already committed"))?;
        let file = writer
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?;
        // Durability before visibility: the rename must not outrun the
        // data hitting the disk, or a crash could publish an empty file.
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.dest)
    }

    fn inner(&mut self) -> io::Result<&mut BufWriter<File>> {
        self.writer
            .as_mut()
            .ok_or_else(|| io::Error::other("atomic file already committed"))
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner()?.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner()?.flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.writer.take().is_some() {
            // Abandoned without commit: clean up the temp file.
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Write `bytes` to `path` atomically in one call.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = AtomicFile::create(path)?;
    f.write_all(bytes)?;
    f.commit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("impatience-obs-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn commit_publishes_and_removes_temp() {
        let dest = scratch("commit.txt");
        let _ = std::fs::remove_file(&dest);
        let mut f = AtomicFile::create(&dest).unwrap();
        f.write_all(b"hello\n").unwrap();
        let tmp = dest.with_file_name("commit.txt.tmp~");
        assert!(tmp.exists(), "temp file present before commit");
        assert!(!dest.exists(), "destination absent before commit");
        f.commit().unwrap();
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "hello\n");
        assert!(!tmp.exists(), "temp file gone after commit");
        std::fs::remove_file(&dest).ok();
    }

    #[test]
    fn drop_without_commit_leaves_previous_version() {
        let dest = scratch("abort.txt");
        std::fs::write(&dest, "old").unwrap();
        {
            let mut f = AtomicFile::create(&dest).unwrap();
            f.write_all(b"new half-written").unwrap();
            // dropped here: simulated crash before commit
        }
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "old");
        assert!(
            !dest.with_file_name("abort.txt.tmp~").exists(),
            "temp cleaned up on drop"
        );
        std::fs::remove_file(&dest).ok();
    }

    #[test]
    fn write_atomic_one_shot() {
        let dest = scratch("oneshot.json");
        write_atomic(&dest, b"{}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&dest).unwrap(), "{}\n");
        std::fs::remove_file(&dest).ok();
    }
}
