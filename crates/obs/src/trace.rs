//! Offline analysis of JSONL event traces.
//!
//! Every artifact the workspace writes with [`crate::JsonlSink`] —
//! `impatience simulate --trace-out`, `verify --trace-out`, reproduce
//! traces — is one JSON object per line tagged with an `"ev"`
//! discriminant. [`TraceSummary`] folds such a stream into event counts,
//! the simulation-time range, a span/solver phase aggregate, and top-k
//! slow trials/cells/scenarios; [`render_diff`] compares two summaries
//! (the before/after workflow for perf PRs); and
//! [`TraceSummary::to_registry`] re-exports a trace as Prometheus text
//! exposition. The `impatience trace` subcommand is a thin shell over
//! this module, so everything here is testable without the CLI.
//!
//! Parsing is deliberately lenient: unknown event kinds are counted
//! under their own name, missing fields default to zero, and unparseable
//! lines are tallied in [`TraceSummary::parse_errors`] rather than
//! aborting — traces from older schema revisions should still summarize.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use impatience_json::Json;

use crate::registry::MetricsRegistry;
use crate::span::PhaseAgg;

/// One completed trial observed in a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialRecord {
    /// The trial's RNG seed.
    pub seed: u64,
    /// Wall-clock seconds the trial took.
    pub wall_s: f64,
}

/// One completed experiment cell observed in a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct CellRecord {
    /// Spec name (e.g. `fig4`).
    pub spec: String,
    /// Cell label within the spec.
    pub cell: String,
    /// CSV rows contributed.
    pub rows: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

/// One verification scenario observed in a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRecord {
    /// Scenario index within the conformance matrix.
    pub index: u64,
    /// Invariants passed / failed / skipped.
    pub passed: u64,
    /// Invariants failed.
    pub failed: u64,
    /// Invariants skipped.
    pub skipped: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

/// Aggregated view of one JSONL trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Total lines read (including unparseable ones).
    pub lines: u64,
    /// Lines that failed to parse as tagged JSON objects.
    pub parse_errors: u64,
    /// Event count per `"ev"` kind.
    pub events: BTreeMap<String, u64>,
    /// Earliest simulation time seen in any timed event.
    pub t_min: Option<f64>,
    /// Latest simulation time seen in any timed event.
    pub t_max: Option<f64>,
    /// Named spans (from `span` events) and solver completions (under
    /// `solver/<name>`), aggregated like a phase tree.
    pub spans: PhaseAgg,
    /// Every completed trial, in stream order.
    pub trials: Vec<TrialRecord>,
    /// Every completed experiment cell, in stream order.
    pub cells: Vec<CellRecord>,
    /// Every verification scenario, in stream order.
    pub scenarios: Vec<ScenarioRecord>,
}

impl TraceSummary {
    /// Summarize a line stream.
    ///
    /// # Errors
    /// Propagates reader I/O errors; malformed lines are tallied, not
    /// fatal.
    pub fn from_reader(reader: impl BufRead) -> std::io::Result<TraceSummary> {
        let mut s = TraceSummary::default();
        for line in reader.lines() {
            let line = line?;
            s.lines += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match Json::parse(trimmed) {
                Ok(v) => s.ingest(&v),
                Err(_) => s.parse_errors += 1,
            }
        }
        Ok(s)
    }

    /// Summarize a JSONL trace file.
    ///
    /// # Errors
    /// Fails if the file cannot be opened or read.
    pub fn from_file(path: &Path) -> std::io::Result<TraceSummary> {
        TraceSummary::from_reader(BufReader::new(File::open(path)?))
    }

    fn ingest(&mut self, v: &Json) {
        let Some(kind) = v.get("ev").and_then(Json::as_str) else {
            self.parse_errors += 1;
            return;
        };
        *self.events.entry(kind.to_string()).or_insert(0) += 1;
        if let Some(t) = v.get("t").and_then(Json::as_f64) {
            self.t_min = Some(self.t_min.map_or(t, |m| m.min(t)));
            self.t_max = Some(self.t_max.map_or(t, |m| m.max(t)));
        }
        let f = |key: &str| v.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let u = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
        let text = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        };
        match kind {
            "span" => {
                let name = text("name");
                if !name.is_empty() {
                    self.spans.record(&name, f("wall_s"));
                }
            }
            "solver_done" => {
                let solver = text("solver");
                if !solver.is_empty() {
                    self.spans.record(&format!("solver/{solver}"), f("wall_s"));
                }
            }
            "trial_done" => self.trials.push(TrialRecord {
                seed: u("seed"),
                wall_s: f("wall_s"),
            }),
            "experiment" => self.cells.push(CellRecord {
                spec: text("spec"),
                cell: text("cell"),
                rows: u("rows"),
                wall_s: f("wall_s"),
            }),
            "scenario" => self.scenarios.push(ScenarioRecord {
                index: u("index"),
                passed: u("passed"),
                failed: u("failed"),
                skipped: u("skipped"),
                wall_s: f("wall_s"),
            }),
            _ => {}
        }
    }

    /// Total events across kinds.
    pub fn total_events(&self) -> u64 {
        self.events.values().sum()
    }

    /// Summed wall time of completed trials, seconds.
    pub fn total_trial_wall_s(&self) -> f64 {
        self.trials.iter().map(|t| t.wall_s).sum()
    }

    /// Human-readable summary with top-`k` slow trials/cells/scenarios.
    pub fn render(&self, k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} lines, {} events ({} parse errors)",
            self.lines,
            self.total_events(),
            self.parse_errors
        );
        if let (Some(lo), Some(hi)) = (self.t_min, self.t_max) {
            let _ = writeln!(out, "simulation time range: {lo:.3} .. {hi:.3} min");
        }
        if !self.events.is_empty() {
            let _ = writeln!(out, "events by kind:");
            for (kind, count) in &self.events {
                let _ = writeln!(out, "  {kind:<14} {count:>12}");
            }
        }
        let phase = self.spans.report();
        if !phase.is_empty() {
            let _ = writeln!(out, "spans and solver completions:");
            out.push_str(&indent(&phase.render(), "  "));
        }
        if !self.trials.is_empty() {
            let mut slow = self.trials.clone();
            slow.sort_by(|a, b| b.wall_s.total_cmp(&a.wall_s));
            let _ = writeln!(
                out,
                "trials: {} totalling {:.3} s wall; slowest {}:",
                self.trials.len(),
                self.total_trial_wall_s(),
                k.min(slow.len())
            );
            for t in slow.iter().take(k) {
                let _ = writeln!(out, "  seed {:<12} {:>9.4} s", t.seed, t.wall_s);
            }
        }
        if !self.cells.is_empty() {
            let mut slow = self.cells.clone();
            slow.sort_by(|a, b| b.wall_s.total_cmp(&a.wall_s));
            let _ = writeln!(
                out,
                "experiment cells: {}; slowest {}:",
                self.cells.len(),
                k.min(slow.len())
            );
            for c in slow.iter().take(k) {
                let _ = writeln!(
                    out,
                    "  {:<40} {:>9.3} s  ({} rows)",
                    format!("{}:{}", c.spec, c.cell),
                    c.wall_s,
                    c.rows
                );
            }
        }
        if !self.scenarios.is_empty() {
            let failed: u64 = self.scenarios.iter().map(|s| s.failed).sum();
            let mut slow = self.scenarios.clone();
            slow.sort_by(|a, b| b.wall_s.total_cmp(&a.wall_s));
            let _ = writeln!(
                out,
                "verification scenarios: {} ({} invariant failures); slowest {}:",
                self.scenarios.len(),
                failed,
                k.min(slow.len())
            );
            for s in slow.iter().take(k) {
                let _ = writeln!(
                    out,
                    "  scenario {:<4} {:>9.3} s  ({} passed, {} failed, {} skipped)",
                    s.index, s.wall_s, s.passed, s.failed, s.skipped
                );
            }
        }
        out
    }

    /// Re-export the trace as a metrics registry (the backing of
    /// `impatience trace export --prom`).
    pub fn to_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for (kind, count) in &self.events {
            reg.counter_add(
                "impatience_trace_events_total",
                "Events per kind observed in the trace.",
                &[("kind", kind)],
                *count as f64,
            );
        }
        reg.absorb_phase_report(&self.spans.report());
        if !self.trials.is_empty() {
            reg.counter_add(
                "impatience_trace_trials_total",
                "Completed trials observed in the trace.",
                &[],
                self.trials.len() as f64,
            );
            reg.counter_add(
                "impatience_trace_trial_wall_seconds_total",
                "Summed wall time of completed trials.",
                &[],
                self.total_trial_wall_s(),
            );
        }
        if !self.cells.is_empty() {
            reg.counter_add(
                "impatience_trace_experiment_cells_total",
                "Completed experiment cells observed in the trace.",
                &[],
                self.cells.len() as f64,
            );
        }
        if !self.scenarios.is_empty() {
            let failed: u64 = self.scenarios.iter().map(|s| s.failed).sum();
            reg.counter_add(
                "impatience_trace_scenarios_total",
                "Verification scenarios observed in the trace.",
                &[],
                self.scenarios.len() as f64,
            );
            reg.counter_add(
                "impatience_trace_invariant_failures_total",
                "Invariant failures observed in the trace.",
                &[],
                failed as f64,
            );
        }
        reg
    }
}

/// Compare two summaries: per-kind event deltas, new/missing kinds, span
/// wall deltas, trial totals — the before/after readout for perf PRs.
pub fn render_diff(a: &TraceSummary, b: &TraceSummary, label_a: &str, label_b: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace diff: A = {label_a}, B = {label_b}");
    let _ = writeln!(
        out,
        "  lines {} -> {}, events {} -> {}, parse errors {} -> {}",
        a.lines,
        b.lines,
        a.total_events(),
        b.total_events(),
        a.parse_errors,
        b.parse_errors
    );

    let kinds: Vec<&String> = {
        let mut all: Vec<&String> = a.events.keys().chain(b.events.keys()).collect();
        all.sort();
        all.dedup();
        all
    };
    let _ = writeln!(
        out,
        "  {:<14} {:>12} {:>12} {:>13}",
        "event", "A", "B", "delta"
    );
    for kind in &kinds {
        let ca = a.events.get(*kind).copied().unwrap_or(0);
        let cb = b.events.get(*kind).copied().unwrap_or(0);
        let marker = if ca == 0 {
            "  (new in B)"
        } else if cb == 0 {
            "  (missing in B)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {:<14} {:>12} {:>12} {:>+13}{marker}",
            kind,
            ca,
            cb,
            cb as i128 - ca as i128
        );
    }

    let ra = a.spans.report();
    let rb = b.spans.report();
    if !ra.is_empty() || !rb.is_empty() {
        let paths: Vec<String> = {
            let mut all: Vec<String> = ra
                .phases
                .iter()
                .chain(rb.phases.iter())
                .map(|p| p.path.clone())
                .collect();
            all.sort();
            all.dedup();
            all
        };
        let _ = writeln!(
            out,
            "  {:<30} {:>11} {:>11} {:>12}",
            "span wall", "A (s)", "B (s)", "delta"
        );
        for path in &paths {
            let wa = ra
                .phases
                .iter()
                .find(|p| &p.path == path)
                .map_or(0.0, |p| p.wall_s);
            let wb = rb
                .phases
                .iter()
                .find(|p| &p.path == path)
                .map_or(0.0, |p| p.wall_s);
            let pct = if wa > 0.0 {
                format!("{:+.1}%", 100.0 * (wb - wa) / wa)
            } else {
                "new".to_string()
            };
            let _ = writeln!(out, "  {path:<30} {wa:>11.4} {wb:>11.4} {pct:>12}");
        }
    }

    let (ta, tb) = (a.total_trial_wall_s(), b.total_trial_wall_s());
    if ta > 0.0 || tb > 0.0 {
        let pct = if ta > 0.0 {
            format!(" ({:+.1}%)", 100.0 * (tb - ta) / ta)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  trial wall total: {ta:.3} s -> {tb:.3} s{pct} over {} -> {} trials",
            a.trials.len(),
            b.trials.len()
        );
    }
    out
}

fn indent(text: &str, prefix: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        out.push_str(prefix);
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::sink::{JsonlSink, Sink};

    fn sample_trace() -> String {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&Event::Contact { t: 1.0, a: 0, b: 1 });
        sink.record(&Event::Request {
            t: 1.5,
            node: 0,
            item: 2,
        });
        sink.record(&Event::Fulfillment {
            t: 3.0,
            node: 0,
            item: 2,
            wait: 1.5,
            queries: 1,
        });
        sink.record(&Event::Span {
            name: "exchange",
            wall_s: 0.25,
        });
        sink.record(&Event::SolverDone {
            solver: "greedy",
            iterations: 10,
            evaluations: 40,
            wall_s: 0.05,
        });
        sink.record(&Event::TrialDone {
            seed: 7,
            wall_s: 0.5,
        });
        sink.record(&Event::TrialDone {
            seed: 8,
            wall_s: 1.5,
        });
        sink.record(&Event::ExperimentDone {
            spec: "fig4".into(),
            cell: "power alpha=-2".into(),
            rows: 3,
            wall_s: 2.0,
        });
        sink.record(&Event::ScenarioDone {
            index: 0,
            passed: 5,
            failed: 1,
            skipped: 0,
            wall_s: 0.3,
        });
        String::from_utf8(sink.into_inner().unwrap()).unwrap()
    }

    #[test]
    fn summarizes_counts_and_ranges() {
        let s = TraceSummary::from_reader(sample_trace().as_bytes()).unwrap();
        assert_eq!(s.parse_errors, 0);
        assert_eq!(s.events.get("contact"), Some(&1));
        assert_eq!(s.events.get("trial_done"), Some(&2));
        assert_eq!(s.t_min, Some(1.0));
        assert_eq!(s.t_max, Some(3.0));
        assert_eq!(s.trials.len(), 2);
        assert!((s.total_trial_wall_s() - 2.0).abs() < 1e-12);
        assert_eq!(s.cells[0].spec, "fig4");
        assert_eq!(s.scenarios[0].failed, 1);
        let text = s.render(5);
        assert!(text.contains("events by kind"));
        assert!(text.contains("solver/greedy"));
        assert!(text.contains("seed 8"), "slowest trial first: {text}");
    }

    #[test]
    fn tolerates_garbage_lines() {
        let trace = "not json\n{\"no_ev\":1}\n{\"ev\":\"contact\",\"t\":1.0,\"a\":0,\"b\":1}\n";
        let s = TraceSummary::from_reader(trace.as_bytes()).unwrap();
        assert_eq!(s.lines, 3);
        assert_eq!(s.parse_errors, 2);
        assert_eq!(s.total_events(), 1);
    }

    #[test]
    fn diff_flags_new_and_missing_kinds() {
        let a = TraceSummary::from_reader(
            "{\"ev\":\"contact\",\"t\":1.0,\"a\":0,\"b\":1}\n".as_bytes(),
        )
        .unwrap();
        let b = TraceSummary::from_reader(
            "{\"ev\":\"request\",\"t\":1.0,\"node\":0,\"item\":1}\n".as_bytes(),
        )
        .unwrap();
        let text = render_diff(&a, &b, "a.jsonl", "b.jsonl");
        assert!(text.contains("(missing in B)"));
        assert!(text.contains("(new in B)"));
    }

    #[test]
    fn diff_reports_span_deltas() {
        let mk = |wall: f64| {
            let mut sink = JsonlSink::new(Vec::new());
            sink.record(&Event::Span {
                name: "exchange",
                wall_s: wall,
            });
            let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
            TraceSummary::from_reader(text.as_bytes()).unwrap()
        };
        let text = render_diff(&mk(1.0), &mk(1.5), "a", "b");
        assert!(text.contains("exchange"));
        assert!(text.contains("+50.0%"), "got: {text}");
    }

    #[test]
    fn exports_registry_with_trace_metrics() {
        let s = TraceSummary::from_reader(sample_trace().as_bytes()).unwrap();
        let reg = s.to_registry();
        let text = reg.render();
        assert!(text.contains(r#"impatience_trace_events_total{kind="contact"} 1"#));
        assert!(text.contains("impatience_trace_trials_total 2"));
        assert!(text.contains(r#"impatience_span_wall_seconds_total{path="solver/greedy"}"#));
        crate::registry::parse_prometheus(&text).unwrap();
    }
}
