//! Live event streaming: the sink → SSE bridge used by `impatience serve`.
//!
//! A [`StreamSink`] is a [`Sink`] that batches serialized JSONL event
//! lines exactly like [`JsonlSink`](crate::JsonlSink) (same 64 KiB
//! threshold, same checkpoint-boundary `flush`), but drains into a
//! shared, append-only, in-memory [`EventStream`] instead of a writer.
//! Any number of subscribers ([`StreamCursor`]) can then replay the
//! stream from an arbitrary offset and block for new lines — which is
//! precisely what a Server-Sent-Events endpoint needs for
//! `Last-Event-ID` reconnect semantics.
//!
//! ## Flush on subscriber attach
//!
//! Batching alone would hand a fresh SSE client a view up to 64 KiB
//! stale: events sit in the sink-local batch buffer until a checkpoint
//! boundary. Subscribing therefore bumps a shared attach epoch;
//! [`StreamSink::record`] compares the epoch on every event and drains
//! its batch as soon as it notices a new subscriber, so the stale
//! window closes at the next recorded event rather than the next
//! checkpoint. (The subscriber cannot drain the sink directly — the
//! sink is owned by the campaign thread — so the epoch check is the
//! lock-free signal that crosses threads.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::event::Event;
use crate::sink::Sink;

/// What a blocking wait on an [`EventStream`] observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamProgress {
    /// Total number of published lines at the time of return.
    pub len: usize,
    /// Whether the stream has been closed (no more lines will arrive).
    pub closed: bool,
}

#[derive(Default)]
struct StreamState {
    lines: Vec<Arc<str>>,
    closed: bool,
}

struct StreamShared {
    state: Mutex<StreamState>,
    cond: Condvar,
    /// Bumped by every `subscribe`; sinks drain when they see it move.
    attach_epoch: AtomicU64,
}

/// A shared, append-only sequence of serialized JSONL event lines.
///
/// Cloning is cheap (an `Arc` bump); one handle feeds a [`StreamSink`]
/// on the producing thread while any number of clones serve readers.
/// Lines are indexed from 0 and never mutated once published, so an
/// SSE endpoint can use the index directly as the event id.
#[derive(Clone)]
pub struct EventStream {
    shared: Arc<StreamShared>,
}

impl Default for EventStream {
    fn default() -> Self {
        EventStream::new()
    }
}

impl EventStream {
    /// An empty, open stream.
    pub fn new() -> Self {
        EventStream {
            shared: Arc::new(StreamShared {
                state: Mutex::new(StreamState::default()),
                cond: Condvar::new(),
                attach_epoch: AtomicU64::new(0),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, StreamState> {
        // A poisoned mutex only means a publisher panicked mid-append;
        // the published prefix is still valid for readers.
        self.shared
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Current attach-epoch value (bumped by [`EventStream::subscribe`]).
    pub fn attach_epoch(&self) -> u64 {
        self.shared.attach_epoch.load(Ordering::Acquire)
    }

    /// Register a new subscriber and return a cursor positioned at
    /// `offset` (clamped to the current length on reads past the end
    /// only when the stream is closed; otherwise reads block).
    ///
    /// This is the flush-on-attach hook: it bumps the shared epoch so
    /// the producing [`StreamSink`] drains its batch buffer at the next
    /// recorded event instead of waiting for a checkpoint boundary.
    pub fn subscribe(&self, offset: usize) -> StreamCursor {
        self.shared.attach_epoch.fetch_add(1, Ordering::AcqRel);
        StreamCursor {
            stream: self.clone(),
            next: offset,
        }
    }

    /// Append one line (no trailing newline) and wake waiting readers.
    pub fn publish(&self, line: impl Into<Arc<str>>) {
        let mut st = self.lock();
        if st.closed {
            return;
        }
        st.lines.push(line.into());
        drop(st);
        self.shared.cond.notify_all();
    }

    /// Append every newline-separated line in `batch`, then wake readers.
    ///
    /// This is the [`StreamSink`] drain path: one lock acquisition per
    /// 64 KiB batch rather than per event.
    pub fn publish_batch(&self, batch: &str) {
        if batch.is_empty() {
            return;
        }
        let mut st = self.lock();
        if st.closed {
            return;
        }
        for line in batch.lines() {
            if !line.is_empty() {
                st.lines.push(Arc::from(line));
            }
        }
        drop(st);
        self.shared.cond.notify_all();
    }

    /// Mark the stream complete: readers drain the remainder and stop.
    pub fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        drop(st);
        self.shared.cond.notify_all();
    }

    /// Whether [`EventStream::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Number of lines published so far.
    pub fn len(&self) -> usize {
        self.lock().lines.len()
    }

    /// Whether no lines have been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The line at `idx`, if published.
    pub fn get(&self, idx: usize) -> Option<Arc<str>> {
        self.lock().lines.get(idx).cloned()
    }

    /// A snapshot of lines `[from, len)`.
    pub fn snapshot_from(&self, from: usize) -> Vec<Arc<str>> {
        let st = self.lock();
        if from >= st.lines.len() {
            return Vec::new();
        }
        st.lines[from..].to_vec()
    }

    /// Block until the stream grows past `idx`, closes, or `timeout`
    /// elapses; returns the progress observed at wakeup.
    pub fn wait_beyond(&self, idx: usize, timeout: Duration) -> StreamProgress {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            if st.lines.len() > idx || st.closed {
                return StreamProgress {
                    len: st.lines.len(),
                    closed: st.closed,
                };
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return StreamProgress {
                    len: st.lines.len(),
                    closed: st.closed,
                };
            }
            let (guard, _timed_out) = self
                .shared
                .cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
    }
}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("EventStream")
            .field("len", &st.lines.len())
            .field("closed", &st.closed)
            .finish()
    }
}

/// A subscriber's position in an [`EventStream`].
///
/// Obtained from [`EventStream::subscribe`]; yields `(index, line)`
/// pairs in publication order, blocking (bounded by a caller-supplied
/// timeout) while the stream is open and drained lines run out.
pub struct StreamCursor {
    stream: EventStream,
    next: usize,
}

impl StreamCursor {
    /// The index the next returned line will have.
    pub fn position(&self) -> usize {
        self.next
    }

    /// Next line if one is already published — never blocks.
    pub fn try_next(&mut self) -> Option<(usize, Arc<str>)> {
        let line = self.stream.get(self.next)?;
        let idx = self.next;
        self.next += 1;
        Some((idx, line))
    }

    /// Next line, waiting up to `timeout` for one to be published.
    ///
    /// Returns `None` on timeout or when the stream is closed and fully
    /// drained — callers distinguish the two via
    /// [`StreamCursor::finished`].
    pub fn next_timeout(&mut self, timeout: Duration) -> Option<(usize, Arc<str>)> {
        if let Some(hit) = self.try_next() {
            return Some(hit);
        }
        self.stream.wait_beyond(self.next, timeout);
        self.try_next()
    }

    /// Whether the stream is closed and this cursor has read every line.
    pub fn finished(&self) -> bool {
        self.stream.is_closed() && self.next >= self.stream.len()
    }
}

/// A [`Sink`] that batches JSONL lines into an [`EventStream`].
///
/// Identical batching discipline to [`JsonlSink`](crate::JsonlSink)
/// (drain at [`StreamSink::BATCH_BYTES`], on [`Sink::flush`] at
/// checkpoint boundaries, and on drop), plus the flush-on-attach rule:
/// if the stream's attach epoch moved since the last drain — a new SSE
/// subscriber arrived — the very next [`Sink::record`] drains first, so
/// fresh subscribers never sit behind a stale 64 KiB window.
pub struct StreamSink {
    stream: EventStream,
    buf: String,
    seen_epoch: u64,
}

impl StreamSink {
    /// Drain the batch buffer into the stream past this size.
    pub const BATCH_BYTES: usize = 64 * 1024;

    /// Batch events into `stream`.
    pub fn new(stream: EventStream) -> Self {
        let seen_epoch = stream.attach_epoch();
        StreamSink {
            stream,
            buf: String::with_capacity(Self::BATCH_BYTES + 4096),
            seen_epoch,
        }
    }

    /// The stream this sink publishes into.
    pub fn stream(&self) -> &EventStream {
        &self.stream
    }

    /// Bytes currently batched but not yet published.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    fn drain(&mut self) {
        self.stream.publish_batch(&self.buf);
        self.buf.clear();
    }

    /// Drain any remainder and mark the stream closed.
    pub fn finish(mut self) -> EventStream {
        self.drain();
        self.stream.close();
        self.stream.clone()
    }
}

impl Sink for StreamSink {
    fn record(&mut self, event: &Event) {
        // Flush-on-attach: a subscriber arriving between checkpoints
        // bumps the epoch; drain the stale batch before appending.
        let epoch = self.stream.attach_epoch();
        if epoch != self.seen_epoch {
            self.seen_epoch = epoch;
            self.drain();
        }
        event.write_jsonl(&mut self.buf);
        self.buf.push('\n');
        if self.buf.len() >= Self::BATCH_BYTES {
            self.drain();
        }
    }

    fn flush(&mut self) {
        self.drain();
    }
}

impl Drop for StreamSink {
    fn drop(&mut self) {
        self.drain();
    }
}

impl std::fmt::Debug for StreamSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSink")
            .field("pending_bytes", &self.buf.len())
            .field("stream", &self.stream)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn contact(t: f64) -> Event {
        Event::Contact { t, a: 0, b: 1 }
    }

    #[test]
    fn publishes_parseable_lines_in_order() {
        let stream = EventStream::new();
        let mut sink = StreamSink::new(stream.clone());
        for i in 0..10 {
            sink.record(&contact(i as f64));
        }
        sink.flush();
        assert_eq!(stream.len(), 10);
        for i in 0..10 {
            let line = stream.get(i).unwrap();
            let json = impatience_json::Json::parse(&line).unwrap();
            assert_eq!(json.get("ev").and_then(|k| k.as_str()), Some("contact"));
            assert_eq!(
                json.get("t").and_then(|t| t.as_f64()),
                Some(i as f64),
                "line {i} out of order"
            );
        }
    }

    #[test]
    fn batches_until_flush() {
        let stream = EventStream::new();
        let mut sink = StreamSink::new(stream.clone());
        for i in 0..100 {
            sink.record(&contact(i as f64));
        }
        assert_eq!(stream.len(), 0, "events must batch, not write through");
        assert!(sink.pending_bytes() > 0);
        sink.flush();
        assert_eq!(stream.len(), 100);
    }

    #[test]
    fn drains_at_batch_threshold() {
        let stream = EventStream::new();
        let mut sink = StreamSink::new(stream.clone());
        let n = StreamSink::BATCH_BYTES / 20;
        for i in 0..n {
            sink.record(&Event::Replication {
                t: i as f64,
                count: i as u64,
            });
        }
        assert!(
            !stream.is_empty(),
            "crossing BATCH_BYTES must publish without an explicit flush"
        );
    }

    #[test]
    fn subscribe_triggers_drain_on_next_record() {
        let stream = EventStream::new();
        let mut sink = StreamSink::new(stream.clone());
        for i in 0..5 {
            sink.record(&contact(i as f64));
        }
        assert_eq!(stream.len(), 0, "below threshold: all 5 still batched");

        // A fresh SSE subscriber attaches mid-batch...
        let mut cursor = stream.subscribe(0);
        assert!(cursor.try_next().is_none(), "nothing drained yet");

        // ...and the very next recorded event drains the stale window.
        sink.record(&contact(5.0));
        assert_eq!(
            stream.len(),
            5,
            "attach epoch must force the pre-subscribe batch out"
        );
        let (idx, first) = cursor.try_next().unwrap();
        assert_eq!(idx, 0);
        assert!(first.contains("\"contact\""));
        // The triggering event itself is in the fresh batch; a flush
        // delivers it too.
        sink.flush();
        assert_eq!(stream.len(), 6);
    }

    #[test]
    fn cursor_replays_from_offset() {
        let stream = EventStream::new();
        for i in 0..8 {
            stream.publish(format!("line-{i}"));
        }
        let mut cursor = stream.subscribe(5);
        let (idx, line) = cursor.try_next().unwrap();
        assert_eq!((idx, &*line), (5, "line-5"));
        let (idx, line) = cursor.try_next().unwrap();
        assert_eq!((idx, &*line), (6, "line-6"));
        assert_eq!(cursor.position(), 7);
    }

    #[test]
    fn wait_wakes_on_publish_and_close() {
        let stream = EventStream::new();
        let publisher = {
            let stream = stream.clone();
            thread::spawn(move || {
                stream.publish("a");
                stream.publish("b");
                stream.close();
            })
        };
        let mut cursor = stream.subscribe(0);
        let mut seen = Vec::new();
        while !cursor.finished() {
            if let Some((_, line)) = cursor.next_timeout(Duration::from_secs(5)) {
                seen.push(line.to_string());
            }
        }
        publisher.join().unwrap();
        assert_eq!(seen, vec!["a", "b"]);
        assert!(cursor.finished());
    }

    #[test]
    fn wait_times_out_on_idle_open_stream() {
        let stream = EventStream::new();
        let progress = stream.wait_beyond(0, Duration::from_millis(10));
        assert_eq!(
            progress,
            StreamProgress {
                len: 0,
                closed: false
            }
        );
    }

    #[test]
    fn finish_closes_after_final_drain() {
        let stream = EventStream::new();
        let mut sink = StreamSink::new(stream.clone());
        sink.record(&contact(1.0));
        let stream = sink.finish();
        assert!(stream.is_closed());
        assert_eq!(stream.len(), 1);
        // Publishing after close is a no-op.
        stream.publish("late");
        assert_eq!(stream.len(), 1);
    }

    #[test]
    fn recorder_integration() {
        use crate::recorder::Recorder;
        let stream = EventStream::new();
        let mut rec = Recorder::new(StreamSink::new(stream.clone()));
        rec.contact(1.0, 0, 1);
        rec.replications(1.0, 3);
        rec.sink_mut().flush();
        assert_eq!(stream.len(), 2);
        let done = rec.into_sink().finish();
        assert!(done.is_closed());
    }
}
