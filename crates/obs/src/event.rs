//! The structured event vocabulary.

use impatience_json::Json;

/// One instrumented occurrence, emitted to a [`crate::Sink`].
///
/// Times are simulation minutes (the workspace convention); wall-clock
/// quantities carry a `_s` suffix and are seconds. The JSONL encoding
/// tags each record with an `"ev"` discriminant — see
/// [`Event::to_json`].
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Two nodes met.
    Contact {
        /// Simulation time.
        t: f64,
        /// First node (lower id).
        a: u32,
        /// Second node.
        b: u32,
    },
    /// A node started wanting an item.
    Request {
        /// Simulation time.
        t: f64,
        /// The requesting node.
        node: u32,
        /// The requested item.
        item: u32,
    },
    /// A request was satisfied from the node's own cache at creation.
    ImmediateHit {
        /// Simulation time.
        t: f64,
        /// The requesting node.
        node: u32,
        /// The requested item.
        item: u32,
    },
    /// An outstanding request was satisfied during a contact.
    Fulfillment {
        /// Simulation time.
        t: f64,
        /// The requesting node.
        node: u32,
        /// The item delivered.
        item: u32,
        /// Delay since the request was created.
        wait: f64,
        /// Contacts the requester had while waiting.
        queries: u32,
    },
    /// A request still open when the trial ended.
    Unfulfilled {
        /// Simulation time (end of trial).
        t: f64,
        /// The requesting node.
        node: u32,
        /// The item that never arrived.
        item: u32,
        /// How long the request had been open.
        wait: f64,
    },
    /// A contact triggered cache replications (copies transmitted).
    Replication {
        /// Simulation time.
        t: f64,
        /// Copies transmitted during this contact.
        count: u64,
    },
    /// One placement step of a solver (greedy iteration, bisection
    /// probe, ...).
    SolverStep {
        /// Which solver.
        solver: &'static str,
        /// 0-based step index.
        iteration: u64,
        /// The item acted on (or probed).
        item: u32,
        /// The step's marginal gain or convergence residual.
        value: f64,
    },
    /// A solver finished.
    SolverDone {
        /// Which solver.
        solver: &'static str,
        /// Steps taken.
        iterations: u64,
        /// Objective/marginal evaluations performed.
        evaluations: u64,
        /// Wall-clock seconds.
        wall_s: f64,
    },
    /// A named timed phase completed.
    Span {
        /// Phase name.
        name: &'static str,
        /// Wall-clock seconds.
        wall_s: f64,
    },
    /// One simulation trial completed.
    TrialDone {
        /// The trial's RNG seed.
        seed: u64,
        /// Wall-clock seconds.
        wall_s: f64,
    },
    /// One conformance scenario of the verification oracle finished
    /// (see `impatience-oracle`).
    ScenarioDone {
        /// 0-based scenario index within the matrix.
        index: u64,
        /// Invariant checks that passed.
        passed: u32,
        /// Invariant checks that failed.
        failed: u32,
        /// Invariant checks skipped as not applicable.
        skipped: u32,
        /// Wall-clock seconds.
        wall_s: f64,
    },
    /// One cell of a declarative experiment finished (see
    /// `impatience-exp`): a sweep point, panel, or table block of a
    /// `reproduce` run.
    ExperimentDone {
        /// The experiment spec name (e.g. `"fig4"`).
        spec: String,
        /// The cell label within the spec (e.g. `"power alpha=-2"`).
        cell: String,
        /// CSV rows the cell contributed.
        rows: u64,
        /// Wall-clock seconds.
        wall_s: f64,
    },
    /// An injected fault fired (see `impatience-sim`'s fault model).
    Fault {
        /// Simulation time.
        t: f64,
        /// Fault kind: `"contact_drop"`, `"node_down"`, `"node_up"`,
        /// `"cache_fault"`, or `"trace_truncated"`.
        kind: &'static str,
        /// The primary node affected.
        node: u32,
        /// Kind-specific detail: the peer for contact faults, the item
        /// lost for cache faults, 0 otherwise.
        aux: u32,
    },
}

impl Event {
    /// The `"ev"` discriminant used in the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Contact { .. } => "contact",
            Event::Request { .. } => "request",
            Event::ImmediateHit { .. } => "immediate_hit",
            Event::Fulfillment { .. } => "fulfillment",
            Event::Unfulfilled { .. } => "unfulfilled",
            Event::Replication { .. } => "replication",
            Event::SolverStep { .. } => "solver_step",
            Event::SolverDone { .. } => "solver_done",
            Event::Span { .. } => "span",
            Event::TrialDone { .. } => "trial_done",
            Event::ScenarioDone { .. } => "scenario",
            Event::ExperimentDone { .. } => "experiment",
            Event::Fault { .. } => "fault",
        }
    }

    /// Encode as a flat JSON object, `"ev"` first.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![("ev".into(), Json::from(self.kind()))];
        let mut push = |key: &str, value: Json| pairs.push((key.into(), value));
        match *self {
            Event::Contact { t, a, b } => {
                push("t", t.into());
                push("a", a.into());
                push("b", b.into());
            }
            Event::Request { t, node, item } | Event::ImmediateHit { t, node, item } => {
                push("t", t.into());
                push("node", node.into());
                push("item", item.into());
            }
            Event::Fulfillment {
                t,
                node,
                item,
                wait,
                queries,
            } => {
                push("t", t.into());
                push("node", node.into());
                push("item", item.into());
                push("wait", wait.into());
                push("queries", queries.into());
            }
            Event::Unfulfilled {
                t,
                node,
                item,
                wait,
            } => {
                push("t", t.into());
                push("node", node.into());
                push("item", item.into());
                push("wait", wait.into());
            }
            Event::Replication { t, count } => {
                push("t", t.into());
                push("count", count.into());
            }
            Event::SolverStep {
                solver,
                iteration,
                item,
                value,
            } => {
                push("solver", solver.into());
                push("iteration", iteration.into());
                push("item", item.into());
                push("value", value.into());
            }
            Event::SolverDone {
                solver,
                iterations,
                evaluations,
                wall_s,
            } => {
                push("solver", solver.into());
                push("iterations", iterations.into());
                push("evaluations", evaluations.into());
                push("wall_s", wall_s.into());
            }
            Event::Span { name, wall_s } => {
                push("name", name.into());
                push("wall_s", wall_s.into());
            }
            Event::TrialDone { seed, wall_s } => {
                push("seed", seed.into());
                push("wall_s", wall_s.into());
            }
            Event::ScenarioDone {
                index,
                passed,
                failed,
                skipped,
                wall_s,
            } => {
                push("index", index.into());
                push("passed", passed.into());
                push("failed", failed.into());
                push("skipped", skipped.into());
                push("wall_s", wall_s.into());
            }
            Event::ExperimentDone {
                ref spec,
                ref cell,
                rows,
                wall_s,
            } => {
                push("spec", spec.as_str().into());
                push("cell", cell.as_str().into());
                push("rows", rows.into());
                push("wall_s", wall_s.into());
            }
            Event::Fault { t, kind, node, aux } => {
                push("t", t.into());
                push("kind", kind.into());
                push("node", node.into());
                push("aux", aux.into());
            }
        }
        Json::Object(pairs)
    }

    /// Append the JSONL encoding of this event (one compact JSON object,
    /// no trailing newline) directly to `out`.
    ///
    /// Byte-identical to `self.to_json().write(out)` — checked by a test
    /// over every variant — but without building the intermediate
    /// [`Json`] tree, which is what made the JSONL sink ~5× slower than
    /// tally-only recording in the PR 1 bench.
    pub fn write_jsonl(&self, out: &mut String) {
        use impatience_json::{write_f64, write_str, write_u64};
        use std::fmt::Write as _;

        out.push_str("{\"ev\":\"");
        out.push_str(self.kind());
        out.push('"');
        let int = |out: &mut String, key: &str, n: i64| {
            out.push(',');
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            let _ = write!(out, "{n}");
        };
        let float = |out: &mut String, key: &str, x: f64| {
            out.push(',');
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            write_f64(x, out);
        };
        let uint = |out: &mut String, key: &str, n: u64| {
            out.push(',');
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            write_u64(n, out);
        };
        let string = |out: &mut String, key: &str, s: &str| {
            out.push(',');
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            write_str(s, out);
        };
        match *self {
            Event::Contact { t, a, b } => {
                float(out, "t", t);
                int(out, "a", a as i64);
                int(out, "b", b as i64);
            }
            Event::Request { t, node, item } | Event::ImmediateHit { t, node, item } => {
                float(out, "t", t);
                int(out, "node", node as i64);
                int(out, "item", item as i64);
            }
            Event::Fulfillment {
                t,
                node,
                item,
                wait,
                queries,
            } => {
                float(out, "t", t);
                int(out, "node", node as i64);
                int(out, "item", item as i64);
                float(out, "wait", wait);
                int(out, "queries", queries as i64);
            }
            Event::Unfulfilled {
                t,
                node,
                item,
                wait,
            } => {
                float(out, "t", t);
                int(out, "node", node as i64);
                int(out, "item", item as i64);
                float(out, "wait", wait);
            }
            Event::Replication { t, count } => {
                float(out, "t", t);
                uint(out, "count", count);
            }
            Event::SolverStep {
                solver,
                iteration,
                item,
                value,
            } => {
                string(out, "solver", solver);
                uint(out, "iteration", iteration);
                int(out, "item", item as i64);
                float(out, "value", value);
            }
            Event::SolverDone {
                solver,
                iterations,
                evaluations,
                wall_s,
            } => {
                string(out, "solver", solver);
                uint(out, "iterations", iterations);
                uint(out, "evaluations", evaluations);
                float(out, "wall_s", wall_s);
            }
            Event::Span { name, wall_s } => {
                string(out, "name", name);
                float(out, "wall_s", wall_s);
            }
            Event::TrialDone { seed, wall_s } => {
                uint(out, "seed", seed);
                float(out, "wall_s", wall_s);
            }
            Event::ScenarioDone {
                index,
                passed,
                failed,
                skipped,
                wall_s,
            } => {
                uint(out, "index", index);
                int(out, "passed", passed as i64);
                int(out, "failed", failed as i64);
                int(out, "skipped", skipped as i64);
                float(out, "wall_s", wall_s);
            }
            Event::ExperimentDone {
                ref spec,
                ref cell,
                rows,
                wall_s,
            } => {
                string(out, "spec", spec);
                string(out, "cell", cell);
                uint(out, "rows", rows);
                float(out, "wall_s", wall_s);
            }
            Event::Fault { t, kind, node, aux } => {
                float(out, "t", t);
                string(out, "kind", kind);
                int(out, "node", node as i64);
                int(out, "aux", aux as i64);
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_records_are_tagged_and_flat() {
        let e = Event::Fulfillment {
            t: 12.5,
            node: 3,
            item: 7,
            wait: 2.25,
            queries: 4,
        };
        let v = e.to_json();
        assert_eq!(v.get("ev").and_then(Json::as_str), Some("fulfillment"));
        assert_eq!(v.get("wait").and_then(Json::as_f64), Some(2.25));
        assert_eq!(v.get("queries").and_then(Json::as_u64), Some(4));
        let text = v.to_string();
        assert!(text.starts_with("{\"ev\":\"fulfillment\""), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn every_variant_serializes() {
        let events = [
            Event::Contact { t: 1.0, a: 0, b: 1 },
            Event::Request {
                t: 1.0,
                node: 0,
                item: 2,
            },
            Event::ImmediateHit {
                t: 1.0,
                node: 0,
                item: 2,
            },
            Event::Fulfillment {
                t: 2.0,
                node: 0,
                item: 2,
                wait: 1.0,
                queries: 1,
            },
            Event::Unfulfilled {
                t: 9.0,
                node: 1,
                item: 3,
                wait: 8.0,
            },
            Event::Replication { t: 2.0, count: 2 },
            Event::SolverStep {
                solver: "greedy",
                iteration: 0,
                item: 1,
                value: 0.5,
            },
            Event::SolverDone {
                solver: "greedy",
                iterations: 10,
                evaluations: 40,
                wall_s: 0.01,
            },
            Event::Span {
                name: "solve",
                wall_s: 0.02,
            },
            Event::TrialDone {
                seed: 7,
                wall_s: 0.5,
            },
            Event::ScenarioDone {
                index: 3,
                passed: 4,
                failed: 0,
                skipped: 1,
                wall_s: 0.1,
            },
            Event::ExperimentDone {
                spec: "fig4".into(),
                cell: "power alpha=-2".into(),
                rows: 1,
                wall_s: 3.5,
            },
            Event::Fault {
                t: 3.0,
                kind: "contact_drop",
                node: 4,
                aux: 9,
            },
            // Edge cases for the serialization fast path: huge integers,
            // tiny floats, strings needing escapes.
            Event::TrialDone {
                seed: u64::MAX,
                wall_s: 1e-9,
            },
            Event::ExperimentDone {
                spec: "fig\"4\"\n".into(),
                cell: "α=-2\ttab".into(),
                rows: 0,
                wall_s: -0.0,
            },
            Event::Contact {
                t: 1234567.890123,
                a: u32::MAX,
                b: 0,
            },
        ];
        for e in events {
            let v = e.to_json();
            assert_eq!(v.get("ev").and_then(Json::as_str), Some(e.kind()));
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
            // The direct JSONL fast path must be byte-identical to tree
            // serialization.
            let mut fast = String::new();
            e.write_jsonl(&mut fast);
            assert_eq!(fast, v.to_string(), "fast path diverges for {e:?}");
        }
    }
}
