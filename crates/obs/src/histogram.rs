//! Fixed-bucket histograms with percentile readout.

use impatience_json::Json;

/// A linear fixed-bucket histogram over `[0, range)` plus an overflow
/// bucket, tracking count, sum, and extremes exactly.
///
/// Quantiles interpolate within the containing bucket, so their error is
/// bounded by one bucket width; values at or above `range` resolve to
/// the exact maximum seen. Two histograms with the same shape can be
/// [`merge`](Histogram::merge)d losslessly, which is what the parallel
/// runner does with per-worker delay histograms.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    range: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over `[0, range)` with `buckets` equal buckets.
    ///
    /// # Panics
    /// Panics unless `range > 0` and `buckets > 0`.
    pub fn new(range: f64, buckets: usize) -> Self {
        assert!(
            range > 0.0 && range.is_finite(),
            "histogram range must be positive"
        );
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            range,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. Negative values clamp to the first bucket;
    /// non-finite values are ignored.
    #[inline]
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        if value >= self.range {
            self.overflow += 1;
        } else {
            let idx = ((value.max(0.0) / self.range) * self.counts.len() as f64) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
        self.total += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Upper edge of the bucketed span.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Number of equal buckets below the overflow bucket.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Mean of the samples (exact), or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Smallest sample seen, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest sample seen, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// Samples that landed at or above the range (in the overflow
    /// bucket).
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of samples strictly below `value` as resolvable by the
    /// bucket grid: counts every bucket whose upper edge is ≤ `value`.
    /// Used for Prometheus cumulative-bucket exposition.
    pub fn cumulative_below(&self, value: f64) -> u64 {
        if value <= 0.0 {
            return 0;
        }
        if value >= self.range {
            return self.total - self.overflow;
        }
        let width = self.range / self.counts.len() as f64;
        let whole = (value / width).floor() as usize;
        self.counts[..whole.min(self.counts.len())].iter().sum()
    }

    /// The `q`-quantile (`q` in `[0, 1]`), interpolated within its
    /// bucket; `None` if the histogram is empty.
    ///
    /// Uses the shared nearest-rank definition of [`crate::stats`] (the
    /// smallest value with at least `⌈q·n⌉` samples at or below it), so
    /// it matches `impatience_sim::runner::percentile` — which delegates
    /// to the same function — up to bucket resolution.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.total == 0 {
            return None;
        }
        let rank = crate::stats::nearest_rank(q, self.total);
        let width = self.range / self.counts.len() as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if seen + c >= rank {
                // Interpolate the rank's position inside this bucket.
                let into = (rank - seen) as f64 / c as f64;
                let value = (i as f64 + into) * width;
                return Some(value.clamp(self.min, self.max));
            }
            seen += c;
        }
        // Rank lands in the overflow bucket: report the exact maximum.
        Some(self.max)
    }

    /// Median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Fold another histogram of identical shape into this one.
    ///
    /// # Panics
    /// Panics if the shapes (range or bucket count) differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.range == other.range && self.counts.len() == other.counts.len(),
            "merging histograms of different shapes"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Summary object: count, mean, min/max, p50/p95/p99, overflow.
    pub fn summary_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.total)),
            ("mean", opt(self.mean())),
            ("min", opt(self.min())),
            ("max", opt(self.max())),
            ("p50", opt(self.p50())),
            ("p95", opt(self.p95())),
            ("p99", opt(self.p99())),
            ("overflow", Json::from(self.overflow)),
        ])
    }
}

fn opt(v: Option<f64>) -> Json {
    v.map(Json::from).unwrap_or(Json::Null)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_uniform_samples() {
        let mut h = Histogram::new(100.0, 1000);
        for i in 0..1000 {
            h.record(i as f64 / 10.0); // 0.0, 0.1, ..., 99.9
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.p50().unwrap();
        let p95 = h.p95().unwrap();
        assert!((p50 - 50.0).abs() < 0.2, "p50 = {p50}");
        assert!((p95 - 95.0).abs() < 0.2, "p95 = {p95}");
        assert!((h.mean().unwrap() - 49.95).abs() < 1e-9);
    }

    #[test]
    fn overflow_resolves_to_exact_max() {
        let mut h = Histogram::new(10.0, 10);
        h.record(5.0);
        h.record(123.0);
        h.record(456.0);
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.quantile(1.0), Some(456.0));
        assert_eq!(h.max(), Some(456.0));
    }

    #[test]
    fn merge_equals_pooled_recording() {
        let mut a = Histogram::new(50.0, 25);
        let mut b = Histogram::new(50.0, 25);
        let mut pooled = Histogram::new(50.0, 25);
        for i in 0..200 {
            let x = (i * 37 % 60) as f64;
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
            pooled.record(x);
        }
        a.merge(&b);
        assert_eq!(a, pooled);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(10.0, 10);
        assert_eq!(h.p50(), None);
        assert_eq!(h.mean(), None);
        assert!(h.summary_json().get("p50").unwrap().is_null());
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = Histogram::new(10.0, 100);
        h.record(3.0);
        for q in [0.01, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((v - 3.0).abs() <= 0.1, "q={q} -> {v}");
        }
    }

    #[test]
    fn ignores_nonfinite_clamps_negative() {
        let mut h = Histogram::new(10.0, 10);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        h.record(-5.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(-5.0));
    }
}
