//! The recorder: the single object instrumented code talks to.

use std::time::Instant;

use impatience_json::Json;

use crate::counter::{Counters, Peaks};
use crate::event::Event;
use crate::histogram::Histogram;
use crate::sink::{NoopSink, Sink};

/// Collects counters, histograms, and high-water marks while forwarding
/// structured events to a [`Sink`].
///
/// The sink type decides the cost: with [`NoopSink`] every hook is an
/// inlined early return and the optimizer deletes the instrumentation;
/// with a live sink the recorder tallies and forwards. Simulation code
/// takes `&mut Recorder<S>` generically, so both versions are
/// monomorphized from the same source.
#[derive(Debug)]
pub struct Recorder<S: Sink> {
    sink: S,
    /// Monotonic event counts ("contacts", "fulfillments", ...).
    pub counters: Counters,
    /// High-water marks ("open_requests").
    pub peaks: Peaks,
    /// Fulfillment delays (simulation minutes).
    pub delay: Histogram,
    /// Gaps between successive contacts, across the whole system.
    pub inter_contact: Histogram,
    last_contact: Option<f64>,
}

/// Default histogram span for fulfillment delays (simulation minutes).
pub const DEFAULT_DELAY_RANGE: f64 = 4_096.0;
/// Default histogram span for inter-contact gaps (simulation minutes).
pub const DEFAULT_INTER_CONTACT_RANGE: f64 = 512.0;
/// Default bucket count for both histograms.
pub const DEFAULT_BUCKETS: usize = 4_096;

impl Recorder<NoopSink> {
    /// The zero-cost recorder: hooks compile to nothing.
    pub fn disabled() -> Self {
        Recorder::new(NoopSink)
    }
}

impl<S: Sink> Recorder<S> {
    /// A recorder with default histogram shapes.
    pub fn new(sink: S) -> Self {
        Recorder::with_shape(
            sink,
            DEFAULT_DELAY_RANGE,
            DEFAULT_INTER_CONTACT_RANGE,
            DEFAULT_BUCKETS,
        )
    }

    /// A recorder with explicit histogram spans and bucket count.
    pub fn with_shape(sink: S, delay_range: f64, inter_contact_range: f64, buckets: usize) -> Self {
        Recorder {
            sink,
            counters: Counters::new(),
            peaks: Peaks::new(),
            delay: Histogram::new(delay_range, buckets),
            inter_contact: Histogram::new(inter_contact_range, buckets),
            last_contact: None,
        }
    }

    /// Whether this recorder's hooks do anything.
    pub const fn is_active(&self) -> bool {
        S::ACTIVE
    }

    /// The sink, for readout (e.g. `MemorySink::events`).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The sink, mutably (e.g. `JsonlSink::take_error`).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consume the recorder and return its sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// A trial is starting: reset per-trial tracking state (the
    /// inter-contact clock), not the accumulated statistics.
    #[inline]
    pub fn trial_start(&mut self) {
        if !S::ACTIVE {
            return;
        }
        self.last_contact = None;
    }

    /// Two nodes met.
    #[inline]
    pub fn contact(&mut self, t: f64, a: u32, b: u32) {
        if !S::ACTIVE {
            return;
        }
        self.counters.incr("contacts");
        if let Some(prev) = self.last_contact {
            self.inter_contact.record(t - prev);
        }
        self.last_contact = Some(t);
        self.sink.record(&Event::Contact { t, a, b });
    }

    /// A request entered the system.
    #[inline]
    pub fn request(&mut self, t: f64, node: u32, item: u32) {
        if !S::ACTIVE {
            return;
        }
        self.counters.incr("requests");
        self.sink.record(&Event::Request { t, node, item });
    }

    /// A request was served from the requester's own cache.
    #[inline]
    pub fn immediate_hit(&mut self, t: f64, node: u32, item: u32) {
        if !S::ACTIVE {
            return;
        }
        self.counters.incr("immediate_hits");
        self.sink.record(&Event::ImmediateHit { t, node, item });
    }

    /// An outstanding request was fulfilled after waiting `wait`.
    #[inline]
    pub fn fulfillment(&mut self, t: f64, node: u32, item: u32, wait: f64, queries: u32) {
        if !S::ACTIVE {
            return;
        }
        self.counters.incr("fulfillments");
        self.delay.record(wait);
        self.sink.record(&Event::Fulfillment {
            t,
            node,
            item,
            wait,
            queries,
        });
    }

    /// A request expired unfulfilled at end of trial.
    #[inline]
    pub fn unfulfilled(&mut self, t: f64, node: u32, item: u32, wait: f64) {
        if !S::ACTIVE {
            return;
        }
        self.counters.incr("unfulfilled");
        self.sink.record(&Event::Unfulfilled {
            t,
            node,
            item,
            wait,
        });
    }

    /// A contact transmitted `count` cache copies.
    #[inline]
    pub fn replications(&mut self, t: f64, count: u64) {
        if !S::ACTIVE || count == 0 {
            return;
        }
        self.counters.add("transmissions", count);
        self.sink.record(&Event::Replication { t, count });
    }

    /// The outstanding-request queue reached `depth`.
    #[inline]
    pub fn open_requests(&mut self, depth: u64) {
        if !S::ACTIVE {
            return;
        }
        self.peaks.update("open_requests", depth);
    }

    /// One solver placement/probe step.
    #[inline]
    pub fn solver_step(&mut self, solver: &'static str, iteration: u64, item: u32, value: f64) {
        if !S::ACTIVE {
            return;
        }
        self.counters.incr("solver_steps");
        self.sink.record(&Event::SolverStep {
            solver,
            iteration,
            item,
            value,
        });
    }

    /// A solver finished.
    #[inline]
    pub fn solver_done(
        &mut self,
        solver: &'static str,
        iterations: u64,
        evaluations: u64,
        wall_s: f64,
    ) {
        if !S::ACTIVE {
            return;
        }
        self.sink.record(&Event::SolverDone {
            solver,
            iterations,
            evaluations,
            wall_s,
        });
    }

    /// Record a completed named phase of `wall_s` seconds.
    #[inline]
    pub fn span(&mut self, name: &'static str, wall_s: f64) {
        if !S::ACTIVE {
            return;
        }
        self.sink.record(&Event::Span { name, wall_s });
    }

    /// Time `f` as a named span (when active; otherwise just run it).
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        if !S::ACTIVE {
            return f();
        }
        let start = Instant::now();
        let result = f();
        self.span(name, start.elapsed().as_secs_f64());
        result
    }

    /// One verification-oracle scenario finished with the given
    /// per-invariant tallies.
    #[inline]
    pub fn scenario_done(
        &mut self,
        index: u64,
        passed: u32,
        failed: u32,
        skipped: u32,
        wall_s: f64,
    ) {
        if !S::ACTIVE {
            return;
        }
        self.counters.incr("scenarios");
        self.counters.add("invariant_failures", failed as u64);
        self.sink.record(&Event::ScenarioDone {
            index,
            passed,
            failed,
            skipped,
            wall_s,
        });
    }

    /// One declarative-experiment cell finished (a sweep point, panel,
    /// or table block of an `impatience reproduce` run).
    #[inline]
    pub fn experiment_done(&mut self, spec: &str, cell: &str, rows: u64, wall_s: f64) {
        if !S::ACTIVE {
            return;
        }
        self.counters.incr("experiment_cells");
        self.sink.record(&Event::ExperimentDone {
            spec: spec.to_string(),
            cell: cell.to_string(),
            rows,
            wall_s,
        });
    }

    /// An injected fault fired (`kind` per [`Event::Fault`]).
    #[inline]
    pub fn fault(&mut self, t: f64, kind: &'static str, node: u32, aux: u32) {
        if !S::ACTIVE {
            return;
        }
        self.counters.incr("faults");
        self.sink.record(&Event::Fault { t, kind, node, aux });
    }

    /// A trial finished.
    #[inline]
    pub fn trial_done(&mut self, seed: u64, wall_s: f64) {
        if !S::ACTIVE {
            return;
        }
        self.counters.incr("trials");
        self.sink.record(&Event::TrialDone { seed, wall_s });
    }

    /// Fold another recorder's statistics into this one (counters,
    /// peaks, histograms). Sinks are not touched — this is how the
    /// parallel runner combines per-worker tallies.
    ///
    /// # Panics
    /// Panics if the histogram shapes differ.
    pub fn absorb<S2: Sink>(&mut self, other: &Recorder<S2>) {
        self.counters.merge(&other.counters);
        self.peaks.merge(&other.peaks);
        self.delay.merge(&other.delay);
        self.inter_contact.merge(&other.inter_contact);
    }

    /// Statistics summary: counters, peaks, and histogram percentiles.
    pub fn summary_json(&self) -> Json {
        Json::obj([
            ("counters", self.counters.to_json()),
            ("peaks", self.peaks.to_json()),
            ("fulfillment_delay", self.delay.summary_json()),
            ("inter_contact", self.inter_contact.summary_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{MemorySink, TallySink};

    #[test]
    fn disabled_recorder_stays_empty() {
        let mut r = Recorder::disabled();
        assert!(!r.is_active());
        r.contact(1.0, 0, 1);
        r.fulfillment(2.0, 0, 1, 1.0, 2);
        r.replications(2.0, 5);
        r.trial_done(7, 0.1);
        assert!(r.counters.is_empty());
        assert_eq!(r.delay.count(), 0);
    }

    #[test]
    fn live_recorder_tallies_and_forwards() {
        let mut r = Recorder::new(MemorySink::new());
        r.trial_start();
        r.contact(1.0, 0, 1);
        r.contact(3.5, 1, 2);
        r.request(1.2, 0, 4);
        r.fulfillment(3.5, 0, 4, 2.3, 1);
        r.replications(3.5, 2);
        r.replications(3.6, 0); // no-op
        r.open_requests(3);
        r.open_requests(1);
        assert_eq!(r.counters.get("contacts"), 2);
        assert_eq!(r.counters.get("transmissions"), 2);
        assert_eq!(r.peaks.get("open_requests"), 3);
        assert_eq!(r.delay.count(), 1);
        assert_eq!(r.inter_contact.count(), 1); // gap 2.5
        assert!((r.inter_contact.mean().unwrap() - 2.5).abs() < 1e-12);
        let kinds: Vec<_> = r.sink().events.iter().map(Event::kind).collect();
        assert_eq!(
            kinds,
            [
                "contact",
                "contact",
                "request",
                "fulfillment",
                "replication"
            ]
        );
    }

    #[test]
    fn experiment_cells_are_tallied_and_forwarded() {
        let mut r = Recorder::new(MemorySink::new());
        r.experiment_done("fig4", "power alpha=0", 1, 2.5);
        assert_eq!(r.counters.get("experiment_cells"), 1);
        assert!(matches!(
            &r.sink().events[0],
            Event::ExperimentDone { spec, rows: 1, .. } if spec == "fig4"
        ));
    }

    #[test]
    fn trial_start_resets_inter_contact_clock() {
        let mut r = Recorder::new(TallySink);
        r.trial_start();
        r.contact(10.0, 0, 1);
        r.trial_start();
        r.contact(500.0, 0, 1); // must not record a 490-minute gap
        assert_eq!(r.inter_contact.count(), 0);
    }

    #[test]
    fn absorb_merges_worker_tallies() {
        let mut a = Recorder::new(TallySink);
        let mut b = Recorder::new(TallySink);
        a.fulfillment(1.0, 0, 0, 1.0, 1);
        b.fulfillment(2.0, 1, 0, 3.0, 1);
        b.open_requests(9);
        a.absorb(&b);
        assert_eq!(a.counters.get("fulfillments"), 2);
        assert_eq!(a.delay.count(), 2);
        assert_eq!(a.peaks.get("open_requests"), 9);
    }

    #[test]
    fn time_spans_are_emitted() {
        let mut r = Recorder::new(MemorySink::new());
        let answer = r.time("phase", || 41 + 1);
        assert_eq!(answer, 42);
        assert!(matches!(
            r.sink().events[0],
            Event::Span { name: "phase", .. }
        ));
    }

    #[test]
    fn summary_json_shape() {
        let mut r = Recorder::new(TallySink);
        r.fulfillment(1.0, 0, 0, 2.0, 1);
        let s = r.summary_json();
        assert_eq!(
            s.get("counters")
                .unwrap()
                .get("fulfillments")
                .and_then(Json::as_u64),
            Some(1)
        );
        assert!(s
            .get("fulfillment_delay")
            .unwrap()
            .get("p50")
            .unwrap()
            .as_f64()
            .is_some());
    }
}
