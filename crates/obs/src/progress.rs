//! Live progress lines for long runs.
//!
//! A [`Progress`] meter prints one carriage-return-overwritten line per
//! completed unit (experiment cell, verification scenario) to stderr,
//! with percentage and an ETA extrapolated from the mean pace so far. It
//! is only audible when stderr is a TTY — batch runs, CI, and piped
//! output see nothing — and results never flow through it, so enabling
//! it cannot perturb determinism.

use std::io::{IsTerminal, Write as _};
use std::time::Instant;

/// A count-up progress meter with ETA, printing to stderr when it is a
/// terminal.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    label: String,
    total: u64,
    done: u64,
    start: Instant,
    last_width: usize,
}

impl Progress {
    /// A meter for `total` units, live only when stderr is a TTY.
    pub fn new(label: &str, total: u64) -> Self {
        Self::with_enabled(label, total, std::io::stderr().is_terminal())
    }

    /// A meter that never prints.
    pub fn disabled() -> Self {
        Self::with_enabled("", 0, false)
    }

    /// A meter with the TTY decision made by the caller (tests force
    /// `enabled` without a terminal).
    pub fn with_enabled(label: &str, total: u64, enabled: bool) -> Self {
        Progress {
            enabled,
            label: label.to_string(),
            total,
            done: 0,
            start: Instant::now(),
            last_width: 0,
        }
    }

    /// Whether the meter prints anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// One unit finished; reprint the status line.
    pub fn tick(&mut self, detail: &str) {
        self.done += 1;
        if !self.enabled {
            return;
        }
        let line = self.render_line(detail, self.start.elapsed().as_secs_f64());
        // Pad with spaces so a shorter line fully overwrites the last.
        let pad = self.last_width.saturating_sub(line.chars().count());
        self.last_width = line.chars().count();
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{line}{:pad$}", "");
        let _ = err.flush();
    }

    /// End the meter, leaving a completed line.
    pub fn finish(&mut self) {
        if !self.enabled {
            return;
        }
        let line = format!(
            "{}: {}/{} done in {}",
            self.label,
            self.done,
            self.total,
            fmt_eta(self.start.elapsed().as_secs_f64())
        );
        let pad = self.last_width.saturating_sub(line.chars().count());
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "\r{line}{:pad$}", "");
        let _ = err.flush();
        self.enabled = false;
    }

    /// The status line for the current state (separated from printing
    /// for testability).
    pub fn render_line(&self, detail: &str, elapsed_s: f64) -> String {
        let pct = if self.total > 0 {
            100.0 * self.done as f64 / self.total as f64
        } else {
            0.0
        };
        let eta = if self.done > 0 && self.done < self.total {
            let remaining = (self.total - self.done) as f64 * elapsed_s / self.done as f64;
            format!(", ETA {}", fmt_eta(remaining))
        } else {
            String::new()
        };
        let detail = if detail.is_empty() {
            String::new()
        } else {
            format!(" — {detail}")
        };
        format!(
            "{}: {}/{} ({pct:.0}%{eta}){detail}",
            self.label, self.done, self.total
        )
    }
}

fn fmt_eta(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.0}h{:02.0}m", (s / 3600.0).floor(), (s % 3600.0) / 60.0)
    } else if s >= 60.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else {
        format!("{s:.0}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_meter_prints_nothing_and_counts() {
        let mut p = Progress::disabled();
        assert!(!p.is_enabled());
        p.tick("cell");
        p.tick("cell");
        assert_eq!(p.done(), 2);
        p.finish();
    }

    #[test]
    fn line_shows_fraction_and_eta() {
        let mut p = Progress::with_enabled("reproduce", 10, false);
        p.done = 5;
        let line = p.render_line("fig4: power alpha=-2", 10.0);
        assert!(line.contains("reproduce: 5/10 (50%"), "line: {line}");
        assert!(line.contains("ETA 10s"), "line: {line}");
        assert!(line.contains("fig4: power alpha=-2"));
    }

    #[test]
    fn eta_omitted_when_done_or_empty() {
        let mut p = Progress::with_enabled("verify", 4, false);
        assert!(!p.render_line("", 1.0).contains("ETA"));
        p.done = 4;
        assert!(!p.render_line("", 1.0).contains("ETA"));
    }

    #[test]
    fn eta_formats_scale() {
        assert_eq!(fmt_eta(42.0), "42s");
        assert_eq!(fmt_eta(90.0), "1m30s");
        assert_eq!(fmt_eta(3720.0), "1h02m");
    }
}
