//! Monotonic counters and high-water marks.
//!
//! Both structures keep their entries sorted by name, so two instances
//! that have seen the same data compare equal regardless of insertion
//! order, and [`Counters::merge`] / [`Peaks::merge`] are associative and
//! commutative — the property the parallel runner relies on when it
//! combines per-worker recorders (verified by a proptest in
//! `tests/observability.rs`).

use impatience_json::Json;

/// A set of named monotonic `u64` counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    /// An empty set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Add `n` to `name` (creating it at zero).
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        match self.entries.binary_search_by_key(&name, |(k, _)| k) {
            Ok(i) => self.entries[i].1 += n,
            Err(i) => self.entries.insert(i, (name, n)),
        }
    }

    /// Increment `name` by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .binary_search_by_key(&name, |(k, _)| k)
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// Fold another set into this one (sums per name).
    pub fn merge(&mut self, other: &Counters) {
        for &(name, n) in &other.entries {
            self.add(name, n);
        }
    }

    /// All `(name, value)` pairs, sorted by name.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.entries
    }

    /// Whether nothing has been counted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Encode as a JSON object, names sorted.
    pub fn to_json(&self) -> Json {
        Json::Object(
            self.entries
                .iter()
                .map(|&(k, v)| (k.to_string(), Json::from(v)))
                .collect(),
        )
    }
}

/// A set of named high-water marks (e.g. peak queue depth).
///
/// Merging takes the elementwise maximum, which is likewise associative
/// and commutative.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Peaks {
    entries: Vec<(&'static str, u64)>,
}

impl Peaks {
    /// An empty set.
    pub fn new() -> Self {
        Peaks::default()
    }

    /// Raise `name` to `value` if larger.
    #[inline]
    pub fn update(&mut self, name: &'static str, value: u64) {
        match self.entries.binary_search_by_key(&name, |(k, _)| k) {
            Ok(i) => self.entries[i].1 = self.entries[i].1.max(value),
            Err(i) => self.entries.insert(i, (name, value)),
        }
    }

    /// Current peak for `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .binary_search_by_key(&name, |(k, _)| k)
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// Fold another set into this one (maximum per name).
    pub fn merge(&mut self, other: &Peaks) {
        for &(name, v) in &other.entries {
            self.update(name, v);
        }
    }

    /// All `(name, peak)` pairs, sorted by name.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.entries
    }

    /// Encode as a JSON object, names sorted.
    pub fn to_json(&self) -> Json {
        Json::Object(
            self.entries
                .iter()
                .map(|&(k, v)| (k.to_string(), Json::from(v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut c = Counters::new();
        c.incr("b");
        c.add("a", 5);
        c.incr("b");
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("b"), 2);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.entries(), &[("a", 5), ("b", 2)]);
    }

    #[test]
    fn counter_merge_is_order_independent() {
        let mut left = Counters::new();
        left.add("x", 1);
        left.add("y", 2);
        let mut right = Counters::new();
        right.add("y", 3);
        right.add("z", 4);

        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right.clone();
        ba.merge(&left);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("y"), 5);
    }

    #[test]
    fn peaks_keep_maxima() {
        let mut p = Peaks::new();
        p.update("depth", 3);
        p.update("depth", 1);
        assert_eq!(p.get("depth"), 3);
        let mut q = Peaks::new();
        q.update("depth", 7);
        p.merge(&q);
        assert_eq!(p.get("depth"), 7);
    }

    #[test]
    fn json_encoding_is_sorted_object() {
        let mut c = Counters::new();
        c.add("z", 1);
        c.add("a", 2);
        assert_eq!(c.to_json().to_string(), "{\"a\":2,\"z\":1}");
    }
}
