//! Hierarchical self-profiling spans with a disabled path that costs one
//! relaxed atomic load.
//!
//! ## Model
//!
//! A *span* is a named, timed region of code entered with
//! [`span::enter`](enter) (or the [`span!`](crate::span!) macro) and
//! closed when the returned [`SpanGuard`] drops. Spans nest: a span
//! entered while another is open on the same thread becomes its child,
//! and aggregation keys on the full slash-joined path (`"trial/exchange"`),
//! so the same leaf name under different parents stays distinct.
//!
//! Profiling is off by default. While off, `enter` returns an inert guard
//! after a single `AtomicBool` relaxed load — no thread-local access, no
//! clock read, no allocation — so instrumented hot paths stay within
//! noise of uninstrumented builds (checked by the `observability_overhead`
//! criterion group and its CI gate). [`enable`] flips the gate
//! process-wide.
//!
//! ## Aggregation
//!
//! Each thread accumulates into a thread-local [`LocalProfiler`]: a small
//! arena of nodes keyed by `(parent, name)`, so re-entering the same
//! phase is two hash lookups and no allocation. When a thread exits
//! (scoped worker threads run thread-local destructors before the scope
//! returns) its tallies flush into a process-wide table; [`take_report`]
//! drains the calling thread plus that table into a [`PhaseReport`] —
//! a deterministic per-run phase tree with wall, self, call counts and
//! bucketed percentiles. Merging is commutative up to floating-point
//! rounding, so reports do not depend on worker scheduling.
//!
//! Span durations feed a [`Histogram`] in **microseconds** over
//! `[0, ~67s)` with 4096 buckets (~16.4 ms resolution); wall, self,
//! calls, mean and max are exact, p50/p95 are bucket-resolution.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use impatience_json::Json;

use crate::histogram::Histogram;

/// Process-wide profiling gate. Relaxed is enough: the flag only guards
/// bookkeeping, never data the simulation reads.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Tallies flushed from exited threads, keyed by slash-joined path.
static DRAINED: Mutex<BTreeMap<String, PathStat>> = Mutex::new(BTreeMap::new());

/// Histogram shape for span durations, in microseconds.
const SPAN_HIST_RANGE_US: f64 = 67_108_864.0; // 2^26 µs ≈ 67 s
/// Bucket count for span-duration histograms.
const SPAN_HIST_BUCKETS: usize = 4096;

/// Turn span collection on process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn span collection off process-wide. Guards already open keep
/// recording when they drop, so totals stay consistent.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether span collection is currently on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Open a span named `name` as a child of the innermost open span on
/// this thread. The returned guard closes it on drop.
///
/// Names must not contain `/` (reserved as the path separator) — this is
/// not checked on the hot path.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { open: None };
    }
    enter_slow(name)
}

#[inline(never)]
fn enter_slow(name: &'static str) -> SpanGuard {
    let id = LOCAL
        .try_with(|cell| cell.profiler.borrow_mut().enter(name))
        .ok();
    match id {
        // Read the clock *after* bookkeeping so the measured window is
        // the user's code, not our own hash lookup.
        Some(id) => SpanGuard {
            open: Some((Instant::now(), id)),
        },
        // Thread-local already destroyed (thread teardown): record
        // nothing rather than panic.
        None => SpanGuard { open: None },
    }
}

/// RAII handle for one span occurrence; closes the span on drop.
#[must_use = "a span guard times the region until it is dropped"]
pub struct SpanGuard {
    open: Option<(Instant, usize)>,
}

impl SpanGuard {
    /// Close the span now instead of at end of scope.
    pub fn close(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start, id)) = self.open.take() {
            let elapsed = start.elapsed().as_secs_f64();
            // Ignore a destroyed thread-local during teardown.
            let _ = LOCAL.try_with(|cell| cell.profiler.borrow_mut().exit(id, elapsed));
        }
    }
}

/// Open a span for the rest of the enclosing scope:
/// `let _g = span!("solve.greedy");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

struct LocalCell {
    profiler: RefCell<LocalProfiler>,
}

impl Drop for LocalCell {
    fn drop(&mut self) {
        self.profiler.get_mut().flush_into_drained();
    }
}

thread_local! {
    static LOCAL: LocalCell = LocalCell {
        profiler: RefCell::new(LocalProfiler::new()),
    };
}

/// One node of a thread's span tree.
#[derive(Clone, Debug)]
struct Node {
    parent: usize,
    name: &'static str,
    calls: u64,
    wall_s: f64,
    hist: Histogram,
}

const NO_PARENT: usize = usize::MAX;

/// Per-thread span accumulator. Public so tests (and the proptest suite)
/// can drive it with synthetic durations; production code goes through
/// [`enter`].
pub struct LocalProfiler {
    nodes: Vec<Node>,
    index: HashMap<(usize, &'static str), usize>,
    stack: Vec<usize>,
}

impl Default for LocalProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalProfiler {
    /// An empty profiler with no open spans.
    pub fn new() -> Self {
        LocalProfiler {
            nodes: Vec::new(),
            index: HashMap::new(),
            stack: Vec::new(),
        }
    }

    /// Open a span; returns its node id for the matching [`exit`].
    ///
    /// [`exit`]: LocalProfiler::exit
    pub fn enter(&mut self, name: &'static str) -> usize {
        let parent = self.stack.last().copied().unwrap_or(NO_PARENT);
        let id = match self.index.get(&(parent, name)) {
            Some(&id) => id,
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node {
                    parent,
                    name,
                    calls: 0,
                    wall_s: 0.0,
                    hist: Histogram::new(SPAN_HIST_RANGE_US, SPAN_HIST_BUCKETS),
                });
                self.index.insert((parent, name), id);
                id
            }
        };
        self.stack.push(id);
        id
    }

    /// Close the span opened as node `id`, attributing `elapsed_s`
    /// seconds of wall time to it. Guards drop LIFO under normal
    /// control flow; if an inner guard was leaked the stack is unwound
    /// to `id` so later spans still attach to the right parent.
    pub fn exit(&mut self, id: usize, elapsed_s: f64) {
        while let Some(top) = self.stack.pop() {
            if top == id {
                break;
            }
        }
        if let Some(node) = self.nodes.get_mut(id) {
            node.calls += 1;
            node.wall_s += elapsed_s;
            node.hist.record(elapsed_s * 1e6);
        }
    }

    /// Snapshot the accumulated tallies as a path-keyed aggregate.
    pub fn aggregate(&self) -> PhaseAgg {
        let mut paths: Vec<String> = Vec::with_capacity(self.nodes.len());
        let mut agg = PhaseAgg::new();
        for node in &self.nodes {
            // Nodes are created parent-first, so the parent's path is
            // already materialized.
            let path = if node.parent == NO_PARENT {
                node.name.to_string()
            } else {
                format!("{}/{}", paths[node.parent], node.name)
            };
            paths.push(path.clone());
            if node.calls > 0 {
                agg.absorb_path(
                    path,
                    PathStat {
                        calls: node.calls,
                        wall_s: node.wall_s,
                        hist: node.hist.clone(),
                    },
                );
            }
        }
        agg
    }

    /// Zero the tallies while keeping the node arena and the open-span
    /// stack intact, so a drain mid-span cannot orphan the stack.
    pub fn reset_tallies(&mut self) {
        for node in &mut self.nodes {
            node.calls = 0;
            node.wall_s = 0.0;
            node.hist = Histogram::new(SPAN_HIST_RANGE_US, SPAN_HIST_BUCKETS);
        }
    }

    fn flush_into_drained(&mut self) {
        let agg = self.aggregate();
        if agg.is_empty() {
            return;
        }
        self.reset_tallies();
        let mut drained = DRAINED.lock().unwrap_or_else(|e| e.into_inner());
        for (path, stat) in agg.map {
            merge_path(&mut drained, path, stat);
        }
    }
}

/// Accumulated tallies for one span path.
#[derive(Clone, Debug)]
pub struct PathStat {
    /// Completed occurrences.
    pub calls: u64,
    /// Total wall time across occurrences, seconds.
    pub wall_s: f64,
    /// Duration distribution in microseconds.
    pub hist: Histogram,
}

fn merge_path(map: &mut BTreeMap<String, PathStat>, path: String, stat: PathStat) {
    match map.get_mut(&path) {
        Some(existing) => {
            existing.calls += stat.calls;
            existing.wall_s += stat.wall_s;
            existing.hist.merge(&stat.hist);
        }
        None => {
            map.insert(path, stat);
        }
    }
}

/// Path-keyed span tallies; the mergeable intermediate between
/// per-thread profilers and a rendered [`PhaseReport`].
#[derive(Clone, Debug, Default)]
pub struct PhaseAgg {
    map: BTreeMap<String, PathStat>,
}

impl PhaseAgg {
    /// An empty aggregate.
    pub fn new() -> Self {
        PhaseAgg {
            map: BTreeMap::new(),
        }
    }

    /// True when no paths carry any tallies.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of distinct span paths.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Record one synthetic occurrence of `path` lasting `wall_s`
    /// seconds — the entry point for trace import and tests.
    pub fn record(&mut self, path: &str, wall_s: f64) {
        match self.map.get_mut(path) {
            Some(stat) => {
                stat.calls += 1;
                stat.wall_s += wall_s;
                stat.hist.record(wall_s * 1e6);
            }
            None => {
                let mut hist = Histogram::new(SPAN_HIST_RANGE_US, SPAN_HIST_BUCKETS);
                hist.record(wall_s * 1e6);
                self.map.insert(
                    path.to_string(),
                    PathStat {
                        calls: 1,
                        wall_s,
                        hist,
                    },
                );
            }
        }
    }

    /// Fold a path's tallies in (merging histograms losslessly).
    pub fn absorb_path(&mut self, path: String, stat: PathStat) {
        merge_path(&mut self.map, path, stat);
    }

    /// Fold `other` in. Commutative and associative up to f64 rounding
    /// of the wall-time sums.
    pub fn merge(&mut self, other: &PhaseAgg) {
        for (path, stat) in &other.map {
            merge_path(&mut self.map, path.clone(), stat.clone());
        }
    }

    /// Iterate `(path, stat)` in lexicographic path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PathStat)> {
        self.map.iter().map(|(p, s)| (p.as_str(), s))
    }

    /// Render into the final report: compute depth and self time
    /// (wall minus direct children) per path.
    pub fn report(&self) -> PhaseReport {
        // Lexicographic order on slash paths puts every parent before
        // its children, which is also the preorder the report prints.
        let mut phases: Vec<PhaseStat> = Vec::with_capacity(self.map.len());
        let mut index: HashMap<&str, usize> = HashMap::with_capacity(self.map.len());
        let mut total_wall_s = 0.0;
        for (path, stat) in &self.map {
            let (parent, depth) = match path.rfind('/') {
                Some(cut) => (index.get(&path[..cut]).copied(), path.matches('/').count()),
                None => (None, 0),
            };
            // A path whose parent never recorded (possible for synthetic
            // aggregates) counts as a root for self-time purposes.
            let depth = if parent.is_none() { 0 } else { depth };
            if let Some(p) = parent {
                phases[p].self_s -= stat.wall_s;
            } else {
                total_wall_s += stat.wall_s;
            }
            index.insert(path.as_str(), phases.len());
            phases.push(PhaseStat {
                path: path.clone(),
                depth,
                calls: stat.calls,
                wall_s: stat.wall_s,
                self_s: stat.wall_s,
                mean_s: stat.hist.mean().map(|us| us / 1e6),
                p50_s: stat.hist.p50().map(|us| us / 1e6),
                p95_s: stat.hist.p95().map(|us| us / 1e6),
                max_s: stat.hist.max().map(|us| us / 1e6),
            });
        }
        PhaseReport {
            phases,
            total_wall_s,
        }
    }
}

/// One row of a [`PhaseReport`].
#[derive(Clone, Debug)]
pub struct PhaseStat {
    /// Slash-joined span path, e.g. `trial/exchange`.
    pub path: String,
    /// Nesting depth (0 for roots).
    pub depth: usize,
    /// Completed occurrences.
    pub calls: u64,
    /// Total wall time, seconds (exact).
    pub wall_s: f64,
    /// Wall time not attributed to direct children, seconds. Can dip
    /// below zero by clock granularity when children overlap readings.
    pub self_s: f64,
    /// Mean occurrence duration, seconds (exact).
    pub mean_s: Option<f64>,
    /// Median occurrence duration, seconds (bucket resolution).
    pub p50_s: Option<f64>,
    /// 95th-percentile occurrence duration, seconds (bucket resolution).
    pub p95_s: Option<f64>,
    /// Longest occurrence, seconds (exact).
    pub max_s: Option<f64>,
}

/// The per-run phase tree: every span path with wall/self/call tallies,
/// parents before children.
#[derive(Clone, Debug, Default)]
pub struct PhaseReport {
    /// Rows in preorder (lexicographic path order).
    pub phases: Vec<PhaseStat>,
    /// Summed wall time of root spans, seconds.
    pub total_wall_s: f64,
}

impl PhaseReport {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Fraction of root wall time attributed to named child spans
    /// (1.0 when every root's children cover it fully; equals 1.0
    /// trivially for leaf-only roots).
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_wall_s <= 0.0 {
            return 1.0;
        }
        let unattributed: f64 = self
            .phases
            .iter()
            .filter(|p| p.depth == 0 && p.wall_s > 0.0)
            .map(|p| {
                // Roots with no children self-attribute fully.
                let has_children = self
                    .phases
                    .iter()
                    .any(|c| c.depth > 0 && c.path.starts_with(&format!("{}/", p.path)));
                if has_children {
                    p.self_s.max(0.0)
                } else {
                    0.0
                }
            })
            .sum();
        (1.0 - unattributed / self.total_wall_s).clamp(0.0, 1.0)
    }

    /// Human-readable phase tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("phase tree: no spans recorded\n");
            return out;
        }
        out.push_str(&format!(
            "phase tree  (root wall {:.3} s, {:.1}% attributed to named spans)\n",
            self.total_wall_s,
            100.0 * self.attributed_fraction()
        ));
        out.push_str(&format!(
            "  {:<38} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
            "phase", "calls", "wall", "self", "mean", "p95", "max"
        ));
        for p in &self.phases {
            // Nested rows show the leaf name under their parent; roots
            // (including orphan paths whose parent never recorded) keep
            // the full path.
            let name = if p.depth == 0 {
                p.path.as_str()
            } else {
                p.path.rsplit('/').next().unwrap_or(&p.path)
            };
            let label = format!("{}{}", "  ".repeat(p.depth), name);
            out.push_str(&format!(
                "  {:<38} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
                label,
                p.calls,
                fmt_secs(p.wall_s),
                fmt_secs(p.self_s),
                p.mean_s.map_or("-".to_string(), fmt_secs),
                p.p95_s.map_or("-".to_string(), fmt_secs),
                p.max_s.map_or("-".to_string(), fmt_secs),
            ));
        }
        out
    }

    /// JSON form (`impatience-profile/1`) written as the
    /// `.profile.json` manifest sibling.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from("impatience-profile/1")),
            ("total_wall_s", Json::from(self.total_wall_s)),
            (
                "attributed_fraction",
                Json::from(self.attributed_fraction()),
            ),
            (
                "phases",
                Json::Array(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("path", Json::from(p.path.as_str())),
                                ("depth", Json::from(p.depth as u64)),
                                ("calls", Json::from(p.calls)),
                                ("wall_s", Json::from(p.wall_s)),
                                ("self_s", Json::from(p.self_s)),
                                ("mean_s", opt(p.mean_s)),
                                ("p50_s", opt(p.p50_s)),
                                ("p95_s", opt(p.p95_s)),
                                ("max_s", opt(p.max_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn opt(v: Option<f64>) -> Json {
    v.map(Json::from).unwrap_or(Json::Null)
}

fn fmt_secs(s: f64) -> String {
    let abs = s.abs();
    if abs >= 1.0 {
        format!("{s:.3} s")
    } else if abs >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Drain the calling thread's tallies plus everything flushed by exited
/// threads into one merged report, leaving collection state empty (open
/// spans on the calling thread survive and keep timing).
pub fn take_report() -> PhaseReport {
    take_aggregate().report()
}

/// Like [`take_report`] but returns the mergeable aggregate.
pub fn take_aggregate() -> PhaseAgg {
    let mut agg = PhaseAgg::new();
    let _ = LOCAL.try_with(|cell| {
        let mut local = cell.profiler.borrow_mut();
        agg.merge(&local.aggregate());
        local.reset_tallies();
    });
    let mut drained = DRAINED.lock().unwrap_or_else(|e| e.into_inner());
    for (path, stat) in std::mem::take(&mut *drained) {
        agg.absorb_path(path, stat);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_serial<T>(f: impl FnOnce() -> T) -> T {
        // Span state is process-global; serialize the tests that use it.
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disable();
        let _ = take_aggregate();
        let out = f();
        disable();
        let _ = take_aggregate();
        out
    }

    #[test]
    fn disabled_spans_record_nothing() {
        run_serial(|| {
            {
                let _g = enter("idle");
            }
            assert!(take_report().is_empty());
        });
    }

    #[test]
    fn nested_spans_build_paths() {
        run_serial(|| {
            enable();
            {
                let _outer = enter("outer");
                for _ in 0..3 {
                    let _inner = enter("inner");
                }
            }
            let report = take_report();
            let paths: Vec<&str> = report.phases.iter().map(|p| p.path.as_str()).collect();
            assert_eq!(paths, ["outer", "outer/inner"]);
            assert_eq!(report.phases[0].calls, 1);
            assert_eq!(report.phases[1].calls, 3);
            assert_eq!(report.phases[1].depth, 1);
            assert!(report.phases[0].wall_s >= report.phases[1].wall_s);
        });
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        run_serial(|| {
            enable();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        let _g = enter("worker");
                    });
                }
            });
            // `thread::scope` may return before a joined thread's TLS
            // destructors (which perform the flush) have finished, so
            // poll briefly for the last flush instead of asserting on
            // the first drain.
            let mut agg = take_aggregate();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while agg.report().phases.first().map_or(0, |p| p.calls) < 4
                && std::time::Instant::now() < deadline
            {
                std::thread::sleep(std::time::Duration::from_millis(5));
                agg.merge(&take_aggregate());
            }
            let report = agg.report();
            assert_eq!(report.phases.len(), 1);
            assert_eq!(report.phases[0].path, "worker");
            assert_eq!(report.phases[0].calls, 4);
        });
    }

    #[test]
    fn take_report_drains() {
        run_serial(|| {
            enable();
            {
                let _g = enter("once");
            }
            assert!(!take_report().is_empty());
            assert!(take_report().is_empty());
        });
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let mut agg = PhaseAgg::new();
        agg.record("a", 10.0);
        agg.record("a/b", 4.0);
        agg.record("a/b/c", 3.0);
        let report = agg.report();
        let by_path = |p: &str| {
            report
                .phases
                .iter()
                .find(|s| s.path == p)
                .map(|s| s.self_s)
                .unwrap()
        };
        assert!((by_path("a") - 6.0).abs() < 1e-12);
        assert!((by_path("a/b") - 1.0).abs() < 1e-12);
        assert!((by_path("a/b/c") - 3.0).abs() < 1e-12);
        assert_eq!(report.total_wall_s, 10.0);
    }

    #[test]
    fn attributed_fraction_counts_uncovered_root_self() {
        let mut agg = PhaseAgg::new();
        agg.record("root", 10.0);
        agg.record("root/child", 9.0);
        let report = agg.report();
        assert!((report.attributed_fraction() - 0.9).abs() < 1e-12);
        // A leaf-only root is fully attributed to its own name.
        let mut leaf = PhaseAgg::new();
        leaf.record("solo", 5.0);
        assert!((leaf.report().attributed_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = PhaseAgg::new();
        a.record("x", 1.0);
        a.record("x/y", 0.5);
        let mut b = PhaseAgg::new();
        b.record("x", 2.0);
        b.record("z", 3.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let ra = ab.report();
        let rb = ba.report();
        assert_eq!(ra.phases.len(), rb.phases.len());
        for (pa, pb) in ra.phases.iter().zip(&rb.phases) {
            assert_eq!(pa.path, pb.path);
            assert_eq!(pa.calls, pb.calls);
            assert!((pa.wall_s - pb.wall_s).abs() < 1e-12);
        }
    }

    #[test]
    fn leaked_guard_unwinds_stack() {
        let mut p = LocalProfiler::new();
        let outer = p.enter("outer");
        let _inner = p.enter("inner");
        // Exit the outer span without exiting the inner one.
        p.exit(outer, 1.0);
        // The stack must be empty again: a new span is a root.
        let next = p.enter("next");
        p.exit(next, 1.0);
        let report = p.aggregate().report();
        assert!(report.phases.iter().any(|s| s.path == "next"));
    }

    #[test]
    fn render_and_json_contain_paths() {
        let mut agg = PhaseAgg::new();
        agg.record("trial", 2.0);
        agg.record("trial/exchange", 1.5);
        let report = agg.report();
        let text = report.render();
        assert!(text.contains("trial"));
        assert!(text.contains("exchange"));
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(|j| j.as_str()),
            Some("impatience-profile/1")
        );
    }
}
