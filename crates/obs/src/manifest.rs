//! Per-run manifests: provenance for every results artifact.

use std::path::Path;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use impatience_json::Json;

/// A run manifest: an ordered set of JSON fields written as a
/// `.manifest.json` sibling of a results file.
///
/// Construction stamps the schema version, the artifact kind, the unix
/// creation time, and the git revision (when available); callers add
/// config, seeds, wall time, worker counts, and statistic summaries with
/// [`Manifest::set`]. Keys are unique — setting an existing key
/// overwrites it in place, preserving field order for diffability.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    fields: Vec<(String, Json)>,
}

impl Manifest {
    /// A manifest for an artifact of the given kind (e.g. `"simulate"`,
    /// `"bench_csv"`).
    pub fn new(kind: &str) -> Self {
        let mut m = Manifest { fields: Vec::new() };
        m.set("schema", "impatience-manifest/1");
        m.set("kind", kind);
        m.set("created_unix", unix_now());
        match git_revision() {
            Some(rev) => m.set("git_rev", rev),
            None => m.set("git_rev", Json::Null),
        }
        m
    }

    /// Set (or overwrite) a field.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        let value = value.into();
        match self.fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.fields.push((key.to_string(), value)),
        }
    }

    /// Read a field back.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The manifest as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Object(self.fields.clone())
    }

    /// Write to `path` (single object plus newline), atomically: the
    /// manifest appears fully written or not at all, never torn.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut text = self.to_json().to_string();
        text.push('\n');
        crate::atomic::write_atomic(path, text.as_bytes())
    }

    /// The conventional sibling path for a results file:
    /// `results/foo.csv` → `results/foo.manifest.json`.
    pub fn sibling_path(results_path: &Path) -> std::path::PathBuf {
        results_path.with_extension("manifest.json")
    }

    /// Stamp runtime provenance: the compiler that built this binary
    /// (`rustc`), the process's peak resident set so far
    /// (`peak_rss_bytes`, Linux), and — when profiling ran — the summed
    /// wall time of root spans (`span_wall_s`), so manifests and
    /// `.profile.json` reports cross-reference.
    pub fn stamp_runtime(&mut self, total_span_wall_s: Option<f64>) {
        match rustc_version() {
            Some(v) => self.set("rustc", v),
            None => self.set("rustc", Json::Null),
        }
        match peak_rss_bytes() {
            Some(b) => self.set("peak_rss_bytes", b),
            None => self.set("peak_rss_bytes", Json::Null),
        }
        if let Some(wall) = total_span_wall_s {
            self.set("span_wall_s", wall);
        }
    }
}

/// Seconds since the unix epoch.
pub fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// The current git revision (short hash, `+dirty` when the tree has
/// modifications), or `None` outside a repository / without git.
pub fn git_revision() -> Option<String> {
    let rev = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())?;
    let dirty = Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    Some(if dirty { format!("{rev}+dirty") } else { rev })
}

/// The `rustc --version` string of the compiler that built this crate
/// (captured at build time), or `None` if it could not be determined.
pub fn rustc_version() -> Option<String> {
    let v = env!("IMPATIENCE_RUSTC");
    (!v.is_empty()).then(|| v.to_string())
}

/// The process's peak resident set size in bytes, from
/// `/proc/self/status` (`VmHWM`). `None` on platforms without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_provenance_fields() {
        let m = Manifest::new("test");
        assert_eq!(
            m.get("schema").and_then(Json::as_str),
            Some("impatience-manifest/1")
        );
        assert_eq!(m.get("kind").and_then(Json::as_str), Some("test"));
        assert!(m.get("created_unix").and_then(Json::as_u64).is_some());
        assert!(m.get("git_rev").is_some());
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut m = Manifest::new("test");
        m.set("workers", 4u64);
        m.set("seed", 1u64);
        m.set("workers", 8u64);
        assert_eq!(m.get("workers").and_then(Json::as_u64), Some(8));
        // Order preserved: workers still before seed.
        let json = m.to_json();
        let keys: Vec<&str> = json
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let wi = keys.iter().position(|&k| k == "workers").unwrap();
        let si = keys.iter().position(|&k| k == "seed").unwrap();
        assert!(wi < si);
    }

    #[test]
    fn sibling_path_swaps_extension() {
        assert_eq!(
            Manifest::sibling_path(Path::new("results/fig4.csv")),
            Path::new("results/fig4.manifest.json")
        );
    }

    #[test]
    fn stamp_runtime_fills_cross_reference_fields() {
        let mut m = Manifest::new("test");
        m.stamp_runtime(Some(1.25));
        // The build script always runs, so the rustc string is embedded
        // (it can only be null if `rustc --version` itself failed).
        assert!(m.get("rustc").is_some());
        assert!(m.get("peak_rss_bytes").is_some());
        assert_eq!(m.get("span_wall_s").and_then(Json::as_f64), Some(1.25));
        let mut without_spans = Manifest::new("test");
        without_spans.stamp_runtime(None);
        assert!(without_spans.get("span_wall_s").is_none());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes().unwrap();
        assert!(rss > 1024 * 1024, "peak RSS {rss} implausibly small");
    }

    #[test]
    fn writes_parseable_file() {
        let dir = std::env::temp_dir().join("impatience-obs-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.manifest.json");
        let mut m = Manifest::new("test");
        m.set("trials", 3u64);
        m.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v = Json::parse(text.trim()).unwrap();
        assert_eq!(v.get("trials").and_then(Json::as_u64), Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }
}
