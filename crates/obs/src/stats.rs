//! Shared order statistics: the one nearest-rank percentile definition
//! used across the workspace.
//!
//! The paper reports "confidence interval corresponding to 5% and 95%
//! percentiles" (§6.1); both the exact sample percentile in the trial
//! runner and the bucketed [`crate::Histogram`] quantiles implement the
//! *nearest-rank* definition — the smallest value with at least `⌈q·n⌉`
//! samples at or below it. This module is the single source of that rank
//! arithmetic so the two read-outs can never drift apart again.

/// 1-based nearest rank of the `q`-quantile in a sample of size `n`:
/// `⌈q·n⌉` clamped into `[1, n]`.
///
/// # Panics
/// Panics if `n == 0` or `q` is outside `[0, 1]`.
#[inline]
pub fn nearest_rank(q: f64, n: u64) -> u64 {
    assert!(n > 0, "nearest rank of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    ((q * n as f64).ceil() as u64).clamp(1, n)
}

/// Nearest-rank percentile of an unsorted sample (`q` in `[0, 1]`).
///
/// # Panics
/// Panics on an empty sample or `q` outside `[0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, q)
}

/// Nearest-rank percentile of an **already sorted** sample (`q` in
/// `[0, 1]`). Callers taking several percentiles of one sample should
/// sort once and use this instead of paying a clone + sort per rank.
///
/// # Panics
/// Panics on an empty sample or `q` outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
        "percentile_sorted needs a sorted sample"
    );
    let rank = nearest_rank(q, sorted.len() as u64) as usize;
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_definition() {
        assert_eq!(nearest_rank(0.0, 5), 1);
        assert_eq!(nearest_rank(0.05, 5), 1);
        assert_eq!(nearest_rank(0.5, 5), 3);
        assert_eq!(nearest_rank(0.95, 5), 5);
        assert_eq!(nearest_rank(1.0, 5), 5);
        assert_eq!(nearest_rank(0.5, 1), 1);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn nearest_rank_rejects_empty() {
        let _ = nearest_rank(0.5, 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn nearest_rank_rejects_bad_quantile() {
        let _ = nearest_rank(1.5, 4);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [3.0, 1.0, 4.0, 2.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.05), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    fn percentile_sorted_matches_percentile() {
        let unsorted = [9.0, 2.0, 7.0, 7.0, 1.0, 4.0];
        let mut sorted = unsorted.to_vec();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.05, 0.33, 0.5, 0.95, 1.0] {
            assert_eq!(percentile_sorted(&sorted, q), percentile(&unsorted, q));
        }
        assert_eq!(percentile_sorted(&[7.0], 0.5), 7.0);
    }
}
