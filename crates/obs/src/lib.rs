//! # impatience-obs
//!
//! Instrumentation layer for the Age of Impatience workspace: structured
//! events, monotonic counters, fixed-bucket histograms with percentile
//! readout, span timers, and per-run manifests.
//!
//! ## Design
//!
//! Everything funnels through a [`Recorder`] parameterized by a
//! statically dispatched [`Sink`]. The sink advertises whether it is live
//! through the associated constant [`Sink::ACTIVE`]; every hot-path hook
//! starts with `if !S::ACTIVE { return; }`, so with [`NoopSink`]
//! (`ACTIVE = false`) the compiler removes the instrumentation entirely —
//! the simulator's inner loop pays nothing when tracing is off. This is
//! checked by the `observability_overhead` group in the `simulator`
//! criterion bench.
//!
//! Three live sinks cover the use cases:
//!
//! * [`TallySink`] drops the event stream but leaves the recorder's
//!   counters and histograms running — what the parallel trial runner
//!   uses (one recorder per worker, merged at the end via
//!   [`Recorder::absorb`]).
//! * [`JsonlSink`] writes one JSON object per event per line — the
//!   `impatience simulate --trace-out FILE` format.
//! * [`MemorySink`] buffers events in a `Vec` for tests and for solver
//!   telemetry readout in `--verbose` mode.
//!
//! A [`Manifest`] captures run provenance (config, seeds, git revision,
//! wall time, worker count, peak queue depth, delay percentiles) and is
//! written as a `.manifest.json` sibling of every results CSV.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod atomic;
pub mod counter;
pub mod event;
pub mod histogram;
pub mod manifest;
pub mod progress;
pub mod recorder;
pub mod registry;
pub mod sink;
pub mod span;
pub mod stats;
pub mod stream;
pub mod trace;

pub use atomic::{write_atomic, AtomicFile};
pub use counter::{Counters, Peaks};
pub use event::Event;
pub use histogram::Histogram;
pub use manifest::{git_revision, Manifest};
pub use progress::Progress;
pub use recorder::Recorder;
pub use registry::{parse_prometheus, HistSnapshot, MetricKind, MetricsRegistry, PromSample};
pub use sink::{JsonlSink, MemorySink, NoopSink, Sink, TallySink};
pub use span::{PhaseAgg, PhaseReport, PhaseStat, SpanGuard};
pub use stats::{nearest_rank, percentile, percentile_sorted};
pub use stream::{EventStream, StreamCursor, StreamProgress, StreamSink};
pub use trace::{render_diff, TraceSummary};

/// The common imports: `use impatience_obs::prelude::*;`.
pub mod prelude {
    pub use crate::atomic::{write_atomic, AtomicFile};
    pub use crate::counter::{Counters, Peaks};
    pub use crate::event::Event;
    pub use crate::histogram::Histogram;
    pub use crate::manifest::{git_revision, Manifest};
    pub use crate::progress::Progress;
    pub use crate::recorder::Recorder;
    pub use crate::registry::{parse_prometheus, MetricsRegistry, PromSample};
    pub use crate::sink::{JsonlSink, MemorySink, NoopSink, Sink, TallySink};
    pub use crate::span::{PhaseAgg, PhaseReport, PhaseStat, SpanGuard};
    pub use crate::stats::{nearest_rank, percentile, percentile_sorted};
    pub use crate::stream::{EventStream, StreamCursor, StreamSink};
    pub use crate::trace::{render_diff, TraceSummary};
}
