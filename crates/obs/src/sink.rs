//! Event sinks: where recorded events go.

use std::io::Write;

use crate::event::Event;

/// A destination for [`Event`]s, dispatched statically.
///
/// [`Sink::ACTIVE`] is the zero-cost switch: every [`crate::Recorder`]
/// hook is guarded by `if !S::ACTIVE { return; }`, so instrumented code
/// monomorphized against [`NoopSink`] compiles to the uninstrumented
/// code. Implementations that want tallies (counters, histograms) but
/// not the event stream keep `ACTIVE = true` and discard in `record` —
/// see [`TallySink`].
pub trait Sink {
    /// Whether instrumentation is live for this sink type.
    const ACTIVE: bool = true;

    /// Whether this sink keeps the events it receives (as opposed to
    /// only driving the recorder's tallies). The parallel trial runner
    /// consults this: when `false` (e.g. [`TallySink`]) worker shards
    /// skip event buffering entirely and only their tallies are merged;
    /// when `true` (e.g. [`JsonlSink`]) workers buffer events in memory
    /// and the runner replays them into the caller's sink in trial
    /// order, preserving the deterministic serial event stream.
    const WANTS_EVENTS: bool = true;

    /// Receive one event.
    fn record(&mut self, event: &Event);

    /// Push any internally buffered events toward their destination.
    /// Called at natural run boundaries — checkpoint saves, end of
    /// campaign — so buffering sinks (see [`JsonlSink`]) can batch
    /// writes between them. The default is a no-op.
    fn flush(&mut self) {}
}

/// The disabled sink: `ACTIVE = false`, all hooks compile away.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    const ACTIVE: bool = false;
    const WANTS_EVENTS: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &Event) {}
}

/// Keeps the recorder's tallies running but drops the event stream.
///
/// The parallel trial runner uses one per worker: counters and
/// histograms accumulate cheaply, and the per-event cost is a discarded
/// call.
#[derive(Clone, Copy, Debug, Default)]
pub struct TallySink;

impl Sink for TallySink {
    const WANTS_EVENTS: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &Event) {}
}

/// Buffers events in memory, for tests and `--verbose` readouts.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    /// The events recorded so far, in order.
    pub events: Vec<Event>,
}

impl MemorySink {
    /// An empty buffer.
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Writes one JSON object per event per line (JSONL).
///
/// Events serialize directly into an internal batch buffer (no
/// intermediate JSON tree — see [`Event::write_jsonl`]) which drains to
/// the writer when it passes [`JsonlSink::BATCH_BYTES`], on
/// [`Sink::flush`] (called by the runner at checkpoint boundaries), and
/// on [`JsonlSink::into_inner`]. Batching is what removed the ~5×
/// overhead the PR 1 `observability_overhead` bench measured for
/// per-event writes.
///
/// I/O errors don't panic the hot path; the first one is kept and can be
/// inspected with [`JsonlSink::take_error`] after the run.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    buf: String,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Drain the batch buffer to the writer once it exceeds this size.
    pub const BATCH_BYTES: usize = 64 * 1024;

    /// Stream events to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            buf: String::with_capacity(Self::BATCH_BYTES + 4096),
            error: None,
        }
    }

    /// The first write error, if any occurred.
    pub fn take_error(&mut self) -> Option<std::io::Error> {
        self.error.take()
    }

    fn drain(&mut self) {
        if self.buf.is_empty() || self.error.is_some() {
            self.buf.clear();
            return;
        }
        if let Err(e) = self.writer.write_all(self.buf.as_bytes()) {
            self.error = Some(e);
        }
        self.buf.clear();
    }

    /// Flush buffered events and the writer, then return the writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.drain();
        self.writer.flush()?;
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(self.writer)
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        event.write_jsonl(&mut self.buf);
        self.buf.push('\n');
        if self.buf.len() >= Self::BATCH_BYTES {
            self.drain();
        }
    }

    fn flush(&mut self) {
        self.drain();
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_flags() {
        const { assert!(!<NoopSink as Sink>::ACTIVE) };
        const { assert!(<TallySink as Sink>::ACTIVE) };
        const { assert!(<MemorySink as Sink>::ACTIVE) };
        const { assert!(<JsonlSink<Vec<u8>> as Sink>::ACTIVE) };
    }

    #[test]
    fn wants_events_flags() {
        // Tally-only sinks let the parallel runner skip event buffering.
        const { assert!(!<NoopSink as Sink>::WANTS_EVENTS) };
        const { assert!(!<TallySink as Sink>::WANTS_EVENTS) };
        const { assert!(<MemorySink as Sink>::WANTS_EVENTS) };
        const { assert!(<JsonlSink<Vec<u8>> as Sink>::WANTS_EVENTS) };
    }

    #[test]
    fn memory_sink_keeps_order() {
        let mut sink = MemorySink::new();
        sink.record(&Event::Contact { t: 1.0, a: 0, b: 1 });
        sink.record(&Event::Replication { t: 1.0, count: 2 });
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].kind(), "contact");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&Event::Contact { t: 1.5, a: 0, b: 2 });
        sink.record(&Event::TrialDone {
            seed: 9,
            wall_s: 0.25,
        });
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            impatience_json::Json::parse(line).unwrap();
        }
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.record(&Event::Contact { t: 0.0, a: 0, b: 1 });
        sink.record(&Event::Contact { t: 1.0, a: 0, b: 1 });
        // Batched events only reach the writer on flush.
        sink.flush();
        assert!(sink.take_error().is_some());
        assert!(sink.take_error().is_none());
    }

    #[test]
    fn jsonl_sink_batches_until_flush() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Clone, Default)]
        struct CountingWriter {
            writes: Rc<RefCell<usize>>,
            bytes: Rc<RefCell<Vec<u8>>>,
        }
        impl Write for CountingWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                *self.writes.borrow_mut() += 1;
                self.bytes.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let writer = CountingWriter::default();
        let writes = writer.writes.clone();
        let bytes = writer.bytes.clone();
        let mut sink = JsonlSink::new(writer);
        for i in 0..100 {
            sink.record(&Event::Contact {
                t: i as f64,
                a: 0,
                b: 1,
            });
        }
        assert_eq!(*writes.borrow(), 0, "events must batch, not write-through");
        sink.flush();
        assert_eq!(*writes.borrow(), 1, "one batched write on flush");
        let text = String::from_utf8(bytes.borrow().clone()).unwrap();
        assert_eq!(text.lines().count(), 100);
        // Re-flushing with nothing buffered writes nothing.
        sink.flush();
        assert_eq!(*writes.borrow(), 1);
    }

    #[test]
    fn jsonl_batch_buffer_drains_at_threshold() {
        let mut sink = JsonlSink::new(Vec::new());
        // Each contact line is ~40 bytes; push well past BATCH_BYTES.
        let n = (JsonlSink::<Vec<u8>>::BATCH_BYTES / 20) as u64;
        for i in 0..n {
            sink.record(&Event::Replication {
                t: i as f64,
                count: i,
            });
        }
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), n as usize);
        for line in text.lines().take(50) {
            impatience_json::Json::parse(line).unwrap();
        }
    }
}
