//! Event sinks: where recorded events go.

use std::io::Write;

use crate::event::Event;

/// A destination for [`Event`]s, dispatched statically.
///
/// [`Sink::ACTIVE`] is the zero-cost switch: every [`crate::Recorder`]
/// hook is guarded by `if !S::ACTIVE { return; }`, so instrumented code
/// monomorphized against [`NoopSink`] compiles to the uninstrumented
/// code. Implementations that want tallies (counters, histograms) but
/// not the event stream keep `ACTIVE = true` and discard in `record` —
/// see [`TallySink`].
pub trait Sink {
    /// Whether instrumentation is live for this sink type.
    const ACTIVE: bool = true;

    /// Whether this sink keeps the events it receives (as opposed to
    /// only driving the recorder's tallies). The parallel trial runner
    /// consults this: when `false` (e.g. [`TallySink`]) worker shards
    /// skip event buffering entirely and only their tallies are merged;
    /// when `true` (e.g. [`JsonlSink`]) workers buffer events in memory
    /// and the runner replays them into the caller's sink in trial
    /// order, preserving the deterministic serial event stream.
    const WANTS_EVENTS: bool = true;

    /// Receive one event.
    fn record(&mut self, event: &Event);
}

/// The disabled sink: `ACTIVE = false`, all hooks compile away.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    const ACTIVE: bool = false;
    const WANTS_EVENTS: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &Event) {}
}

/// Keeps the recorder's tallies running but drops the event stream.
///
/// The parallel trial runner uses one per worker: counters and
/// histograms accumulate cheaply, and the per-event cost is a discarded
/// call.
#[derive(Clone, Copy, Debug, Default)]
pub struct TallySink;

impl Sink for TallySink {
    const WANTS_EVENTS: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &Event) {}
}

/// Buffers events in memory, for tests and `--verbose` readouts.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    /// The events recorded so far, in order.
    pub events: Vec<Event>,
}

impl MemorySink {
    /// An empty buffer.
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Writes one JSON object per event per line (JSONL).
///
/// I/O errors don't panic the hot path; the first one is kept and can be
/// inspected with [`JsonlSink::take_error`] after the run. Wrap the
/// writer in a `BufWriter` for file output.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    line: String,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Stream events to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            line: String::new(),
            error: None,
        }
    }

    /// The first write error, if any occurred.
    pub fn take_error(&mut self) -> Option<std::io::Error> {
        self.error.take()
    }

    /// Flush and return the writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(self.writer)
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        event.to_json().write(&mut self.line);
        self.line.push('\n');
        if let Err(e) = self.writer.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_flags() {
        const { assert!(!<NoopSink as Sink>::ACTIVE) };
        const { assert!(<TallySink as Sink>::ACTIVE) };
        const { assert!(<MemorySink as Sink>::ACTIVE) };
        const { assert!(<JsonlSink<Vec<u8>> as Sink>::ACTIVE) };
    }

    #[test]
    fn wants_events_flags() {
        // Tally-only sinks let the parallel runner skip event buffering.
        const { assert!(!<NoopSink as Sink>::WANTS_EVENTS) };
        const { assert!(!<TallySink as Sink>::WANTS_EVENTS) };
        const { assert!(<MemorySink as Sink>::WANTS_EVENTS) };
        const { assert!(<JsonlSink<Vec<u8>> as Sink>::WANTS_EVENTS) };
    }

    #[test]
    fn memory_sink_keeps_order() {
        let mut sink = MemorySink::new();
        sink.record(&Event::Contact { t: 1.0, a: 0, b: 1 });
        sink.record(&Event::Replication { t: 1.0, count: 2 });
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].kind(), "contact");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&Event::Contact { t: 1.5, a: 0, b: 2 });
        sink.record(&Event::TrialDone {
            seed: 9,
            wall_s: 0.25,
        });
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            impatience_json::Json::parse(line).unwrap();
        }
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.record(&Event::Contact { t: 0.0, a: 0, b: 1 });
        sink.record(&Event::Contact { t: 1.0, a: 0, b: 1 });
        assert!(sink.take_error().is_some());
        assert!(sink.take_error().is_none());
    }
}
