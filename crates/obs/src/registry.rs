//! A process-wide metrics registry with Prometheus text exposition.
//!
//! [`MetricsRegistry`] stores counter, gauge, and histogram families
//! keyed by metric name, each holding labeled series. [`Recorder`]
//! tallies fold in through [`MetricsRegistry::absorb_recorder`], span
//! phase trees through [`MetricsRegistry::absorb_phase_report`], and the
//! whole registry serializes as Prometheus text exposition format
//! (version 0.0.4) via [`MetricsRegistry::render`] — written crash-safely
//! to `results/*.prom` by [`MetricsRegistry::write_prom`]. This is the
//! designated data source for the planned `impatience serve` `/metrics`
//! endpoint (ROADMAP item 3).
//!
//! Exposition output is deterministic: families sort by name, series by
//! label set, and histogram buckets export on a fixed power-of-two edge
//! grid, so two runs with identical tallies produce byte-identical
//! `.prom` files. A minimal parser ([`parse_prometheus`]) supports the
//! round-trip tests and `impatience trace export --prom` consumers.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use crate::atomic::write_atomic;
use crate::histogram::Histogram;
use crate::recorder::Recorder;
use crate::sink::Sink;
use crate::span::PhaseReport;

/// What a metric family measures, per the Prometheus data model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing total.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative-bucket distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A histogram series snapshot: cumulative counts at ascending edges,
/// plus exact sum and count.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnapshot {
    /// `(upper_edge, cumulative_count)` pairs, edges ascending. The
    /// implicit `+Inf` bucket is `count`.
    pub buckets: Vec<(f64, u64)>,
    /// Exact sum of samples.
    pub sum: f64,
    /// Total samples.
    pub count: u64,
}

#[derive(Clone, Debug, PartialEq)]
enum Series {
    Value(f64),
    Hist(HistSnapshot),
}

#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Keyed by rendered label set (`{a="x",b="y"}` or empty).
    series: BTreeMap<String, Series>,
}

/// Counter/gauge/histogram families with labels; renders to Prometheus
/// text exposition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

/// Number of exported histogram bucket edges (power-of-two grid over the
/// source histogram's bucket width).
const EXPORT_EDGES: usize = 13;

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// True when no families are registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    fn family(&mut self, name: &str, kind: MetricKind, help: &str) -> &mut Family {
        self.families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                kind,
                help: help.to_string(),
                series: BTreeMap::new(),
            })
    }

    /// Add `v` to a counter series (creating it at zero).
    pub fn counter_add(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        let key = label_key(labels);
        let fam = self.family(name, MetricKind::Counter, help);
        match fam.series.entry(key).or_insert(Series::Value(0.0)) {
            Series::Value(total) => *total += v,
            Series::Hist(_) => {}
        }
    }

    /// Set a gauge series to `v`.
    pub fn gauge_set(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        let key = label_key(labels);
        let fam = self.family(name, MetricKind::Gauge, help);
        fam.series.insert(key, Series::Value(v));
    }

    /// Install a histogram series snapshot (replacing any previous one
    /// under the same labels).
    pub fn histogram_set(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snapshot: HistSnapshot,
    ) {
        let key = label_key(labels);
        let fam = self.family(name, MetricKind::Histogram, help);
        fam.series.insert(key, Series::Hist(snapshot));
    }

    /// Snapshot an obs [`Histogram`] onto the export edge grid
    /// (power-of-two multiples of its bucket width) and install it.
    pub fn histogram_observe(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &Histogram,
    ) {
        let width = hist.range() / hist.buckets() as f64;
        let mut buckets = Vec::with_capacity(EXPORT_EDGES);
        for k in 0..EXPORT_EDGES {
            let edge = width * (1u64 << k) as f64;
            if edge > hist.range() {
                break;
            }
            buckets.push((edge, hist.cumulative_below(edge)));
        }
        self.histogram_set(
            name,
            help,
            labels,
            HistSnapshot {
                buckets,
                sum: hist.sum(),
                count: hist.count(),
            },
        );
    }

    /// Fold a recorder's tallies in: counters as `impatience_<name>_total`,
    /// peaks as `impatience_peak_<name>` gauges, and the delay /
    /// inter-contact histograms (simulation minutes).
    pub fn absorb_recorder<S: Sink>(&mut self, rec: &Recorder<S>) {
        for &(name, v) in rec.counters.entries() {
            self.counter_add(
                &format!("impatience_{name}_total"),
                "Event count accumulated by the run recorder.",
                &[],
                v as f64,
            );
        }
        for &(name, v) in rec.peaks.entries() {
            self.gauge_set(
                &format!("impatience_peak_{name}"),
                "High-water mark observed by the run recorder.",
                &[],
                v as f64,
            );
        }
        if rec.delay.count() > 0 {
            self.histogram_observe(
                "impatience_fulfillment_delay_minutes",
                "Request fulfillment delay distribution (simulation minutes).",
                &[],
                &rec.delay,
            );
        }
        if rec.inter_contact.count() > 0 {
            self.histogram_observe(
                "impatience_inter_contact_minutes",
                "System-wide inter-contact gap distribution (simulation minutes).",
                &[],
                &rec.inter_contact,
            );
        }
    }

    /// Fold a span phase tree in: wall/self seconds and call counts per
    /// slash-joined span path.
    pub fn absorb_phase_report(&mut self, report: &PhaseReport) {
        for phase in &report.phases {
            let labels = [("path", phase.path.as_str())];
            self.counter_add(
                "impatience_span_wall_seconds_total",
                "Total wall time spent inside each span path.",
                &labels,
                phase.wall_s,
            );
            self.counter_add(
                "impatience_span_self_seconds_total",
                "Wall time per span path not attributed to child spans.",
                &labels,
                phase.self_s,
            );
            self.counter_add(
                "impatience_span_calls_total",
                "Completed occurrences per span path.",
                &labels,
                phase.calls as f64,
            );
        }
        if report.total_wall_s > 0.0 {
            self.gauge_set(
                "impatience_span_root_wall_seconds",
                "Summed wall time of root spans.",
                &[],
                report.total_wall_s,
            );
        }
    }

    /// Render the whole registry as Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            if !fam.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", fam.help.replace('\n', " "));
            }
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
            for (labels, series) in &fam.series {
                match series {
                    Series::Value(v) => {
                        let _ = writeln!(out, "{name}{labels} {}", fmt_value(*v));
                    }
                    Series::Hist(h) => {
                        for &(edge, cum) in &h.buckets {
                            let le = fmt_value(edge);
                            let _ =
                                writeln!(out, "{name}_bucket{} {cum}", merge_labels(labels, &le));
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            merge_labels(labels, "+Inf"),
                            h.count
                        );
                        let _ = writeln!(out, "{name}_sum{labels} {}", fmt_value(h.sum));
                        let _ = writeln!(out, "{name}_count{labels} {}", h.count);
                    }
                }
            }
        }
        out
    }

    /// Write the exposition atomically (temp + fsync + rename).
    pub fn write_prom(&self, path: &Path) -> std::io::Result<()> {
        write_atomic(path, self.render().as_bytes())
    }

    /// Every concrete sample the exposition would contain, flattened —
    /// for tests and diffing.
    pub fn samples(&self) -> Vec<PromSample> {
        // Parsing our own render keeps the two views definitionally
        // consistent; the format is ours, so this cannot fail.
        parse_prometheus(&self.render()).unwrap_or_default()
    }
}

/// Shared process-wide registry (for long-lived collectors like the
/// planned `impatience serve`).
pub fn global() -> &'static Mutex<MetricsRegistry> {
    static GLOBAL: OnceLock<Mutex<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(MetricsRegistry::new()))
}

fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Splice an `le="..."` label into an already-rendered label set.
fn merge_labels(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        // labels ends with '}'; insert before it.
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One parsed exposition sample.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Metric name (for histograms, includes the `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// Label pairs in file order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf` labels stay in `labels`; the value itself is
    /// always finite in our output).
    pub value: f64,
}

/// Parse Prometheus text exposition (the subset this registry emits:
/// `# HELP`/`# TYPE` comments and `name{labels} value` samples).
///
/// # Errors
/// Returns `Err(line_number, message)` on the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, (usize, String)> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|msg| (lineno + 1, msg))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (head, value_text) = match line.find('{') {
        Some(_) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let cut = line
                .find(char::is_whitespace)
                .ok_or_else(|| "sample has no value".to_string())?;
            (&line[..cut], line[cut..].trim())
        }
    };
    let (name, labels) = match head.find('{') {
        Some(brace) => (
            head[..brace].to_string(),
            parse_labels(&head[brace + 1..head.len() - 1])?,
        ),
        None => (head.to_string(), Vec::new()),
    };
    if name.is_empty() {
        return Err("sample has no metric name".to_string());
    }
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        other => other
            .parse::<f64>()
            .map_err(|e| format!("bad value {other:?}: {e}"))?,
    };
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = rest[..eq].trim().to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label value not quoted: {after:?}"));
        }
        // Scan for the closing quote, honoring backslash escapes.
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err("dangling escape in label value".to_string()),
                },
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                other => value.push(other),
            }
        }
        let end = consumed.ok_or_else(|| "unterminated label value".to_string())?;
        labels.push((key, value));
        rest = after[1 + end..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TallySink;

    #[test]
    fn counters_accumulate_gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("hits_total", "Hits.", &[], 2.0);
        reg.counter_add("hits_total", "Hits.", &[], 3.0);
        reg.gauge_set("depth", "Depth.", &[], 7.0);
        reg.gauge_set("depth", "Depth.", &[], 4.0);
        let text = reg.render();
        assert!(text.contains("hits_total 5"));
        assert!(text.contains("depth 4"));
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("# TYPE depth gauge"));
    }

    #[test]
    fn labels_are_sorted_and_escaped() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(
            "x_total",
            "",
            &[("b", "two\"quote"), ("a", "one\\slash")],
            1.0,
        );
        let text = reg.render();
        assert!(
            text.contains(r#"x_total{a="one\\slash",b="two\"quote"} 1"#),
            "got: {text}"
        );
    }

    #[test]
    fn histogram_exposition_shape() {
        let mut h = Histogram::new(1024.0, 1024);
        for v in [0.5, 1.5, 3.0, 100.0, 2000.0] {
            h.record(v);
        }
        let mut reg = MetricsRegistry::new();
        reg.histogram_observe("lat", "Latency.", &[], &h);
        let text = reg.render();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains(r#"lat_bucket{le="1"} 1"#));
        assert!(text.contains(r#"lat_bucket{le="4"} 3"#));
        assert!(text.contains(r#"lat_bucket{le="+Inf"} 5"#));
        assert!(text.contains("lat_count 5"));
        let sum: f64 = 0.5 + 1.5 + 3.0 + 100.0 + 2000.0;
        assert!(text.contains(&format!("lat_sum {sum}")));
    }

    #[test]
    fn absorb_recorder_exports_tallies() {
        let mut rec = Recorder::new(TallySink);
        rec.contact(1.0, 0, 1);
        rec.contact(2.0, 1, 2);
        rec.fulfillment(3.0, 0, 1, 1.5, 1);
        rec.open_requests(9);
        let mut reg = MetricsRegistry::new();
        reg.absorb_recorder(&rec);
        let text = reg.render();
        assert!(text.contains("impatience_contacts_total 2"));
        assert!(text.contains("impatience_peak_open_requests 9"));
        assert!(text.contains("impatience_fulfillment_delay_minutes_count 1"));
    }

    #[test]
    fn absorb_phase_report_labels_paths() {
        let mut agg = crate::span::PhaseAgg::new();
        agg.record("trial", 2.0);
        agg.record("trial/exchange", 1.5);
        let mut reg = MetricsRegistry::new();
        reg.absorb_phase_report(&agg.report());
        let text = reg.render();
        assert!(text.contains(r#"impatience_span_wall_seconds_total{path="trial"} 2"#));
        assert!(text.contains(r#"impatience_span_calls_total{path="trial/exchange"} 1"#));
        assert!(text.contains("impatience_span_root_wall_seconds 2"));
    }

    #[test]
    fn render_parse_round_trip() {
        let mut rec = Recorder::new(TallySink);
        for i in 0..50 {
            rec.fulfillment(i as f64, 0, 0, (i * 7 % 90) as f64, 1);
        }
        rec.contact(1.0, 0, 1);
        let mut agg = crate::span::PhaseAgg::new();
        agg.record("trial", 0.25);
        agg.record("trial/exchange", 0.125);
        let mut reg = MetricsRegistry::new();
        reg.absorb_recorder(&rec);
        reg.absorb_phase_report(&agg.report());
        let text = reg.render();
        let parsed = parse_prometheus(&text).expect("own output must parse");
        assert!(!parsed.is_empty());
        // Every sample line survives: render(parse(render)) is stable.
        assert_eq!(parsed, reg.samples());
        // Spot-check a labeled sample.
        let span_wall = parsed
            .iter()
            .find(|s| {
                s.name == "impatience_span_wall_seconds_total"
                    && s.labels == [("path".to_string(), "trial".to_string())]
            })
            .expect("span sample present");
        assert!((span_wall.value - 0.25).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_prometheus("metric_without_value").is_err());
        assert!(parse_prometheus("x{unterminated 1").is_err());
        assert!(parse_prometheus("x{a=\"v\"} not_a_number").is_err());
        let (line, _) = parse_prometheus("ok 1\nbad").expect_err("second line fails");
        assert_eq!(line, 2);
    }

    #[test]
    fn infinity_values_parse() {
        let s = parse_prometheus("x +Inf").expect("parses");
        assert!(s[0].value.is_infinite());
    }
}
