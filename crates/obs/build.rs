//! Embed the compiler version so manifests can stamp `rustc` without
//! shelling out at runtime (which could observe a different toolchain
//! than the one that built the binary).

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = Command::new(rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    println!("cargo:rustc-env=IMPATIENCE_RUSTC={version}");
}
