//! Deterministic pseudo-random generation and the samplers used across the
//! workspace.
//!
//! Simulation results in this repository must be *bit-stable*: re-running an
//! experiment with the same seed must produce the same trajectory, including
//! across dependency upgrades. We therefore implement the generator
//! (xoshiro256++, seeded through splitmix64) and every distribution sampler
//! in-repo instead of depending on `rand`'s (version-dependent) algorithms.
//!
//! Samplers provided: uniform `u64`/`f64`/range, Bernoulli, exponential,
//! Pareto (continuous), Poisson counts, weighted discrete sampling via
//! Walker's alias method, and Fisher–Yates shuffling.

/// xoshiro256++ generator (Blackman & Vigna).
///
/// Not cryptographically secure; period `2^256 − 1`; passes BigCrush.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed (expanded via splitmix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // splitmix64 of any seed never yields the all-zero state, but be
        // defensive: the all-zero state is a fixed point of xoshiro.
        if s == [0, 0, 0, 0] {
            Xoshiro256 { s: [1, 2, 3, 4] }
        } else {
            Xoshiro256 { s }
        }
    }

    /// Derive an independent child generator (for per-trial streams).
    ///
    /// Mixes the stream index into a fresh splitmix64 expansion of the
    /// current state, so children of the same parent are decorrelated.
    pub fn split(&mut self, stream: u64) -> Self {
        let mix = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Xoshiro256::seed_from_u64(mix)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1]` — safe for `ln`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening-multiply rejection sampling: unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed sample with rate `λ` (mean `1/λ`).
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -self.f64_open().ln() / rate
    }

    /// Pareto (Type I) sample with scale `x_min > 0` and shape `a > 0`:
    /// density `a x_min^a / x^{a+1}` on `[x_min, ∞)`.
    pub fn pareto(&mut self, x_min: f64, shape: f64) -> f64 {
        assert!(
            x_min > 0.0 && shape > 0.0,
            "pareto parameters must be positive"
        );
        x_min / self.f64_open().powf(1.0 / shape)
    }

    /// Poisson-distributed count with mean `lambda ≥ 0`.
    ///
    /// Uses Knuth multiplication for small means and a normal approximation
    /// with continuity correction above `λ = 64` (adequate for event counts
    /// in trace generation; relative error of the tail is negligible there).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "poisson mean must be finite and ≥ 0"
        );
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 64.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.f64_open();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let sample = lambda + lambda.sqrt() * self.normal();
            sample.round().max(0.0) as u64
        }
    }

    /// Standard normal sample (Box–Muller; one of the pair is discarded for
    /// statelessness).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.f64_open();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.index(xs.len())]
    }
}

/// Walker's alias method for O(1) weighted discrete sampling.
///
/// Used wherever an item must be drawn according to its popularity
/// (request generation draws millions of samples per trial).
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build an alias table from non-negative weights (not all zero).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/NaN weight, or
    /// sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be finite and ≥ 0");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] -= 1.0 - prob[s];
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual entries (floating point) saturate to probability one.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one category index.
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let i = rng.index(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let mut parent = Xoshiro256::seed_from_u64(7);
        let mut c1 = parent.split(0);
        let mut c2 = parent.split(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 7.0;
            assert!((c as f64 - expect).abs() < 5.0 * expect.sqrt(), "count {c}");
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let rate = 0.25;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exp(rate)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let lambda = 3.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let lambda = 400.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::seed_from_u64(12);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(20);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        assert_eq!(table.len(), 4);
        let mut rng = Xoshiro256::seed_from_u64(99);
        let mut counts = [0u32; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = n as f64 * w / total;
            assert!(
                (counts[i] as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "category {i}: {} vs {}",
                counts[i],
                expect
            );
        }
    }

    #[test]
    fn alias_table_single_category() {
        let table = AliasTable::new(&[5.0]);
        let mut rng = Xoshiro256::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_table_with_zero_weights() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = Xoshiro256::seed_from_u64(0);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn alias_table_rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn alias_table_rejects_empty() {
        let _ = AliasTable::new(&[]);
    }
}
