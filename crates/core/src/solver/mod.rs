//! Cache-allocation solvers for the optimization problem of Eq. (6):
//! maximize `U(x)` subject to per-server capacity `ρ`.
//!
//! * [`greedy`] — homogeneous contacts: exact greedy (Theorem 2), one
//!   replica at a time by largest marginal welfare.
//! * [`relaxed`] — homogeneous contacts, fractional counts: the
//!   water-filling solution of Property 1's equilibrium condition, plus a
//!   projected-gradient solver for cross-validation (Theorem 2's
//!   "gradient descent").
//! * [`het_greedy`] — heterogeneous contacts: lazy (CELF) submodular
//!   greedy over (item, server) placements with the `(1 − 1/e)` guarantee
//!   of Theorem 1 / Nemhauser et al.
//! * [`fixed`] — the perfect-control-channel heuristics of §6.1:
//!   UNI, SQRT, PROP, DOM.
//! * [`incremental`] — live re-optimization: a [`incremental::DeltaSolver`]
//!   carries the memoized gain table and last allocation across demand /
//!   budget / contact-rate deltas, re-solving incrementally
//!   (bit-identical to scratch greedy) or certifying a stale allocation
//!   within ε via the relaxed upper bound.

pub mod fixed;
pub mod greedy;
pub mod het_greedy;
pub mod incremental;
pub mod relaxed;

/// A solver instance rejected before (or while) solving.
///
/// The panicking entry points ([`greedy::greedy_homogeneous`],
/// [`relaxed::relaxed_optimum`], …) forward these `Display` strings
/// verbatim; fallible callers use the `try_*` variants instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverError {
    /// The utility has `h(0⁺) = ∞` but the population is pure P2P, so
    /// zero-replica items would contribute `−∞` welfare.
    RequiresDedicated {
        /// The utility family's name.
        utility: String,
    },
    /// Every demand rate is zero: the welfare surface is flat and no
    /// water level exists.
    NoDemand,
    /// The water-level search could not bracket the budget constraint —
    /// demand rates are so extreme the level left `[1e-300, 1e300]`.
    BracketFailed {
        /// Which side escaped ("above" or "below").
        bound: &'static str,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::RequiresDedicated { utility } => write!(
                f,
                "{utility} has h(0+)=∞ and requires a dedicated-node population"
            ),
            SolverError::NoDemand => write!(f, "no demand at all: every rate is zero"),
            SolverError::BracketFailed { bound } => {
                write!(f, "failed to bracket the water level from {bound}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// Totally ordered `f64` key with tie-breakers, for solver heaps.
///
/// NaN keys are rejected at construction so the ordering is total in
/// practice; `+∞` marginals (first replica of a cost-type utility) sort
/// above all finite values and among themselves by the tie-break value
/// (demand rate), exactly the order the theory prescribes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct HeapKey {
    pub primary: f64,
    pub tie: f64,
}

impl HeapKey {
    pub fn new(primary: f64, tie: f64) -> Self {
        assert!(
            !primary.is_nan() && !tie.is_nan(),
            "heap keys must not be NaN"
        );
        HeapKey { primary, tie }
    }
}

impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.primary
            .total_cmp(&other.primary)
            .then(self.tie.total_cmp(&other.tie))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_with_infinities_and_ties() {
        let a = HeapKey::new(f64::INFINITY, 2.0);
        let b = HeapKey::new(f64::INFINITY, 1.0);
        let c = HeapKey::new(10.0, 0.0);
        assert!(a > b);
        assert!(b > c);
        assert!(HeapKey::new(1.0, 0.0) < HeapKey::new(2.0, 0.0));
        assert_eq!(HeapKey::new(1.0, 1.0), HeapKey::new(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn rejects_nan() {
        let _ = HeapKey::new(f64::NAN, 0.0);
    }
}
