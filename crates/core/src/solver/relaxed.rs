//! Relaxed (fractional) optimal allocation under homogeneous contacts:
//! the water-filling solution of Property 1, and a projected-gradient
//! solver for cross-validation (Theorem 2 mentions gradient descent).
//!
//! Property 1: at the relaxed optimum `x̃`, for all items inside the box
//! `0 < x̃_i < |S|`,
//!
//! ```text
//! d_i·φ(x̃_i) = λ           (a common "water level")
//! ```
//!
//! with `φ(x) = ∫ μ t e^{−μtx} c(t) dt` strictly decreasing. The solver
//! therefore inverts `φ` per item (inner bisection) and finds the level
//! `λ` that exhausts the budget `Σ x̃_i = ρ|S|` (outer bisection).
//!
//! For the power family the solution is the closed form
//! `x̃_i ∝ d_i^{1/(2−α)}` (Fig. 2), which the tests verify.

use std::cell::Cell;
use std::time::Instant;

use impatience_obs::{Recorder, Sink};

use super::SolverError;
use crate::demand::DemandRates;
use crate::numeric::bisect;
use crate::types::SystemModel;
use crate::utility::DelayUtility;

/// A fractional allocation together with the equilibrium level that
/// produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct RelaxedAllocation {
    /// Fractional replica counts `x̃_i ∈ [0, |S|]`.
    pub x: Vec<f64>,
    /// The common marginal value `λ = d_i·φ(x̃_i)` on the interior.
    pub level: f64,
}

impl RelaxedAllocation {
    /// Total fractional replicas.
    pub fn total(&self) -> f64 {
        self.x.iter().sum()
    }

    /// Largest violation of Property 1's equilibrium condition over
    /// interior items — a residual for testing (0 at the exact optimum).
    pub fn equilibrium_residual(
        &self,
        system: &SystemModel,
        demand: &DemandRates,
        utility: &dyn DelayUtility,
    ) -> f64 {
        let s = system.servers() as f64;
        let mut worst = 0.0f64;
        for (i, &xi) in self.x.iter().enumerate() {
            if xi > 1e-9 && xi < s - 1e-9 && demand.rate(i) > 0.0 {
                let v = demand.rate(i) * utility.phi(xi, system.contact_rate);
                worst = worst.max((v - self.level).abs() / self.level.max(1e-300));
            }
        }
        worst
    }
}

/// The smallest positive count used when inverting φ (φ may diverge at 0).
const X_FLOOR: f64 = 1e-9;

/// Invert `x ↦ d·φ(x)` at value `level` over `[X_FLOOR, s]`, clamping to
/// the box when `level` falls outside `φ`'s range.
///
/// `phi_floor` and `phi_cap` are `φ(X_FLOOR)` and `φ(s)`, which depend
/// only on the utility and system shape — callers evaluate them once per
/// solve instead of twice per (item, water-level probe); each of those φ
/// values costs a quadrature under the integral-defined utilities.
fn invert_phi(
    utility: &dyn DelayUtility,
    mu: f64,
    phi_floor: f64,
    phi_cap: f64,
    d: f64,
    level: f64,
    s: f64,
) -> f64 {
    debug_assert!(d > 0.0 && level > 0.0);
    let at_floor = d * phi_floor;
    if !at_floor.is_finite() || at_floor <= level {
        // Even an infinitesimal replica count is not worth the level:
        // boundary solution x = 0 (only possible when φ(0⁺) is finite).
        if at_floor <= level {
            return 0.0;
        }
        // φ(0⁺) = ∞ (power family): interior solution exists; fall through
        // with a slightly larger bracket start.
    }
    if d * phi_cap >= level {
        return s; // saturates at |S| replicas
    }
    bisect(|x| d * utility.phi(x, mu) - level, X_FLOOR, s, 1e-12 * s)
        .expect("φ is continuous and decreasing: the bracket is valid")
}

/// Water-filling solution of the relaxed welfare maximization
/// (Theorem 2 / Property 1). Budget is `ρ·|S|`; each `x̃_i ≤ |S|`.
///
/// # Panics
/// Panics if the utility requires dedicated nodes but the system is pure
/// P2P, or if no item has positive demand.
pub fn relaxed_optimum(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
) -> RelaxedAllocation {
    relaxed_optimum_observed(system, demand, utility, &mut Recorder::disabled())
}

/// [`relaxed_optimum`] returning a typed [`SolverError`] instead of
/// panicking on invalid inputs.
pub fn try_relaxed_optimum(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
) -> Result<RelaxedAllocation, SolverError> {
    try_relaxed_optimum_observed(system, demand, utility, &mut Recorder::disabled())
}

/// [`relaxed_optimum`] with instrumentation: `solver_done` reports how
/// many water-level probes the outer bisection needed (iterations) and
/// how many φ-inversions they cost (evaluations); a final `solver_step`
/// carries the budget residual `|Σx̃ − ρ|S|| / ρ|S|` at the solution —
/// the convergence residual of the outer bisection. Trivial instances
/// (zero budget, catalog-saturating budget) emit nothing.
pub fn relaxed_optimum_observed<S: Sink>(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
    rec: &mut Recorder<S>,
) -> RelaxedAllocation {
    match try_relaxed_optimum_observed(system, demand, utility, rec) {
        Ok(allocation) => allocation,
        Err(e) => panic!("{e}"),
    }
}

/// [`relaxed_optimum_observed`] returning a typed [`SolverError`]
/// instead of panicking on invalid inputs or a failed water-level
/// bracket.
pub fn try_relaxed_optimum_observed<S: Sink>(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
    rec: &mut Recorder<S>,
) -> Result<RelaxedAllocation, SolverError> {
    water_fill_observed(system, demand, utility, rec, None)
}

/// [`try_relaxed_optimum`] warm-started from a previous solve's water
/// level. The outer bisection brackets around `hint` (`[λ₀/4, 4λ₀]`,
/// expanded geometrically if the level moved further) instead of the
/// cold `[1e-12, 1]` start, so after a small demand delta the level is
/// typically re-bracketed in O(1) probes. The solution satisfies the
/// same budget-residual convergence criterion as the cold solve; the
/// *probe sequence* differs, so results are equal to solver tolerance
/// but not guaranteed bit-identical to a cold solve. A `None` or
/// non-finite/non-positive hint falls back to the cold bracket exactly.
pub fn try_relaxed_optimum_warm(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
    hint: Option<f64>,
) -> Result<RelaxedAllocation, SolverError> {
    water_fill_observed(system, demand, utility, &mut Recorder::disabled(), hint)
}

fn water_fill_observed<S: Sink>(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
    rec: &mut Recorder<S>,
    hint: Option<f64>,
) -> Result<RelaxedAllocation, SolverError> {
    let _span = impatience_obs::span!("solve.relaxed");
    if utility.requires_dedicated() && system.population.is_pure_p2p() {
        return Err(SolverError::RequiresDedicated {
            utility: utility.kind().to_string(),
        });
    }
    let items = demand.items();
    let s = system.servers() as f64;
    let mu = system.contact_rate;
    let budget = system.total_slots() as f64;
    if !demand.rates().iter().any(|&d| d > 0.0) {
        return Err(SolverError::NoDemand);
    }

    if budget == 0.0 || s == 0.0 {
        return Ok(RelaxedAllocation {
            x: vec![0.0; items],
            level: f64::INFINITY,
        });
    }
    // If the budget covers the whole catalog at the cap, saturate.
    let demanded: Vec<usize> = (0..items).filter(|&i| demand.rate(i) > 0.0).collect();
    // φ at the box boundaries is item-independent; evaluate the two
    // quadratures once for the whole solve instead of per φ-inversion.
    let phi_cap = utility.phi(s, mu);
    if budget >= s * demanded.len() as f64 {
        let mut x = vec![0.0; items];
        for &i in &demanded {
            x[i] = s;
        }
        return Ok(RelaxedAllocation {
            x,
            level: demanded
                .iter()
                .map(|&i| demand.rate(i) * phi_cap)
                .fold(f64::INFINITY, f64::min),
        });
    }
    let phi_floor = utility.phi(X_FLOOR, mu);

    let wall_start = rec.is_active().then(Instant::now);
    let probes = Cell::new(0u64);
    let total_at = |level: f64| -> f64 {
        probes.set(probes.get() + 1);
        demanded
            .iter()
            .map(|&i| invert_phi(utility, mu, phi_floor, phi_cap, demand.rate(i), level, s))
            .sum()
    };

    // Bracket the level: λ high ⇒ small allocations, λ low ⇒ saturated.
    // A warm hint centers the bracket on the previous solve's level; the
    // expansion loops below recover if the level moved outside it.
    let (mut lo, mut hi) = match hint {
        Some(h) if h.is_finite() && h > 0.0 => ((h / 4.0).max(1e-300), (h * 4.0).min(1e300)),
        _ => (1e-12, 1.0),
    };
    while total_at(hi) > budget {
        hi *= 4.0;
        if hi >= 1e300 {
            return Err(SolverError::BracketFailed { bound: "above" });
        }
    }
    while total_at(lo) < budget {
        lo /= 4.0;
        if lo <= 1e-300 {
            return Err(SolverError::BracketFailed { bound: "below" });
        }
    }
    let level = bisect(|l| total_at(l) - budget, lo, hi, 0.0)
        .expect("total_at is monotone decreasing in the level");

    let x: Vec<f64> = (0..items)
        .map(|i| {
            if demand.rate(i) > 0.0 {
                invert_phi(utility, mu, phi_floor, phi_cap, demand.rate(i), level, s)
            } else {
                0.0
            }
        })
        .collect();
    if let Some(start) = wall_start {
        let residual = (x.iter().sum::<f64>() - budget).abs() / budget;
        let iterations = probes.get();
        rec.solver_step("relaxed", iterations, 0, residual);
        rec.solver_done(
            "relaxed",
            iterations,
            iterations * demanded.len() as u64,
            start.elapsed().as_secs_f64(),
        );
    }
    Ok(RelaxedAllocation { x, level })
}

/// Projected-gradient ascent on the relaxed problem — the "gradient
/// descent algorithm" of Theorem 2. Slower than water-filling and kept as
/// an independent implementation for cross-validation.
///
/// Maximizes `Σ d_i G_i(x_i)` over the capped simplex
/// `{0 ≤ x_i ≤ |S|, Σ x_i = ρ|S|}` with `∇_i U = d_i·φ(x_i)`.
pub fn relaxed_optimum_gradient(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
    iterations: usize,
) -> RelaxedAllocation {
    let items = demand.items();
    let s = system.servers() as f64;
    let mu = system.contact_rate;
    let budget = (system.total_slots() as f64).min(s * items as f64);

    // Feasible start: uniform over demanded items.
    let demanded: Vec<usize> = (0..items).filter(|&i| demand.rate(i) > 0.0).collect();
    let mut x = vec![0.0; items];
    for &i in &demanded {
        x[i] = (budget / demanded.len() as f64).min(s);
    }

    for iter in 0..iterations {
        let grad: Vec<f64> = (0..items)
            .map(|i| {
                if demand.rate(i) > 0.0 {
                    demand.rate(i) * utility.phi(x[i].max(X_FLOOR), mu)
                } else {
                    0.0
                }
            })
            .collect();
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt().max(1e-300);
        // Diminishing, normalized steps: η_t = c/√(t+1) with c ~ budget.
        let step = 0.25 * budget / (items as f64).sqrt() / ((iter + 1) as f64).sqrt();
        for i in 0..items {
            x[i] += step * grad[i] / gnorm;
        }
        project_capped_simplex(&mut x, &demanded, budget, s);
    }

    let level = demanded
        .iter()
        .filter(|&&i| x[i] > 1e-6 && x[i] < s - 1e-6)
        .map(|&i| demand.rate(i) * utility.phi(x[i], mu))
        .fold(0.0f64, f64::max);
    RelaxedAllocation { x, level }
}

/// Euclidean projection of `x` (restricted to `active` coordinates) onto
/// `{0 ≤ x_i ≤ cap, Σ_active x_i = budget}` by bisection on the shift.
fn project_capped_simplex(x: &mut [f64], active: &[usize], budget: f64, cap: f64) {
    let total =
        |shift: f64| -> f64 { active.iter().map(|&i| (x[i] - shift).clamp(0.0, cap)).sum() };
    // Bracket the shift.
    let max_x = active.iter().map(|&i| x[i]).fold(0.0f64, f64::max);
    let (mut lo, mut hi) = (-cap - 1.0, max_x + 1.0);
    debug_assert!(total(lo) >= budget - 1e-9 || active.len() as f64 * cap <= budget);
    if active.len() as f64 * cap <= budget {
        for &i in active {
            x[i] = cap;
        }
        return;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if total(mid) > budget {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-13 * cap.max(1.0) {
            break;
        }
    }
    let shift = 0.5 * (lo + hi);
    for (i, xi) in x.iter_mut().enumerate() {
        if active.contains(&i) {
            *xi = (*xi - shift).clamp(0.0, cap);
        } else {
            *xi = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Popularity;
    use crate::utility::{Exponential, NegLog, Power, Step};
    use crate::welfare::social_welfare_homogeneous;

    fn fit_exponent(d: &[f64], x: &[f64]) -> f64 {
        // Least-squares slope of ln x against ln d over interior points.
        let pts: Vec<(f64, f64)> = d
            .iter()
            .zip(x.iter())
            .filter(|&(&di, &xi)| di > 0.0 && xi > 1e-6)
            .map(|(&di, &xi)| (di.ln(), xi.ln()))
            .collect();
        let n = pts.len() as f64;
        let (sx, sy): (f64, f64) = pts
            .iter()
            .fold((0.0, 0.0), |(a, b), &(u, v)| (a + u, b + v));
        let (sxx, sxy): (f64, f64) = pts
            .iter()
            .fold((0.0, 0.0), |(a, b), &(u, v)| (a + u * u, b + u * v));
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }

    #[test]
    fn budget_is_exhausted() {
        let system = SystemModel::dedicated(100, 50, 5, 0.05);
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        for utility in [
            Box::new(Step::new(1.0)) as Box<dyn DelayUtility>,
            Box::new(Exponential::new(0.5)),
            Box::new(Power::new(0.5)),
        ] {
            let r = relaxed_optimum(&system, &demand, utility.as_ref());
            assert!(
                (r.total() - 250.0).abs() < 1e-6,
                "{}: total {}",
                utility.kind(),
                r.total()
            );
            for &xi in &r.x {
                assert!((0.0..=50.0 + 1e-9).contains(&xi));
            }
        }
    }

    #[test]
    fn equilibrium_condition_holds() {
        let system = SystemModel::dedicated(100, 50, 5, 0.05);
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        for utility in [
            Box::new(Step::new(1.0)) as Box<dyn DelayUtility>,
            Box::new(Exponential::new(0.5)),
            Box::new(Power::new(-1.0)),
            Box::new(Power::new(1.5)),
            Box::new(NegLog::new()),
        ] {
            let r = relaxed_optimum(&system, &demand, utility.as_ref());
            let residual = r.equilibrium_residual(&system, &demand, utility.as_ref());
            assert!(
                residual < 1e-6,
                "{}: equilibrium residual {residual}",
                utility.kind()
            );
        }
    }

    #[test]
    fn power_family_closed_form_exponent() {
        // Fig. 2: x̃_i ∝ d_i^{1/(2−α)}. ρ = 1 keeps even the α = 1.5 head
        // (target ≈ 124 replicas) inside the |S| = 200 cap so no item
        // saturates and the log-log slope is clean.
        let system = SystemModel::dedicated(100, 200, 1, 0.05);
        let demand = Popularity::pareto(30, 1.0).demand_rates(1.0);
        for alpha in [-1.0, 0.0, 0.5, 1.5] {
            let utility = Power::new(alpha);
            let r = relaxed_optimum(&system, &demand, &utility);
            // Skip saturated items (none expected with 200 servers).
            let slope = fit_exponent(demand.rates(), &r.x);
            let expect = 1.0 / (2.0 - alpha);
            assert!(
                (slope - expect).abs() < 0.02,
                "α={alpha}: slope {slope} vs {expect}"
            );
        }
    }

    #[test]
    fn neglog_gives_proportional_allocation() {
        // ρ = 1: the head item's proportional target (≈ 56) stays below
        // the |S| = 200 saturation cap.
        let system = SystemModel::dedicated(100, 200, 1, 0.05);
        let demand = Popularity::pareto(20, 1.0).demand_rates(1.0);
        let r = relaxed_optimum(&system, &demand, &NegLog::new());
        let total = r.total();
        for i in 0..20 {
            let share = r.x[i] / total;
            let expect = demand.rate(i) / demand.total();
            assert!((share - expect).abs() < 1e-6, "item {i}");
        }
    }

    #[test]
    fn step_allows_zero_allocations_for_unpopular_items() {
        // Step utility has finite φ(0⁺) = μτ: sufficiently unpopular items
        // can end with x̃ = 0 when the deadline is tight.
        let system = SystemModel::dedicated(100, 10, 1, 0.05);
        let mut rates = vec![1.0; 3];
        rates.extend(vec![1e-6; 47]);
        let demand = DemandRates::new(rates);
        let r = relaxed_optimum(&system, &demand, &Step::new(0.1));
        assert!(r.x[49] < 1e-6, "tail item got {}", r.x[49]);
        assert!((r.total() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn saturation_when_budget_exceeds_catalog() {
        let system = SystemModel::pure_p2p(4, 10, 0.05);
        let demand = Popularity::uniform(3).demand_rates(1.0);
        let r = relaxed_optimum(&system, &demand, &Step::new(1.0));
        for i in 0..3 {
            assert!((r.x[i] - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gradient_solver_agrees_with_water_filling() {
        let system = SystemModel::dedicated(100, 50, 5, 0.05);
        let demand = Popularity::pareto(10, 1.0).demand_rates(1.0);
        for utility in [
            Box::new(Exponential::new(0.5)) as Box<dyn DelayUtility>,
            Box::new(Power::new(0.0)),
        ] {
            let wf = relaxed_optimum(&system, &demand, utility.as_ref());
            let gd = relaxed_optimum_gradient(&system, &demand, utility.as_ref(), 4000);
            let w_wf = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &wf.x);
            let w_gd = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &gd.x);
            // Welfare agreement is the meaningful criterion (allocations
            // may differ slightly near the boundary).
            assert!(
                (w_wf - w_gd).abs() < 1e-3 * w_wf.abs().max(1.0),
                "{}: wf {w_wf} vs gd {w_gd}",
                utility.kind()
            );
            assert!(
                w_wf >= w_gd - 1e-3 * w_wf.abs().max(1.0),
                "water-filling must win"
            );
        }
    }

    #[test]
    fn relaxed_upper_bounds_integer_greedy() {
        use crate::solver::greedy::greedy_homogeneous;
        let system = SystemModel::dedicated(100, 50, 5, 0.05);
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        for utility in [
            Box::new(Step::new(1.0)) as Box<dyn DelayUtility>,
            Box::new(Exponential::new(0.5)),
            Box::new(Power::new(0.5)),
        ] {
            let relaxed = relaxed_optimum(&system, &demand, utility.as_ref());
            let integer = greedy_homogeneous(&system, &demand, utility.as_ref());
            let w_rel = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &relaxed.x);
            let w_int =
                social_welfare_homogeneous(&system, &demand, utility.as_ref(), &integer.as_f64());
            assert!(
                w_rel >= w_int - 1e-9,
                "{}: relaxed {w_rel} < integer {w_int}",
                utility.kind()
            );
            // And they should be close for a 250-slot budget.
            assert!(
                (w_rel - w_int).abs() < 0.02 * w_rel.abs().max(1e-9),
                "{}: gap too large ({w_rel} vs {w_int})",
                utility.kind()
            );
        }
    }

    #[test]
    fn observed_relaxed_matches_and_converges() {
        use impatience_obs::{Event, MemorySink, Recorder};
        let system = SystemModel::dedicated(100, 50, 5, 0.05);
        let demand = Popularity::pareto(20, 1.0).demand_rates(1.0);
        let utility = Exponential::new(0.5);
        let plain = relaxed_optimum(&system, &demand, &utility);
        let mut rec = Recorder::new(MemorySink::new());
        let observed = relaxed_optimum_observed(&system, &demand, &utility, &mut rec);
        assert_eq!(
            plain, observed,
            "instrumentation must not change the allocation"
        );

        match &rec.sink().events[..] {
            [Event::SolverStep {
                solver: "relaxed",
                value: residual,
                ..
            }, Event::SolverDone {
                solver: "relaxed",
                iterations,
                evaluations,
                ..
            }] => {
                assert!(*residual < 1e-9, "budget residual {residual} too large");
                assert!(*iterations > 0);
                assert_eq!(*evaluations, iterations * 20);
            }
            other => panic!("expected [SolverStep, SolverDone], got {other:?}"),
        }
    }

    #[test]
    fn projection_respects_caps_and_budget() {
        let mut x = vec![10.0, 0.0, 3.0];
        let active = vec![0usize, 1, 2];
        project_capped_simplex(&mut x, &active, 6.0, 4.0);
        let total: f64 = x.iter().sum();
        assert!((total - 6.0).abs() < 1e-9, "total {total}");
        for &xi in &x {
            assert!((0.0..=4.0 + 1e-9).contains(&xi));
        }
    }
}
