//! Greedy optimal allocation under homogeneous contacts (Theorem 2).
//!
//! `U(x)` is concave in the replica counts, so adding one replica at a time
//! to the item with the largest marginal welfare yields the exact integer
//! optimum in `O(|I| + ρ|S| log |I|)` heap operations. "As the popular
//! items fill the cache with copies, the relative improvement … diminishes,
//! and the greedy rule will choose to create copies for other less popular
//! items" (§4.1).

use std::cell::Cell;
use std::collections::BinaryHeap;
use std::time::Instant;

use impatience_obs::{Recorder, Sink};

use super::{HeapKey, SolverError};
use crate::allocation::ReplicaCounts;
use crate::demand::DemandRates;
use crate::types::SystemModel;
use crate::utility::DelayUtility;
use crate::welfare::{expected_gain_continuous, expected_gain_pure_p2p};

/// Lazily memoized table of the per-unit-demand expected gain `G(x)`.
///
/// The gain of holding `x` replicas depends only on the system shape and
/// the utility — not on which item holds them — yet each evaluation runs
/// adaptive quadrature. The greedy solver used to recompute the marginal
/// `G(x+1) − G(x)` once per *(item, count)*; this table computes each
/// `G(x)` once per *count* (at most `|S| + 1` quadratures for the whole
/// solve, down from O(|I|·ρ|S|)) and replays the cached value thereafter.
/// Quadrature is deterministic, so the memoized marginals are
/// bit-identical to the recomputed ones.
///
/// The memo is decoupled from any one solve so [`crate::solver::incremental`]
/// can carry it across delta re-solves: demand changes leave `G` untouched
/// (it never depends on `d_i`), so the cached values survive entirely.
pub(crate) struct GainMemo {
    /// `cache[x]` is `Some(G(x))` once evaluated; indices `0..=|S|`.
    cache: Vec<Cell<Option<f64>>>,
    /// Quadrature evaluations actually performed (cache misses),
    /// cumulative across `reset` calls.
    evaluations: Cell<u64>,
}

impl GainMemo {
    /// An empty memo for a system with `servers` cache columns.
    pub(crate) fn new(servers: usize) -> Self {
        GainMemo {
            cache: vec![Cell::new(None); servers + 1],
            evaluations: Cell::new(0),
        }
    }

    /// Forget every cached value (the evaluation counter keeps
    /// accumulating). Required when the contact rate μ changes: `G`
    /// depends on the system shape, not just the utility.
    pub(crate) fn reset(&mut self) {
        for slot in &self.cache {
            slot.set(None);
        }
    }

    /// Quadrature evaluations performed so far (cache misses).
    pub(crate) fn evaluations(&self) -> u64 {
        self.evaluations.get()
    }

    /// `G(x)`, evaluated by quadrature on first use and cached.
    pub(crate) fn gain(&self, system: &SystemModel, utility: &dyn DelayUtility, x: u32) -> f64 {
        let slot = &self.cache[x as usize];
        if let Some(cached) = slot.get() {
            return cached;
        }
        self.evaluations.set(self.evaluations.get() + 1);
        let value = if system.population.is_pure_p2p() {
            expected_gain_pure_p2p(utility, x as f64, system.clients(), system.contact_rate)
        } else {
            expected_gain_continuous(utility, x as f64, system.contact_rate)
        };
        slot.set(Some(value));
        value
    }

    /// Marginal welfare of going from `x` to `x+1` replicas, per unit
    /// demand.
    pub(crate) fn marginal(&self, system: &SystemModel, utility: &dyn DelayUtility, x: u32) -> f64 {
        let next = self.gain(system, utility, x + 1);
        let curr = self.gain(system, utility, x);
        if curr == f64::NEG_INFINITY {
            // First replica of a cost-type utility: infinitely valuable.
            return f64::INFINITY;
        }
        next - curr
    }
}

/// Exact optimal integer allocation under homogeneous contacts
/// (Theorem 2). Fills the entire budget `ρ·|S|` (marginals are always
/// ≥ 0 since `h` is non-increasing), capping each item at `|S|` replicas.
///
/// # Panics
/// Panics if the utility requires a dedicated population but `system` is
/// pure P2P, or if the demand catalog is empty.
pub fn greedy_homogeneous(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
) -> ReplicaCounts {
    greedy_homogeneous_observed(system, demand, utility, &mut Recorder::disabled())
}

/// [`greedy_homogeneous`] returning a typed [`SolverError`] instead of
/// panicking on invalid inputs.
pub fn try_greedy_homogeneous(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
) -> Result<ReplicaCounts, SolverError> {
    try_greedy_homogeneous_observed(system, demand, utility, &mut Recorder::disabled())
}

/// [`greedy_homogeneous`] with instrumentation: each placement emits a
/// `solver_step` carrying the marginal gain taken (the full marginal-gain
/// trajectory, non-increasing by concavity), and a final `solver_done`
/// reports placements, quadrature evaluations (cache *misses* of the
/// memoized gain table — at most `|S| + 1` per solve), and wall time.
pub fn greedy_homogeneous_observed<S: Sink>(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
    rec: &mut Recorder<S>,
) -> ReplicaCounts {
    match try_greedy_homogeneous_observed(system, demand, utility, rec) {
        Ok(counts) => counts,
        Err(e) => panic!("{e}"),
    }
}

/// [`greedy_homogeneous_observed`] returning a typed [`SolverError`]
/// instead of panicking on invalid inputs.
pub fn try_greedy_homogeneous_observed<S: Sink>(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
    rec: &mut Recorder<S>,
) -> Result<ReplicaCounts, SolverError> {
    let _span = impatience_obs::span!("solve.greedy");
    if utility.requires_dedicated() && system.population.is_pure_p2p() {
        return Err(SolverError::RequiresDedicated {
            utility: utility.kind().to_string(),
        });
    }
    let items = demand.items();
    let servers = system.servers();
    let mut counts = ReplicaCounts::zero(items, servers);
    let budget = system.total_slots();
    if budget == 0 || servers == 0 {
        return Ok(counts);
    }

    // Key: d_i·ΔG_i(x). Infinite marginals (first replica under a
    // cost-type utility) all sort to the top and are ordered among
    // themselves by demand, which is the limit order of d_i·ΔG as the
    // marginals diverge.
    let gains = GainMemo::new(servers);
    let key_for = |x: u32, i: usize| {
        let m = gains.marginal(system, utility, x);
        if m.is_infinite() {
            HeapKey::new(f64::INFINITY, demand.rate(i))
        } else {
            HeapKey::new(m * demand.rate(i), demand.rate(i))
        }
    };

    let mut heap: BinaryHeap<(HeapKey, usize)> = (0..items)
        .filter(|&i| demand.rate(i) > 0.0)
        .map(|i| (key_for(0, i), i))
        .collect();

    let wall_start = rec.is_active().then(Instant::now);
    let mut placed: u64 = 0;
    for _ in 0..budget {
        let Some((key, i)) = heap.pop() else { break };
        counts.add(i);
        rec.solver_step("greedy", placed, i as u32, key.primary);
        placed += 1;
        let x = counts.count(i);
        if (x as usize) < servers {
            heap.push((key_for(x, i), i));
        }
    }
    if let Some(start) = wall_start {
        rec.solver_done(
            "greedy",
            placed,
            gains.evaluations(),
            start.elapsed().as_secs_f64(),
        );
    }
    Ok(counts)
}

/// Brute-force optimum by exhaustive enumeration — exponential, for tiny
/// instances only; used to validate the greedy in tests and property
/// tests.
pub fn brute_force_homogeneous(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
) -> (ReplicaCounts, f64) {
    use crate::welfare::social_welfare_homogeneous;
    let items = demand.items();
    let servers = system.servers() as u32;
    let budget = system.total_slots() as u64;
    assert!(
        (servers as u64 + 1).pow(items as u32) <= 2_000_000,
        "instance too large for brute force"
    );

    let mut best: Option<(Vec<u32>, f64)> = None;
    let mut current = vec![0u32; items];
    loop {
        let total: u64 = current.iter().map(|&c| c as u64).sum();
        if total <= budget {
            let xs: Vec<f64> = current.iter().map(|&c| c as f64).collect();
            let w = social_welfare_homogeneous(system, demand, utility, &xs);
            if best.as_ref().is_none_or(|(_, bw)| w > *bw) {
                best = Some((current.clone(), w));
            }
        }
        // Odometer increment over {0..servers}^items.
        let mut pos = 0;
        loop {
            if pos == items {
                let (counts, w) = best.expect("at least the zero allocation is feasible");
                return (ReplicaCounts::new(counts, system.servers()), w);
            }
            if current[pos] < servers {
                current[pos] += 1;
                break;
            }
            current[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Popularity;
    use crate::utility::{Exponential, NegLog, Power, Step};
    use crate::welfare::social_welfare_homogeneous;

    #[test]
    fn fills_budget_and_respects_caps() {
        let system = SystemModel::pure_p2p(50, 5, 0.05);
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        let utility = Step::new(1.0);
        let opt = greedy_homogeneous(&system, &demand, &utility);
        assert_eq!(opt.total(), 250);
        for i in 0..50 {
            assert!(opt.count(i) <= 50);
        }
    }

    #[test]
    fn popular_items_get_more_replicas() {
        let system = SystemModel::pure_p2p(50, 5, 0.05);
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        for utility in [
            Box::new(Step::new(1.0)) as Box<dyn DelayUtility>,
            Box::new(Exponential::new(0.5)),
            Box::new(Power::new(0.0)),
        ] {
            let opt = greedy_homogeneous(&system, &demand, utility.as_ref());
            for i in 1..50 {
                assert!(
                    opt.count(i - 1) >= opt.count(i),
                    "{}: x[{}]={} < x[{}]={}",
                    utility.kind(),
                    i - 1,
                    opt.count(i - 1),
                    i,
                    opt.count(i)
                );
            }
        }
    }

    #[test]
    fn cost_utility_covers_every_item_first() {
        // With h(∞) = −∞ the first replica of each item is infinitely
        // valuable: no item may be left unreplicated when budget permits.
        let system = SystemModel::pure_p2p(50, 5, 0.05);
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        let opt = greedy_homogeneous(&system, &demand, &Power::new(0.0));
        assert_eq!(opt.missing_items(), 0);
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let system = SystemModel::dedicated(6, 3, 2, 0.2);
        let demand = Popularity::pareto(4, 1.0).demand_rates(1.0);
        for utility in [
            Box::new(Step::new(1.5)) as Box<dyn DelayUtility>,
            Box::new(Exponential::new(0.8)),
            Box::new(Power::new(0.5)),
            Box::new(Power::new(1.5)),
        ] {
            let greedy = greedy_homogeneous(&system, &demand, utility.as_ref());
            let (_, w_best) = brute_force_homogeneous(&system, &demand, utility.as_ref());
            let w_greedy =
                social_welfare_homogeneous(&system, &demand, utility.as_ref(), &greedy.as_f64());
            assert!(
                w_greedy >= w_best - 1e-9,
                "{}: greedy {w_greedy} < brute {w_best}",
                utility.kind()
            );
        }
    }

    #[test]
    fn dominant_regime_at_extreme_alpha() {
        // α → 2: optimal allocation skews hard toward the most demanded
        // items (Fig. 2 right edge).
        let system = SystemModel::dedicated(50, 50, 5, 0.05);
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        let opt = greedy_homogeneous(&system, &demand, &Power::new(1.9));
        assert_eq!(opt.count(0), 50, "most popular item should saturate");
    }

    #[test]
    fn uniform_regime_at_extreme_negative_alpha() {
        // α → −∞: optimal allocation approaches uniform (Fig. 2 left
        // edge). At α = −20 the allocation exponent is 1/22, so counts
        // over a Pareto(1) catalog spread by at most a couple of replicas.
        let system = SystemModel::pure_p2p(50, 5, 0.05);
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        let opt = greedy_homogeneous(&system, &demand, &Power::new(-20.0));
        let max = (0..50).map(|i| opt.count(i)).max().unwrap();
        let min = (0..50).map(|i| opt.count(i)).min().unwrap();
        assert!(max - min <= 2, "spread {max}−{min} too wide for α→−∞");
    }

    #[test]
    fn neglog_allocation_is_near_proportional() {
        // α = 1 ⇒ x_i ∝ d_i (Fig. 2 center). ρ = 1 keeps the most popular
        // item's target (≈ 96 of 200 replicas) inside the |S| = 200 cap.
        let system = SystemModel::dedicated(50, 200, 1, 0.05);
        let demand = Popularity::pareto(4, 1.0).demand_rates(1.0);
        let opt = greedy_homogeneous(&system, &demand, &NegLog::new());
        let total = opt.total() as f64;
        for i in 0..4 {
            let share = opt.count(i) as f64 / total;
            let expect = demand.rate(i) / demand.total();
            assert!(
                (share - expect).abs() < 0.02,
                "item {i}: share {share} vs demand {expect}"
            );
        }
    }

    #[test]
    fn zero_budget_returns_zero() {
        let system = SystemModel::pure_p2p(10, 0, 0.05);
        let demand = Popularity::uniform(5).demand_rates(1.0);
        let opt = greedy_homogeneous(&system, &demand, &Step::new(1.0));
        assert_eq!(opt.total(), 0);
    }

    #[test]
    fn budget_larger_than_catalog_capacity() {
        // ρ|S| > |I|·|S|: every item saturates at |S|.
        let system = SystemModel::pure_p2p(4, 10, 0.05);
        let demand = Popularity::uniform(3).demand_rates(1.0);
        let opt = greedy_homogeneous(&system, &demand, &Step::new(1.0));
        for i in 0..3 {
            assert_eq!(opt.count(i), 4);
        }
    }

    #[test]
    #[should_panic(expected = "requires a dedicated-node population")]
    fn rejects_time_critical_in_pure_p2p() {
        let system = SystemModel::pure_p2p(10, 2, 0.05);
        let demand = Popularity::uniform(5).demand_rates(1.0);
        let _ = greedy_homogeneous(&system, &demand, &Power::new(1.5));
    }

    #[test]
    fn observed_greedy_matches_and_gains_decrease() {
        use impatience_obs::{Event, MemorySink, Recorder};
        let system = SystemModel::pure_p2p(20, 3, 0.05);
        let demand = Popularity::pareto(10, 1.0).demand_rates(1.0);
        let utility = Step::new(1.0);
        let plain = greedy_homogeneous(&system, &demand, &utility);
        let mut rec = Recorder::new(MemorySink::new());
        let observed = greedy_homogeneous_observed(&system, &demand, &utility, &mut rec);
        assert_eq!(
            plain, observed,
            "instrumentation must not change the allocation"
        );

        let gains: Vec<f64> = rec
            .sink()
            .events
            .iter()
            .filter_map(|e| match e {
                Event::SolverStep {
                    solver: "greedy",
                    value,
                    ..
                } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(
            gains.len() as u64,
            observed.total(),
            "one step per placement"
        );
        for w in gains.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-12,
                "marginal gains must not increase: {w:?}"
            );
        }
        match rec.sink().events.last() {
            Some(Event::SolverDone {
                solver: "greedy",
                iterations,
                evaluations,
                ..
            }) => {
                assert_eq!(*iterations, observed.total());
                // The memoized ψ-table caps quadrature work at one
                // evaluation per replica level, independent of |I| and
                // the number of heap probes.
                assert!(
                    *evaluations <= system.servers() as u64 + 1,
                    "expected at most |S|+1 quadrature evaluations, got {evaluations}"
                );
                assert!(
                    *evaluations < *iterations,
                    "memoization should evaluate fewer gains ({evaluations}) than placements ({iterations})"
                );
            }
            other => panic!("expected SolverDone, got {other:?}"),
        }
    }

    #[test]
    fn gain_table_matches_uncached_quadrature() {
        // The memoized table must replay bit-identical values: quadrature
        // is deterministic, so a cache hit and a recomputation agree
        // exactly, and the marginal difference is taken on the same pair
        // of G values either way.
        let utility = Step::new(1.0);
        for system in [
            SystemModel::pure_p2p(8, 3, 0.05),
            SystemModel::dedicated(40, 8, 3, 0.05),
        ] {
            let table = GainMemo::new(system.servers());
            for x in 0..system.servers() as u32 {
                let uncached = if system.population.is_pure_p2p() {
                    let at = |v: f64| {
                        expected_gain_pure_p2p(&utility, v, system.clients(), system.contact_rate)
                    };
                    at(x as f64 + 1.0) - at(x as f64)
                } else {
                    let at = |v: f64| expected_gain_continuous(&utility, v, system.contact_rate);
                    at(x as f64 + 1.0) - at(x as f64)
                };
                assert_eq!(
                    table.marginal(&system, &utility, x).to_bits(),
                    uncached.to_bits(),
                    "memoized marginal at x={x} must be bit-identical"
                );
                // Second call hits the cache and must not drift.
                assert_eq!(
                    table.marginal(&system, &utility, x).to_bits(),
                    uncached.to_bits()
                );
            }
            // |S|+1 distinct gain levels were touched, once each.
            assert_eq!(table.evaluations(), system.servers() as u64 + 1);
        }
    }

    #[test]
    fn ignores_zero_demand_items() {
        let system = SystemModel::pure_p2p(5, 2, 0.05);
        let demand = DemandRates::new(vec![1.0, 0.0, 2.0]);
        let opt = greedy_homogeneous(&system, &demand, &Step::new(1.0));
        assert_eq!(opt.count(1), 0);
        assert_eq!(opt.total(), 10);
    }
}
