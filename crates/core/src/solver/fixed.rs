//! The fixed allocation heuristics of §6.1 — the perfect-control-channel
//! competitors QCR is validated against:
//!
//! * **UNI** — memory evenly allocated among all items;
//! * **SQRT** — allocation proportional to `√d_i` (Cohen & Shenker's
//!   square-root allocation, optimal for random search message cost);
//! * **PROP** — allocation proportional to `d_i` (the equilibrium of
//!   passive path replication);
//! * **DOM** — all nodes carry the `ρ` most popular items.
//!
//! All of them produce integer replica counts that exactly exhaust
//! `min(ρ|S|, |I|·|S|)` slots, with each item capped at `|S|` replicas,
//! via capped largest-remainder apportionment.

use crate::allocation::ReplicaCounts;
use crate::demand::DemandRates;

/// Apportion `budget` integer slots across items proportionally to
/// `weights`, capping each item at `cap` and redistributing the excess.
///
/// Returns counts summing to `min(budget, cap·|weights⁺|)` where
/// `|weights⁺|` is the number of strictly positive weights (zero-weight
/// items receive nothing).
pub fn apportion(weights: &[f64], budget: usize, cap: usize) -> Vec<u32> {
    assert!(!weights.is_empty(), "apportion needs at least one item");
    for &w in weights {
        assert!(w >= 0.0 && w.is_finite(), "weights must be finite and ≥ 0");
    }
    let n = weights.len();
    let mut counts = vec![0u32; n];
    let positive: Vec<usize> = (0..n).filter(|&i| weights[i] > 0.0).collect();
    if positive.is_empty() || cap == 0 {
        return counts;
    }
    let mut budget = budget.min(cap * positive.len());

    // Iterative proportional fill with caps: items that would exceed the
    // cap are frozen at the cap and the rest re-apportioned.
    let mut active: Vec<usize> = positive.clone();
    loop {
        let total_w: f64 = active.iter().map(|&i| weights[i]).sum();
        let mut capped = Vec::new();
        for &i in &active {
            let ideal = budget as f64 * weights[i] / total_w;
            if ideal >= cap as f64 {
                capped.push(i);
            }
        }
        if capped.is_empty() {
            break;
        }
        for &i in &capped {
            counts[i] = cap as u32;
            budget -= cap;
        }
        active.retain(|i| !capped.contains(i));
        if active.is_empty() || budget == 0 {
            return counts;
        }
    }

    // Largest-remainder rounding over the surviving (uncapped) items.
    let total_w: f64 = active.iter().map(|&i| weights[i]).sum();
    let mut assigned = 0usize;
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(active.len());
    for &i in &active {
        let ideal = budget as f64 * weights[i] / total_w;
        let floor = ideal.floor() as u32;
        counts[i] = floor.min(cap as u32);
        assigned += counts[i] as usize;
        remainders.push((ideal - floor as f64, i));
    }
    // Distribute the leftovers to the largest remainders (ties by index
    // for determinism), skipping items at the cap.
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let mut k = 0;
    while assigned < budget {
        let (_, i) = remainders[k % remainders.len()];
        if (counts[i] as usize) < cap {
            counts[i] += 1;
            assigned += 1;
        }
        k += 1;
        assert!(
            k < remainders.len() * (cap + 2),
            "apportion failed to place the full budget"
        );
    }
    counts
}

/// UNI: memory evenly allocated among all items (§6.1).
pub fn uniform(items: usize, servers: usize, rho: usize) -> ReplicaCounts {
    let weights = vec![1.0; items];
    ReplicaCounts::new(apportion(&weights, rho * servers, servers), servers)
}

/// PROP: allocation proportional to demand — the steady state of passive
/// one-replica-per-fulfillment replication.
pub fn proportional(demand: &DemandRates, servers: usize, rho: usize) -> ReplicaCounts {
    ReplicaCounts::new(apportion(demand.rates(), rho * servers, servers), servers)
}

/// SQRT: allocation proportional to the square root of demand.
pub fn sqrt_proportional(demand: &DemandRates, servers: usize, rho: usize) -> ReplicaCounts {
    let weights: Vec<f64> = demand.rates().iter().map(|&d| d.sqrt()).collect();
    ReplicaCounts::new(apportion(&weights, rho * servers, servers), servers)
}

/// DOM: every node carries the `ρ` most popular items (ties broken by
/// item index).
pub fn dominant(demand: &DemandRates, servers: usize, rho: usize) -> ReplicaCounts {
    let mut order: Vec<usize> = (0..demand.items()).collect();
    order.sort_by(|&a, &b| {
        demand
            .rate(b)
            .partial_cmp(&demand.rate(a))
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut counts = vec![0u32; demand.items()];
    for &i in order.iter().take(rho.min(demand.items())) {
        counts[i] = servers as u32;
    }
    ReplicaCounts::new(counts, servers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Popularity;

    #[test]
    fn uniform_splits_evenly() {
        let x = uniform(50, 50, 5);
        assert_eq!(x.total(), 250);
        for i in 0..50 {
            assert_eq!(x.count(i), 5);
        }
    }

    #[test]
    fn uniform_with_remainder() {
        let x = uniform(7, 5, 2); // budget 10 over 7 items
        assert_eq!(x.total(), 10);
        let (max, min) = (0..7).fold((0, u32::MAX), |(mx, mn), i| {
            (mx.max(x.count(i)), mn.min(x.count(i)))
        });
        assert!(max - min <= 1);
    }

    #[test]
    fn proportional_tracks_demand() {
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        let x = proportional(&demand, 50, 5);
        assert_eq!(x.total(), 250);
        // d_0/d_1 = 2 ⇒ roughly twice the replicas.
        let ratio = x.count(0) as f64 / x.count(1) as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn sqrt_is_flatter_than_prop() {
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        let prop = proportional(&demand, 50, 5);
        let sqrt = sqrt_proportional(&demand, 50, 5);
        assert_eq!(sqrt.total(), 250);
        assert!(
            sqrt.count(0) < prop.count(0),
            "sqrt should give the head less"
        );
        assert!(
            sqrt.count(49) >= prop.count(49),
            "sqrt should give the tail at least as much"
        );
    }

    #[test]
    fn dominant_saturates_top_rho() {
        let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
        let x = dominant(&demand, 50, 5);
        for i in 0..5 {
            assert_eq!(x.count(i), 50);
        }
        for i in 5..50 {
            assert_eq!(x.count(i), 0);
        }
        assert_eq!(x.total(), 250);
    }

    #[test]
    fn dominant_with_rho_beyond_catalog() {
        let demand = Popularity::uniform(3).demand_rates(1.0);
        let x = dominant(&demand, 4, 5);
        assert_eq!(x.total(), 12); // all 3 items everywhere
    }

    #[test]
    fn apportion_caps_and_redistributes() {
        // One overwhelming item capped at 4, remainder spread to others.
        let counts = apportion(&[100.0, 1.0, 1.0], 10, 4);
        assert_eq!(counts[0], 4);
        assert_eq!(counts.iter().sum::<u32>(), 10);
        assert!(counts[1] <= 4 && counts[2] <= 4);
    }

    #[test]
    fn apportion_zero_weights_get_nothing() {
        let counts = apportion(&[1.0, 0.0, 1.0], 6, 5);
        assert_eq!(counts[1], 0);
        assert_eq!(counts.iter().sum::<u32>(), 6);
    }

    #[test]
    fn apportion_budget_exceeding_capacity() {
        let counts = apportion(&[1.0, 2.0], 100, 3);
        assert_eq!(counts, vec![3, 3]);
    }

    #[test]
    fn apportion_exact_total_with_messy_weights() {
        let weights = [0.3, 0.17, 0.253, 1.9, 0.02];
        for budget in [1usize, 7, 23, 100] {
            let counts = apportion(&weights, budget, 30);
            let total: u32 = counts.iter().sum();
            assert_eq!(total as usize, budget.min(30 * 5), "budget {budget}");
        }
    }

    #[test]
    fn apportion_deterministic_tie_break() {
        let a = apportion(&[1.0, 1.0, 1.0], 2, 5);
        let b = apportion(&[1.0, 1.0, 1.0], 2, 5);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<u32>(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn apportion_rejects_empty() {
        let _ = apportion(&[], 5, 5);
    }
}
