//! Lazy submodular greedy for heterogeneous contacts (Theorem 1).
//!
//! `U` is submodular over placements `(item, server)`, so greedy placement
//! one replica at a time achieves a `(1 − 1/e)` approximation of the
//! optimum under the per-server capacity constraint (Nemhauser–Wolsey–
//! Fisher; the paper uses exactly this greedy to compute OPT on the
//! Infocom and Cabspotting traces, §6.1).
//!
//! The implementation uses CELF-style *lazy evaluation*: stale marginal
//! gains stay in the heap and are recomputed only when popped, which is
//! valid because submodularity guarantees marginals never increase.

use std::cell::Cell;
use std::collections::BinaryHeap;
use std::time::Instant;

use impatience_obs::{Recorder, Sink};

use super::HeapKey;
use crate::allocation::AllocationMatrix;
use crate::demand::{DemandProfile, DemandRates};
use crate::utility::DelayUtility;
use crate::welfare::{item_welfare_heterogeneous, HeterogeneousSystem};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Candidate {
    item: usize,
    server: usize,
    /// Round in which the key was computed (for lazy invalidation).
    round: u64,
}

/// Greedy `(1 − 1/e)`-approximate allocation for a heterogeneous system.
///
/// Runs `ρ·|S|` placement rounds; each round pops candidates until the top
/// of the heap carries a gain computed in the current round.
///
/// # Panics
/// Panics if the utility requires dedicated nodes but some client id also
/// appears as a server id (self-service would earn infinite utility).
pub fn greedy_heterogeneous(
    system: &HeterogeneousSystem,
    demand: &DemandRates,
    profile: &DemandProfile,
    utility: &dyn DelayUtility,
) -> AllocationMatrix {
    greedy_heterogeneous_observed(system, demand, profile, utility, &mut Recorder::disabled())
}

/// [`greedy_heterogeneous`] with instrumentation: each fresh placement
/// emits a `solver_step` with the marginal welfare gain; `solver_done`
/// reports placements, welfare evaluations (initial scan plus lazy
/// recomputations — the CELF savings show up here), and wall time.
pub fn greedy_heterogeneous_observed<S: Sink>(
    system: &HeterogeneousSystem,
    demand: &DemandRates,
    profile: &DemandProfile,
    utility: &dyn DelayUtility,
    rec: &mut Recorder<S>,
) -> AllocationMatrix {
    let _span = impatience_obs::span!("solve.het_greedy");
    let items = demand.items();
    let servers = system.servers.len();
    assert_eq!(profile.items(), items);
    assert_eq!(profile.nodes(), system.clients.len());
    if utility.requires_dedicated() {
        let overlap = system.clients.iter().any(|c| system.servers.contains(c));
        assert!(
            !overlap,
            "{} requires dedicated nodes (clients and servers must be disjoint)",
            utility.kind()
        );
    }

    let mut alloc = AllocationMatrix::new(items, servers, system.rho);
    if servers == 0 || system.rho == 0 || items == 0 {
        return alloc;
    }

    // Current welfare per item (holders start empty).
    let mut item_value: Vec<f64> = (0..items)
        .map(|i| item_welfare_heterogeneous(system, i, &[], demand, profile, utility))
        .collect();
    let mut holders: Vec<Vec<usize>> = vec![Vec::new(); items];

    let evaluations = Cell::new(items as u64); // the initial per-item welfare scan
    let gain_of = |item: usize, server: usize, holders: &[usize], current: f64| -> f64 {
        evaluations.set(evaluations.get() + 1);
        let mut with: Vec<usize> = holders.to_vec();
        with.push(server);
        let new = item_welfare_heterogeneous(system, item, &with, demand, profile, utility);
        if current == f64::NEG_INFINITY {
            if new == f64::NEG_INFINITY {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            new - current
        }
    };

    let mut round: u64 = 0;
    let mut heap: BinaryHeap<(HeapKey, Candidate)> = BinaryHeap::new();
    #[allow(clippy::needless_range_loop)] // `item` indexes two parallel tables
    for item in 0..items {
        if demand.rate(item) == 0.0 {
            continue;
        }
        for server in 0..servers {
            let g = gain_of(item, server, &[], item_value[item]);
            let key = if g.is_infinite() {
                HeapKey::new(f64::INFINITY, demand.rate(item))
            } else {
                HeapKey::new(g, demand.rate(item))
            };
            heap.push((
                key,
                Candidate {
                    item,
                    server,
                    round,
                },
            ));
        }
    }

    let wall_start = rec.is_active().then(Instant::now);
    let budget = system.rho * servers;
    let mut placed = 0usize;
    while placed < budget {
        let Some((key, cand)) = heap.pop() else { break };
        // Skip candidates invalidated by capacity or duplication.
        if alloc.free_slots(cand.server) == 0 || alloc.holds(cand.item, cand.server) {
            continue;
        }
        if cand.round == round {
            // Fresh gain: place it.
            alloc.place(cand.item, cand.server);
            holders[cand.item].push(cand.server);
            rec.solver_step("het_greedy", placed as u64, cand.item as u32, key.primary);
            if key.primary.is_infinite() {
                item_value[cand.item] = item_welfare_heterogeneous(
                    system,
                    cand.item,
                    &holders[cand.item],
                    demand,
                    profile,
                    utility,
                );
            } else {
                item_value[cand.item] += key.primary;
            }
            placed += 1;
            round += 1;
        } else {
            // Stale: recompute and reinsert at the current round.
            let g = gain_of(
                cand.item,
                cand.server,
                &holders[cand.item],
                item_value[cand.item],
            );
            let key = if g.is_infinite() {
                HeapKey::new(f64::INFINITY, demand.rate(cand.item))
            } else {
                HeapKey::new(g, demand.rate(cand.item))
            };
            heap.push((key, Candidate { round, ..cand }));
        }
    }
    if let Some(start) = wall_start {
        rec.solver_done(
            "het_greedy",
            placed as u64,
            evaluations.get(),
            start.elapsed().as_secs_f64(),
        );
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Popularity;
    use crate::types::SystemModel;
    use crate::utility::{Exponential, Power, Step};
    use crate::welfare::{social_welfare_heterogeneous, social_welfare_homogeneous, ContactRates};

    #[test]
    fn fills_all_caches() {
        let rates = ContactRates::homogeneous(10, 0.05);
        let system = HeterogeneousSystem::pure_p2p(rates, 2);
        let demand = Popularity::pareto(8, 1.0).demand_rates(1.0);
        let profile = DemandProfile::uniform(8, 10);
        let alloc = greedy_heterogeneous(&system, &demand, &profile, &Step::new(1.0));
        for s in 0..10 {
            assert_eq!(alloc.free_slots(s), 0, "server {s} not filled");
        }
    }

    #[test]
    fn matches_homogeneous_greedy_welfare_on_constant_rates() {
        // With constant rates the heterogeneous greedy must achieve
        // (essentially) the homogeneous optimum.
        let nodes = 12;
        let mu = 0.05;
        let rho = 2;
        let rates = ContactRates::homogeneous(nodes, mu);
        let hsys = HeterogeneousSystem::pure_p2p(rates, rho);
        let demand = Popularity::pareto(10, 1.0).demand_rates(1.0);
        let profile = DemandProfile::uniform(10, nodes);
        let utility = Step::new(1.0);

        let het = greedy_heterogeneous(&hsys, &demand, &profile, &utility);
        let w_het = social_welfare_heterogeneous(&hsys, &het, &demand, &profile, &utility);

        let sys = SystemModel::pure_p2p(nodes, rho, mu);
        let hom = crate::solver::greedy::greedy_homogeneous(&sys, &demand, &utility);
        let w_hom = social_welfare_homogeneous(&sys, &demand, &utility, &hom.as_f64());

        // Heterogeneous evaluation of identical-rate systems differs from
        // Eq. (5) only in the (1−x/N) combinatorics of concrete
        // placements; the two optima must agree tightly.
        assert!(
            (w_het - w_hom).abs() < 5e-3 * w_hom.abs(),
            "het {w_het} vs hom {w_hom}"
        );
    }

    #[test]
    fn prefers_high_contact_servers() {
        // Node 0 meets everyone fast; node 3 meets no one. The single
        // replica of the only item must land on a well-connected server.
        let mut rates = ContactRates::homogeneous(4, 0.0);
        for b in 1..4 {
            rates.set_rate(0, b, 1.0);
        }
        // node 3 isolated except to 0.
        let system = HeterogeneousSystem::dedicated(rates, vec![0, 3], vec![1, 2], 1);
        let demand = DemandRates::new(vec![1.0]);
        let profile = DemandProfile::uniform(1, 2);
        let alloc = greedy_heterogeneous(&system, &demand, &profile, &Exponential::new(1.0));
        assert!(alloc.holds(0, 0), "item should be placed on the hub server");
    }

    #[test]
    fn cost_utility_covers_items_first() {
        let rates = ContactRates::homogeneous(6, 0.05);
        let system = HeterogeneousSystem::pure_p2p(rates, 2);
        let demand = Popularity::pareto(6, 1.0).demand_rates(1.0);
        let profile = DemandProfile::uniform(6, 6);
        let alloc = greedy_heterogeneous(&system, &demand, &profile, &Power::new(0.0));
        let counts = alloc.to_counts();
        assert_eq!(counts.missing_items(), 0);
    }

    #[test]
    fn respects_zero_demand() {
        let rates = ContactRates::homogeneous(4, 0.05);
        let system = HeterogeneousSystem::pure_p2p(rates, 1);
        let demand = DemandRates::new(vec![1.0, 0.0]);
        let profile = DemandProfile::uniform(2, 4);
        let alloc = greedy_heterogeneous(&system, &demand, &profile, &Step::new(1.0));
        assert_eq!(alloc.to_counts().count(1), 0);
    }

    #[test]
    fn greedy_beats_fixed_heuristics_on_skewed_rates() {
        // A strongly heterogeneous rate matrix: the greedy, which sees the
        // rates, must beat a rate-blind proportional allocation.
        let rates = ContactRates::from_fn(10, |a, b| {
            if a < 3 && b < 3 {
                0.5
            } else if a < 3 || b < 3 {
                0.05
            } else {
                0.001
            }
        });
        let system = HeterogeneousSystem::pure_p2p(rates, 2);
        let demand = Popularity::pareto(8, 1.0).demand_rates(1.0);
        let profile = DemandProfile::uniform(8, 10);
        let utility = Step::new(1.0);
        let alloc = greedy_heterogeneous(&system, &demand, &profile, &utility);
        let w_greedy = social_welfare_heterogeneous(&system, &alloc, &demand, &profile, &utility);

        let prop = crate::solver::fixed::proportional(&demand, 10, 2);
        let prop_matrix = AllocationMatrix::from_counts(&prop, 2);
        let w_prop =
            social_welfare_heterogeneous(&system, &prop_matrix, &demand, &profile, &utility);
        assert!(
            w_greedy > w_prop,
            "greedy {w_greedy} should beat blind proportional {w_prop}"
        );
    }

    #[test]
    #[should_panic(expected = "requires dedicated nodes")]
    fn rejects_overlapping_populations_for_time_critical() {
        let rates = ContactRates::homogeneous(4, 0.05);
        let system = HeterogeneousSystem::pure_p2p(rates, 1);
        let demand = DemandRates::new(vec![1.0]);
        let profile = DemandProfile::uniform(1, 4);
        let _ = greedy_heterogeneous(&system, &demand, &profile, &Power::new(1.5));
    }

    #[test]
    fn observed_het_greedy_matches_and_counts_lazy_evals() {
        use impatience_obs::{Event, MemorySink, Recorder};
        let rates = ContactRates::homogeneous(8, 0.05);
        let system = HeterogeneousSystem::pure_p2p(rates, 2);
        let demand = Popularity::pareto(6, 1.0).demand_rates(1.0);
        let profile = DemandProfile::uniform(6, 8);
        let utility = Step::new(1.0);
        let plain = greedy_heterogeneous(&system, &demand, &profile, &utility);
        let mut rec = Recorder::new(MemorySink::new());
        let observed =
            greedy_heterogeneous_observed(&system, &demand, &profile, &utility, &mut rec);
        assert_eq!(
            plain, observed,
            "instrumentation must not change the allocation"
        );

        let steps = rec
            .sink()
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::SolverStep {
                        solver: "het_greedy",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(steps, 16, "budget ρ·|S| = 2·8 placements");
        match rec.sink().events.last() {
            Some(Event::SolverDone {
                solver: "het_greedy",
                iterations,
                evaluations,
                ..
            }) => {
                assert_eq!(*iterations, 16);
                // Initial scan alone is items + items·servers gains.
                assert!(*evaluations >= 6 + 6 * 8);
            }
            other => panic!("expected SolverDone, got {other:?}"),
        }
    }

    #[test]
    fn empty_system_edge_cases() {
        let rates = ContactRates::homogeneous(2, 0.05);
        let system = HeterogeneousSystem {
            rates,
            servers: vec![],
            clients: vec![0, 1],
            rho: 3,
        };
        let demand = DemandRates::new(vec![1.0]);
        let profile = DemandProfile::uniform(1, 2);
        let alloc = greedy_heterogeneous(&system, &demand, &profile, &Step::new(1.0));
        assert_eq!(alloc.servers(), 0);
    }
}
