//! Incremental re-optimization of the homogeneous greedy (Theorem 2)
//! under demand / contact-rate / budget deltas.
//!
//! The scratch greedy of [`super::greedy`] pops `ρ|S|` entries from a
//! heap keyed by `d_i·ΔG(x)`. Because the per-unit gain `G(x)` depends
//! only on the system shape and the utility — never on the demand — the
//! whole gain table survives a demand delta, and the optimum itself is
//! characterized *statelessly*: with per-item marginals non-increasing
//! in `x` (concavity of `G`), the greedy allocation is exactly the
//! top-`B` of the entry multiset `{(i, x) : d_i > 0, x < |S|}` under the
//! strict total order `(key, item)` that the scratch solver's
//! `BinaryHeap<(HeapKey, usize)>` pops in. [`DeltaSolver`] maintains that
//! top-`B` selection directly: it keeps the current allocation plus two
//! lazy heaps — the *frontier* (best entry not yet taken per item) and
//! the *selected* boundary (worst entry taken per item) — and after a
//! delta exchanges entries across the boundary until no frontier entry
//! beats a selected one. The fixed point is the unique top-`B`
//! selection, so exact-mode incremental solves are **bit-identical** to
//! a scratch [`greedy_homogeneous`](super::greedy::greedy_homogeneous)
//! (the differential oracle `delta_vs_scratch` and the
//! `tests/solver_incremental.rs` proptests pin this).
//!
//! A bounded-staleness mode ([`DeltaSolver::with_staleness`]) skips even
//! the exchange when it can *certify* the stale allocation: the relaxed
//! water-filling optimum `W̃` (warm-started from the previous water
//! level) upper-bounds the fresh integer optimum `W_fresh`, so
//! `W̃ − W_stale ≤ ε·scale` implies `W_fresh − W_stale ≤ ε·scale`
//! without ever computing `W_fresh`. When the certificate fails, the
//! solver falls back to the exact incremental exchange (which *is* the
//! from-scratch answer, bit for bit).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use super::greedy::GainMemo;
use super::relaxed::try_relaxed_optimum_warm;
use super::{HeapKey, SolverError};
use crate::allocation::ReplicaCounts;
use crate::demand::DemandRates;
use crate::numeric::tolerances;
use crate::types::SystemModel;
use crate::utility::DelayUtility;

/// One change to the instance a [`DeltaSolver`] is tracking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Delta {
    /// Set item `item`'s demand rate to `rate` (finite, ≥ 0; a zero rate
    /// withdraws the item — the optimum never allocates to zero demand).
    Demand {
        /// Catalog index of the item whose demand changes.
        item: usize,
        /// The new demand rate `d_i`.
        rate: f64,
    },
    /// Replace the homogeneous contact rate μ (finite, > 0). Structural:
    /// every cached gain depends on μ, so this forces a from-scratch
    /// rebuild (the memo is cleared, then repopulated lazily).
    ContactRate(f64),
    /// Replace the per-server cache capacity ρ. Changes only the slot
    /// budget `ρ|S|`, so the gain memo survives and the allocation is
    /// re-balanced incrementally (grown or shrunk at the boundary).
    CacheBudget(usize),
}

/// What [`DeltaSolver::apply`] did with a batch of deltas.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaOutcome {
    /// Exact incremental re-solve: the allocation now equals a scratch
    /// greedy solve bit-for-bit; `moved` replicas were added, removed,
    /// or exchanged to get there (0 = the optimum did not change).
    Resolved {
        /// Replica movements performed by the rebalance.
        moved: u64,
    },
    /// Bounded-staleness mode accepted the previous allocation: the
    /// certificate proves its welfare is within ε of a fresh solve, and
    /// the allocation was left untouched.
    CertifiedStale(StalenessCertificate),
    /// A structural delta (contact rate) forced a from-scratch rebuild.
    Rebuilt,
}

/// The evidence behind a [`DeltaOutcome::CertifiedStale`] decision.
///
/// Soundness: `relaxed_bound` is a weak-duality (Lagrangian) bound on
/// the fresh integer optimum `W_fresh` — for *any* multiplier `λ ≥ 0`,
/// `W_fresh ≤ Σ_i max_{0≤x≤|S|} (d_i·G(x) − λx) + λ·ρ|S|`, evaluated on
/// the true discrete gain (so it is valid for dedicated *and* pure-P2P
/// populations, where the fractional water-filling objective ignores the
/// self-caching term and is not itself a bound). With the bound inflated
/// by [`tolerances::RELAXED_BOUND_SLACK`] and `stale_welfare ≤ W_fresh`,
/// `gap = bound − stale_welfare ≥ W_fresh − stale_welfare`; accepting
/// only when `gap ≤ eps·scale` therefore guarantees the stale allocation
/// is within `ε` of fresh *without computing fresh*. The multiplier is
/// the warm-started relaxed water level, which makes the bound tight
/// when the continuous approximation is good and merely loose (never
/// unsound) when it is not.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StalenessCertificate {
    /// Welfare of the (stale) current allocation under the new demand.
    pub stale_welfare: f64,
    /// Lagrangian upper bound on any integer allocation's welfare under
    /// the new demand, at the relaxed water level's multiplier.
    pub relaxed_bound: f64,
    /// Certified bound on `W_fresh − stale_welfare` (clamped at 0).
    pub gap: f64,
    /// The scale the gap was certified against:
    /// `max(|relaxed_bound|, |stale_welfare|,` [`tolerances::CERT_SCALE_FLOOR`]`)`.
    pub scale: f64,
    /// The ε the certificate was checked at.
    pub eps: f64,
    /// Whether `gap ≤ eps·scale` held (accepted ⇒ allocation untouched).
    pub accepted: bool,
}

/// Cumulative counters for one [`DeltaSolver`]'s lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Exact incremental re-solves performed (including certificate
    /// fallbacks and the initial solve).
    pub delta_solves: u64,
    /// From-scratch rebuilds forced by structural deltas.
    pub rebuilds: u64,
    /// Staleness certificates evaluated.
    pub certificates: u64,
    /// Certificates that accepted the stale allocation.
    pub certified_reuses: u64,
    /// Certificates that failed and fell back to the exact re-solve.
    pub certificate_fallbacks: u64,
    /// Total replica movements across all rebalances.
    pub replicas_moved: u64,
}

/// Incremental solver for the homogeneous allocation problem: holds the
/// memoized gain table and the last allocation, and re-optimizes under
/// [`Delta`] batches instead of solving from scratch.
///
/// See the [module docs](self) for the algorithm and its exactness
/// argument. In exact mode (the default), after every
/// [`apply`](DeltaSolver::apply) the allocation equals
/// [`greedy_homogeneous`](super::greedy::greedy_homogeneous) on the
/// current instance bit-for-bit. [`with_staleness`](DeltaSolver::with_staleness)
/// trades that for certified ε-approximate reuse of the old allocation.
pub struct DeltaSolver {
    system: SystemModel,
    utility: Arc<dyn DelayUtility>,
    /// Current demand rates (validated: finite, ≥ 0).
    rates: Vec<f64>,
    counts: ReplicaCounts,
    gains: GainMemo,
    /// Max-heap of candidate entries `(key_for(x_i, i), i)` at each
    /// item's current frontier level `x_i = counts[i]`. Entries are
    /// validated lazily on pop; stale ones are discarded.
    frontier: BinaryHeap<(HeapKey, usize)>,
    /// Min-heap (via `Reverse`) of boundary entries
    /// `(key_for(x_i − 1, i), i)` — the last entry each item took.
    selected: BinaryHeap<Reverse<(HeapKey, usize)>>,
    /// Items whose demand changed while a certificate kept the stale
    /// allocation: their heap entries are refreshed on the next exact
    /// re-solve.
    dirty: Vec<usize>,
    /// Water level of the last relaxed solve (warm-start for the next).
    level_hint: Option<f64>,
    /// Bounded-staleness ε (`None` = exact mode).
    eps: Option<f64>,
    stats: DeltaStats,
}

impl DeltaSolver {
    /// Build a solver and compute the initial exact allocation.
    ///
    /// # Panics
    /// Panics on the same invalid inputs as
    /// [`greedy_homogeneous`](super::greedy::greedy_homogeneous).
    pub fn new(system: SystemModel, demand: &DemandRates, utility: Arc<dyn DelayUtility>) -> Self {
        match Self::try_new(system, demand, utility) {
            Ok(solver) => solver,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`DeltaSolver::new`] returning a typed [`SolverError`] instead of
    /// panicking.
    pub fn try_new(
        system: SystemModel,
        demand: &DemandRates,
        utility: Arc<dyn DelayUtility>,
    ) -> Result<Self, SolverError> {
        if utility.requires_dedicated() && system.population.is_pure_p2p() {
            return Err(SolverError::RequiresDedicated {
                utility: utility.kind().to_string(),
            });
        }
        let items = demand.items();
        let mut solver = DeltaSolver {
            gains: GainMemo::new(system.servers()),
            counts: ReplicaCounts::zero(items, system.servers()),
            system,
            utility,
            rates: demand.rates().to_vec(),
            frontier: BinaryHeap::new(),
            selected: BinaryHeap::new(),
            dirty: Vec::new(),
            level_hint: None,
            eps: None,
            stats: DeltaStats::default(),
        };
        solver.rebuild_heaps();
        let moved = solver.rebalance();
        solver.stats.delta_solves += 1;
        solver.stats.replicas_moved += moved;
        Ok(solver)
    }

    /// Switch to bounded-staleness mode: demand-only delta batches first
    /// try to certify the previous allocation within `eps` (relative, on
    /// the welfare scale) and only re-solve when the certificate fails.
    ///
    /// # Panics
    /// Panics unless `eps` is finite and ≥ 0.
    pub fn with_staleness(mut self, eps: f64) -> Self {
        assert!(eps.is_finite() && eps >= 0.0, "ε must be finite and ≥ 0");
        self.eps = Some(eps);
        self
    }

    /// Set or clear bounded-staleness mode in place.
    ///
    /// The borrowing form of [`with_staleness`](DeltaSolver::with_staleness),
    /// for long-lived solvers whose tolerance varies per request — the
    /// `impatience serve` solver pool reuses one warm solver across
    /// requests that each carry their own `stale_eps`. Passing `None`
    /// restores exact mode.
    ///
    /// # Panics
    /// Panics unless `eps` is `None` or finite and ≥ 0.
    pub fn set_staleness(&mut self, eps: Option<f64>) {
        if let Some(e) = eps {
            assert!(e.is_finite() && e >= 0.0, "ε must be finite and ≥ 0");
        }
        self.eps = eps;
    }

    /// Re-target the solver at an absolute demand vector, expressed as
    /// the delta batch between the current rates and `target`.
    ///
    /// Items whose rate already matches contribute no delta, so a warm
    /// solver serving a request stream pays only for the coordinates
    /// that actually moved. Returns the outcome of the implied
    /// [`apply`](DeltaSolver::apply) (`Resolved { moved: 0 }` when
    /// nothing changed).
    ///
    /// # Panics
    /// Panics if `target.len()` differs from the catalog size or any
    /// rate is non-finite or negative — same contract as
    /// [`DemandRates::new`](crate::demand::DemandRates::new).
    pub fn rebase_demand(&mut self, target: &[f64]) -> Result<DeltaOutcome, SolverError> {
        assert_eq!(
            target.len(),
            self.rates.len(),
            "demand vector length {} != catalog size {}",
            target.len(),
            self.rates.len()
        );
        let deltas: Vec<Delta> = target
            .iter()
            .enumerate()
            .filter(|&(i, &rate)| rate != self.rates[i])
            .map(|(i, &rate)| Delta::Demand { item: i, rate })
            .collect();
        self.apply(&deltas)
    }

    /// The current allocation. In exact mode this is bit-identical to a
    /// scratch greedy solve on the current instance; in bounded-staleness
    /// mode it may be a certified-stale allocation.
    pub fn counts(&self) -> &ReplicaCounts {
        &self.counts
    }

    /// The system model currently in effect (deltas mutate it).
    pub fn system(&self) -> &SystemModel {
        &self.system
    }

    /// The demand rates currently in effect.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Lifetime counters: solves, rebuilds, certificates, movements.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Quadrature evaluations performed by the shared gain memo so far —
    /// the dominant cost a warm solver avoids re-paying.
    pub fn gain_evaluations(&self) -> u64 {
        self.gains.evaluations()
    }

    /// Social welfare of the current allocation under the current demand
    /// (same accumulation as
    /// [`social_welfare_homogeneous`](crate::welfare::social_welfare_homogeneous),
    /// served from the gain memo).
    pub fn welfare(&self) -> f64 {
        let mut total = 0.0;
        for (i, &d) in self.rates.iter().enumerate() {
            if d == 0.0 {
                continue;
            }
            let g = self
                .gains
                .gain(&self.system, self.utility.as_ref(), self.counts.count(i));
            if g == f64::NEG_INFINITY {
                return f64::NEG_INFINITY;
            }
            total += d * g;
        }
        total
    }

    /// Apply a batch of deltas and re-optimize.
    ///
    /// Demand deltas are absorbed incrementally (or certified stale in
    /// bounded-staleness mode); a budget delta re-balances at the new
    /// `ρ|S|`; a contact-rate delta clears the gain memo and rebuilds
    /// from scratch. An empty batch is a no-op returning
    /// `Resolved { moved: 0 }`.
    ///
    /// # Panics
    /// Panics on a malformed delta: an out-of-range item index, a
    /// non-finite or negative demand rate, or a non-positive contact
    /// rate — same contract as [`DemandRates::new`].
    pub fn apply(&mut self, deltas: &[Delta]) -> Result<DeltaOutcome, SolverError> {
        let mut structural = false;
        let mut budget_changed = false;
        let mut touched: Vec<usize> = Vec::new();
        for delta in deltas {
            match *delta {
                Delta::Demand { item, rate } => {
                    assert!(item < self.rates.len(), "item {item} out of range");
                    assert!(
                        rate.is_finite() && rate >= 0.0,
                        "demand rate must be finite and ≥ 0, got {rate}"
                    );
                    if rate != self.rates[item] {
                        self.rates[item] = rate;
                        touched.push(item);
                    }
                }
                Delta::ContactRate(mu) => {
                    assert!(
                        mu.is_finite() && mu > 0.0,
                        "contact rate must be finite and > 0, got {mu}"
                    );
                    if mu != self.system.contact_rate {
                        self.system.contact_rate = mu;
                        structural = true;
                    }
                }
                Delta::CacheBudget(rho) => {
                    if rho != self.system.cache_capacity {
                        self.system.cache_capacity = rho;
                        budget_changed = true;
                    }
                }
            }
        }

        if structural {
            // μ invalidates every cached gain; nothing incremental
            // survives. Rebuild lazily from the (empty) memo.
            self.gains.reset();
            self.counts = ReplicaCounts::zero(self.rates.len(), self.system.servers());
            self.dirty.clear();
            self.rebuild_heaps();
            let moved = self.rebalance();
            self.level_hint = None;
            self.stats.rebuilds += 1;
            self.stats.replicas_moved += moved;
            return Ok(DeltaOutcome::Rebuilt);
        }

        if let (Some(eps), false, false) = (self.eps, budget_changed, touched.is_empty()) {
            self.stats.certificates += 1;
            if let Some(cert) = self.certify(eps) {
                if cert.accepted {
                    // Allocation untouched; remember which items' heap
                    // entries are now stale for a later exact pass.
                    self.dirty.extend_from_slice(&touched);
                    self.stats.certified_reuses += 1;
                    return Ok(DeltaOutcome::CertifiedStale(cert));
                }
            }
            self.stats.certificate_fallbacks += 1;
            // Fall through: the exact incremental exchange below *is*
            // the from-scratch fallback (bit-identical to scratch).
        }

        for item in std::mem::take(&mut self.dirty) {
            self.refresh_item(item);
        }
        for &item in &touched {
            self.refresh_item(item);
        }
        let moved = self.rebalance();
        self.stats.delta_solves += 1;
        self.stats.replicas_moved += moved;
        Ok(DeltaOutcome::Resolved { moved })
    }

    /// The scratch solver's heap key, computed from the *current* rates:
    /// same float expressions as `greedy_homogeneous`, so a cached gain
    /// replay yields bit-identical keys.
    fn key_for(&self, x: u32, i: usize) -> HeapKey {
        let m = self.gains.marginal(&self.system, self.utility.as_ref(), x);
        if m.is_infinite() {
            HeapKey::new(f64::INFINITY, self.rates[i])
        } else {
            HeapKey::new(m * self.rates[i], self.rates[i])
        }
    }

    /// Budget actually reachable: the greedy stops early once every
    /// positive-demand item is capped at `|S|`.
    fn target(&self) -> u64 {
        let cap = self.system.servers();
        let positive = self.rates.iter().filter(|&&d| d > 0.0).count();
        (self.system.total_slots() as u64).min((positive * cap) as u64)
    }

    fn valid_frontier(&self, key: HeapKey, i: usize) -> bool {
        let x = self.counts.count(i);
        self.rates[i] > 0.0 && (x as usize) < self.system.servers() && key == self.key_for(x, i)
    }

    fn valid_selected(&self, key: HeapKey, i: usize) -> bool {
        let x = self.counts.count(i);
        self.rates[i] > 0.0 && x > 0 && key == self.key_for(x - 1, i)
    }

    /// Discard stale frontier entries until the top is valid; return it
    /// (still on the heap).
    fn peek_valid_frontier(&mut self) -> Option<(HeapKey, usize)> {
        loop {
            let &(key, i) = self.frontier.peek()?;
            if self.valid_frontier(key, i) {
                return Some((key, i));
            }
            self.frontier.pop();
        }
    }

    /// Discard stale selected entries until the top is valid; return it
    /// (still on the heap).
    fn peek_valid_selected(&mut self) -> Option<(HeapKey, usize)> {
        loop {
            let &Reverse((key, i)) = self.selected.peek()?;
            if self.valid_selected(key, i) {
                return Some((key, i));
            }
            self.selected.pop();
        }
    }

    /// Take item `i`'s frontier entry: one more replica, new frontier
    /// and boundary entries pushed.
    fn take(&mut self, i: usize) {
        self.counts.add(i);
        let x = self.counts.count(i);
        if (x as usize) < self.system.servers() {
            let key = self.key_for(x, i);
            self.frontier.push((key, i));
        }
        let key = self.key_for(x - 1, i);
        self.selected.push(Reverse((key, i)));
    }

    /// Return item `i`'s boundary entry to the frontier: one replica
    /// fewer.
    fn give_back(&mut self, i: usize) {
        let x = self.counts.count(i);
        debug_assert!(x > 0, "cannot give back from zero replicas");
        self.counts.remove(i);
        let key = self.key_for(x - 1, i);
        self.frontier.push((key, i));
        if x - 1 > 0 {
            let key = self.key_for(x - 2, i);
            self.selected.push(Reverse((key, i)));
        }
    }

    /// Re-seed item `i`'s heap entries after its demand rate changed
    /// (the old entries carry the old rate in their keys and die on
    /// validation). A rate of zero withdraws the item entirely.
    fn refresh_item(&mut self, i: usize) {
        if self.rates[i] == 0.0 {
            while self.counts.count(i) > 0 {
                self.counts.remove(i);
            }
            return;
        }
        let x = self.counts.count(i);
        if (x as usize) < self.system.servers() {
            let key = self.key_for(x, i);
            self.frontier.push((key, i));
        }
        if x > 0 {
            let key = self.key_for(x - 1, i);
            self.selected.push(Reverse((key, i)));
        }
    }

    /// Drop every heap entry and re-seed one frontier + one boundary
    /// entry per live item from the current allocation.
    fn rebuild_heaps(&mut self) {
        self.frontier.clear();
        self.selected.clear();
        for i in 0..self.rates.len() {
            self.refresh_item(i);
        }
    }

    /// Exchange entries across the selection boundary until the
    /// allocation is the top-`B` of the entry multiset — i.e. exactly
    /// the scratch greedy's answer. Returns replicas moved.
    fn rebalance(&mut self) -> u64 {
        let mut moved = 0u64;
        let target = self.target();
        // Grow to the budget (initial solve, raised ρ, item arrivals)…
        while self.counts.total() < target {
            let Some((_, i)) = self.peek_valid_frontier() else {
                break;
            };
            self.frontier.pop();
            self.take(i);
            moved += 1;
        }
        // …shrink past it (lowered ρ, items withdrawn)…
        while self.counts.total() > target {
            let Some((_, i)) = self.peek_valid_selected() else {
                break;
            };
            self.selected.pop();
            self.give_back(i);
            moved += 1;
        }
        // …then swap while some outside entry strictly beats an inside
        // one. Strictness in the `(key, item)` tuple order guarantees
        // termination and mirrors the scratch heap's tie-breaking; a
        // same-item swap is impossible (marginals are non-increasing in
        // x, so an item's frontier entry never beats its own boundary).
        while let Some(best_in) = self.peek_valid_frontier() {
            let Some(worst_out) = self.peek_valid_selected() else {
                break;
            };
            if best_in <= worst_out {
                break;
            }
            self.frontier.pop();
            self.selected.pop();
            self.give_back(worst_out.1);
            self.take(best_in.1);
            moved += 2;
        }
        self.maybe_compact();
        moved
    }

    /// Rebuild the lazy heaps once the stale-entry debris outgrows the
    /// live set; amortized O(1) per push.
    fn maybe_compact(&mut self) {
        let live = 2 * self.rates.len() + 64;
        if self.frontier.len() + self.selected.len() > 4 * live {
            self.rebuild_heaps();
        }
    }

    /// Evaluate the staleness certificate at `eps` for the current
    /// (already-updated) demand against the untouched allocation.
    /// `None` when no multiplier is available (no demand at all, a
    /// bracket failure, or a degenerate water level) — callers treat
    /// that as a failed certificate and re-solve exactly.
    fn certify(&mut self, eps: f64) -> Option<StalenessCertificate> {
        if !self.rates.iter().any(|&d| d > 0.0) {
            return None;
        }
        let demand = DemandRates::new(self.rates.clone());
        let relaxed = try_relaxed_optimum_warm(
            &self.system,
            &demand,
            self.utility.as_ref(),
            self.level_hint,
        )
        .ok()?;
        if relaxed.level.is_finite() && relaxed.level > 0.0 {
            self.level_hint = Some(relaxed.level);
        }
        if !relaxed.level.is_finite() || relaxed.level < 0.0 {
            return None;
        }
        let w_dual = self.dual_bound(relaxed.level);
        let w_stale = self.welfare();
        let bound = w_dual + tolerances::RELAXED_BOUND_SLACK * w_dual.abs();
        let gap = (bound - w_stale).max(0.0);
        let scale = w_dual
            .abs()
            .max(w_stale.abs())
            .max(tolerances::CERT_SCALE_FLOOR);
        let accepted = w_dual.is_finite() && w_stale.is_finite() && gap <= eps * scale;
        Some(StalenessCertificate {
            stale_welfare: w_stale,
            relaxed_bound: w_dual,
            gap,
            scale,
            eps,
            accepted,
        })
    }

    /// Weak-duality upper bound on the fresh integer optimum at
    /// multiplier `level ≥ 0`:
    /// `W* ≤ Σ_i max_{0≤x≤|S|} (d_i·G(x) − level·x) + level·ρ|S|`.
    ///
    /// Sound for *any* non-negative multiplier because every feasible
    /// allocation satisfies `Σx_i ≤ ρ|S|` — unlike the fractional
    /// water-filling objective, which drops the pure-P2P self-caching
    /// term and can undershoot the true optimum on small populations.
    /// Each per-item maximization walks the (memoized) discrete gains
    /// upward and stops at the first strict decrease, which concavity
    /// makes the global argmax.
    fn dual_bound(&self, level: f64) -> f64 {
        let servers = self.system.servers();
        let mut total = level * self.system.total_slots() as f64;
        for &d in self.rates.iter() {
            if d == 0.0 {
                continue;
            }
            let value_at = |x: u32| {
                d * self.gains.gain(&self.system, self.utility.as_ref(), x) - level * f64::from(x)
            };
            let mut best = value_at(0);
            for x in 1..=servers as u32 {
                let v = value_at(x);
                if v < best {
                    break;
                }
                best = v;
            }
            total += best;
            if total == f64::NEG_INFINITY {
                break;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Popularity;
    use crate::solver::greedy::greedy_homogeneous;
    use crate::utility::{Exponential, Power, Step};
    use crate::welfare::social_welfare_homogeneous;

    fn scratch(solver: &DeltaSolver) -> ReplicaCounts {
        let demand = DemandRates::new(solver.rates().to_vec());
        greedy_homogeneous(solver.system(), &demand, &Step::new(5.0))
    }

    #[test]
    fn initial_solve_matches_scratch_greedy() {
        let system = SystemModel::pure_p2p(20, 3, 0.05);
        let demand = Popularity::pareto(12, 1.0).demand_rates(1.0);
        let solver = DeltaSolver::new(system, &demand, Arc::new(Step::new(5.0)));
        assert_eq!(
            *solver.counts(),
            greedy_homogeneous(&system, &demand, &Step::new(5.0))
        );
    }

    #[test]
    fn single_demand_delta_tracks_scratch_bit_identically() {
        let system = SystemModel::pure_p2p(20, 3, 0.05);
        let demand = Popularity::pareto(12, 1.0).demand_rates(1.0);
        let mut solver = DeltaSolver::new(system, &demand, Arc::new(Step::new(5.0)));
        for (item, rate) in [(0usize, 0.01), (11, 5.0), (3, 0.0), (3, 1.2), (0, 0.9)] {
            let out = solver.apply(&[Delta::Demand { item, rate }]).unwrap();
            assert!(matches!(out, DeltaOutcome::Resolved { .. }));
            assert_eq!(
                *solver.counts(),
                scratch(&solver),
                "after d[{item}] = {rate}"
            );
        }
    }

    #[test]
    fn rebase_demand_tracks_scratch_and_skips_unchanged() {
        let system = SystemModel::pure_p2p(20, 3, 0.05);
        let demand = Popularity::pareto(12, 1.0).demand_rates(1.0);
        let mut solver = DeltaSolver::new(system, &demand, Arc::new(Step::new(5.0)));

        // Rebase onto the identical vector: a no-op.
        let before = solver.stats();
        let out = solver.rebase_demand(demand.rates()).unwrap();
        assert!(matches!(out, DeltaOutcome::Resolved { moved: 0 }));
        assert_eq!(solver.stats().replicas_moved, before.replicas_moved);

        // Rebase onto a shuffled vector: bit-identical to scratch.
        let mut target = demand.rates().to_vec();
        target.reverse();
        solver.rebase_demand(&target).unwrap();
        assert_eq!(solver.rates(), &target[..]);
        assert_eq!(*solver.counts(), scratch(&solver));
    }

    #[test]
    #[should_panic(expected = "catalog size")]
    fn rebase_demand_rejects_wrong_length() {
        let system = SystemModel::pure_p2p(10, 2, 0.05);
        let demand = DemandRates::new(vec![1.0, 0.5, 0.2]);
        let mut solver = DeltaSolver::new(system, &demand, Arc::new(Step::new(5.0)));
        let _ = solver.rebase_demand(&[1.0, 0.5]);
    }

    #[test]
    fn set_staleness_toggles_certificate_mode_in_place() {
        let system = SystemModel::pure_p2p(40, 4, 0.05);
        let demand = Popularity::pareto(16, 1.0).demand_rates(1.0);
        let utility: Arc<dyn DelayUtility> = Arc::new(Exponential::new(0.5));
        let mut solver = DeltaSolver::new(system, &demand, Arc::clone(&utility));

        let nudge = |d: &DemandRates, k: f64| Delta::Demand {
            item: 8,
            rate: d.rate(8) * k,
        };
        // Exact mode: the nudge re-solves.
        let out = solver.apply(&[nudge(&demand, 1.001)]).unwrap();
        assert!(matches!(out, DeltaOutcome::Resolved { .. }));

        // Loose ε in place: the next nudge certifies stale.
        solver.set_staleness(Some(0.05));
        let out = solver.apply(&[nudge(&demand, 1.002)]).unwrap();
        assert!(matches!(out, DeltaOutcome::CertifiedStale(_)));

        // Back to exact: allocation snaps back to scratch-greedy.
        solver.set_staleness(None);
        let out = solver.apply(&[nudge(&demand, 1.003)]).unwrap();
        assert!(matches!(out, DeltaOutcome::Resolved { .. }));
        let fresh = greedy_homogeneous(
            solver.system(),
            &DemandRates::new(solver.rates().to_vec()),
            utility.as_ref(),
        );
        assert_eq!(*solver.counts(), fresh);
    }

    #[test]
    fn budget_and_contact_deltas_track_scratch() {
        let system = SystemModel::dedicated(30, 5, 2, 0.05);
        let demand = Popularity::pareto(8, 1.0).demand_rates(1.0);
        let utility: Arc<dyn DelayUtility> = Arc::new(Exponential::new(0.5));
        let mut solver = DeltaSolver::new(system, &demand, Arc::clone(&utility));
        for delta in [
            Delta::CacheBudget(4),
            Delta::CacheBudget(1),
            Delta::ContactRate(0.1),
            Delta::CacheBudget(3),
        ] {
            solver.apply(&[delta]).unwrap();
            let demand = DemandRates::new(solver.rates().to_vec());
            let fresh = greedy_homogeneous(solver.system(), &demand, utility.as_ref());
            assert_eq!(*solver.counts(), fresh, "after {delta:?}");
        }
    }

    #[test]
    fn zero_demand_everywhere_empties_the_allocation() {
        let system = SystemModel::pure_p2p(10, 2, 0.05);
        let demand = DemandRates::new(vec![1.0, 0.5, 0.2]);
        let mut solver = DeltaSolver::new(system, &demand, Arc::new(Step::new(5.0)));
        assert!(solver.counts().total() > 0);
        let deltas: Vec<Delta> = (0..3)
            .map(|i| Delta::Demand { item: i, rate: 0.0 })
            .collect();
        solver.apply(&deltas).unwrap();
        assert_eq!(solver.counts().total(), 0);
        // Revive one item: it should absorb the whole reachable budget.
        solver
            .apply(&[Delta::Demand { item: 1, rate: 2.0 }])
            .unwrap();
        assert_eq!(*solver.counts(), scratch(&solver));
    }

    #[test]
    fn certificate_accepts_tiny_deltas_and_rejects_reversals() {
        let system = SystemModel::pure_p2p(40, 4, 0.05);
        let demand = Popularity::pareto(16, 1.0).demand_rates(1.0);
        let utility: Arc<dyn DelayUtility> = Arc::new(Exponential::new(0.5));
        let mut solver =
            DeltaSolver::new(system, &demand, Arc::clone(&utility)).with_staleness(0.05);

        // A 0.1 % nudge on one mid-rank item: certifiably negligible.
        let nudge = demand.rate(8) * 1.001;
        let out = solver
            .apply(&[Delta::Demand {
                item: 8,
                rate: nudge,
            }])
            .unwrap();
        let DeltaOutcome::CertifiedStale(cert) = out else {
            panic!("expected a certified-stale outcome, got {out:?}");
        };
        assert!(cert.accepted && cert.gap <= cert.eps * cert.scale);

        // Soundness spot-check: the certified gap dominates the true one.
        let fresh = greedy_homogeneous(
            solver.system(),
            &DemandRates::new(solver.rates().to_vec()),
            utility.as_ref(),
        );
        let w_fresh = social_welfare_homogeneous(
            solver.system(),
            &DemandRates::new(solver.rates().to_vec()),
            utility.as_ref(),
            &fresh.as_f64(),
        );
        assert!(w_fresh - cert.stale_welfare <= cert.gap + 1e-12 * cert.scale);

        // A full popularity reversal cannot be certified at ε = 5 %.
        let reversed: Vec<Delta> = (0..16)
            .map(|i| Delta::Demand {
                item: i,
                rate: demand.rate(15 - i),
            })
            .collect();
        let out = solver.apply(&reversed).unwrap();
        assert!(matches!(out, DeltaOutcome::Resolved { .. }));
        // The fallback is exact: bit-identical to scratch.
        let fresh = greedy_homogeneous(
            solver.system(),
            &DemandRates::new(solver.rates().to_vec()),
            utility.as_ref(),
        );
        assert_eq!(*solver.counts(), fresh);
        let stats = solver.stats();
        assert_eq!(stats.certificates, 2);
        assert_eq!(stats.certified_reuses, 1);
        assert_eq!(stats.certificate_fallbacks, 1);
    }

    #[test]
    fn dirty_items_are_refreshed_after_certified_staleness() {
        // An item whose demand changed under an accepted certificate must
        // still be re-keyed correctly by the next exact pass.
        let system = SystemModel::pure_p2p(40, 4, 0.05);
        let demand = Popularity::pareto(16, 1.0).demand_rates(1.0);
        let utility: Arc<dyn DelayUtility> = Arc::new(Step::new(5.0));
        let mut solver =
            DeltaSolver::new(system, &demand, Arc::clone(&utility)).with_staleness(0.2);
        let nudged = demand.rate(5) * 1.0005;
        let out = solver
            .apply(&[Delta::Demand {
                item: 5,
                rate: nudged,
            }])
            .unwrap();
        assert!(matches!(out, DeltaOutcome::CertifiedStale(_)));
        // Budget deltas bypass the certificate: exact path, which must
        // absorb the earlier certified (dirty) demand change too.
        solver.apply(&[Delta::CacheBudget(5)]).unwrap();
        let fresh = greedy_homogeneous(
            solver.system(),
            &DemandRates::new(solver.rates().to_vec()),
            utility.as_ref(),
        );
        assert_eq!(*solver.counts(), fresh);
    }

    #[test]
    fn gain_memo_survives_demand_deltas() {
        let system = SystemModel::pure_p2p(30, 3, 0.05);
        let demand = Popularity::pareto(40, 1.0).demand_rates(1.0);
        let mut solver = DeltaSolver::new(system, &demand, Arc::new(Exponential::new(0.5)));
        let evals_after_init = solver.gain_evaluations();
        assert!(evals_after_init <= system.servers() as u64 + 1);
        for round in 0..20 {
            let rate = 0.5 + 0.01 * round as f64;
            solver
                .apply(&[Delta::Demand { item: round, rate }])
                .unwrap();
        }
        // Deltas may *lazily* touch replica levels the initial solve
        // never reached, but each level costs one quadrature ever.
        assert!(solver.gain_evaluations() <= system.servers() as u64 + 1);
        let evals = solver.gain_evaluations();
        for round in 0..20 {
            let rate = 0.6 + 0.01 * round as f64;
            solver
                .apply(&[Delta::Demand { item: round, rate }])
                .unwrap();
        }
        assert_eq!(
            solver.gain_evaluations(),
            evals,
            "repeat deltas over known levels must not re-run quadrature"
        );
    }

    #[test]
    fn cost_type_utility_keeps_every_item_covered_through_deltas() {
        // Power(α ≥ 1) has h(0⁺) = ∞: first replicas are infinitely
        // valuable, exercising the HeapKey infinity tie-break path.
        let system = SystemModel::dedicated(30, 5, 2, 0.05);
        let demand = Popularity::pareto(8, 1.0).demand_rates(1.0);
        let utility: Arc<dyn DelayUtility> = Arc::new(Power::new(1.5));
        let mut solver = DeltaSolver::new(system, &demand, Arc::clone(&utility));
        for (item, rate) in [(7usize, 9.0), (0, 0.001), (4, 0.0), (4, 0.3)] {
            solver.apply(&[Delta::Demand { item, rate }]).unwrap();
            let demand = DemandRates::new(solver.rates().to_vec());
            let fresh = greedy_homogeneous(solver.system(), &demand, utility.as_ref());
            assert_eq!(*solver.counts(), fresh, "after d[{item}] = {rate}");
        }
    }

    #[test]
    fn rejects_dedicated_only_utility_in_pure_p2p() {
        let system = SystemModel::pure_p2p(10, 2, 0.05);
        let demand = Popularity::uniform(4).demand_rates(1.0);
        let err = DeltaSolver::try_new(system, &demand, Arc::new(Power::new(1.5)));
        assert!(matches!(err, Err(SolverError::RequiresDedicated { .. })));
    }

    #[test]
    #[should_panic(expected = "finite and ≥ 0")]
    fn rejects_negative_demand_delta() {
        let system = SystemModel::pure_p2p(10, 2, 0.05);
        let demand = Popularity::uniform(4).demand_rates(1.0);
        let mut solver = DeltaSolver::new(system, &demand, Arc::new(Step::new(5.0)));
        let _ = solver.apply(&[Delta::Demand {
            item: 0,
            rate: -1.0,
        }]);
    }
}
