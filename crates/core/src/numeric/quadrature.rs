//! Adaptive Simpson quadrature on finite intervals and a tail-splitting
//! scheme for the semi-infinite integrals `∫₀^∞ f(t) dt` that define the
//! expected gain (Lemma 1) and the equilibrium transform φ (Property 1).
//!
//! The integrands of interest decay exponentially (`e^{−λt}·c(t)` with
//! `λ > 0`), so the semi-infinite routine integrates dyadically expanding
//! windows `[0,T], [T,2T], [2T,4T], …` until the window contribution falls
//! below the requested tolerance.

/// Failure modes of the quadrature routines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuadratureError {
    /// The integrand produced a NaN value.
    NotFinite,
    /// The tail did not converge within the iteration budget.
    TailDiverged,
}

impl std::fmt::Display for QuadratureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuadratureError::NotFinite => write!(f, "integrand returned a non-finite value"),
            QuadratureError::TailDiverged => {
                write!(f, "semi-infinite tail did not converge within budget")
            }
        }
    }
}

impl std::error::Error for QuadratureError {}

fn simpson(fa: f64, fm: f64, fb: f64, h: f64) -> f64 {
    (fa + 4.0 * fm + fb) * h / 6.0
}

#[allow(clippy::too_many_arguments)] // recursion state is cheaper flat than boxed
fn adaptive(
    f: &mut dyn FnMut(f64) -> f64,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> Result<f64, QuadratureError> {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    if !flm.is_finite() || !frm.is_finite() {
        return Err(QuadratureError::NotFinite);
    }
    let left = simpson(fa, flm, fm, m - a);
    let right = simpson(fm, frm, fb, b - m);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        // Richardson extrapolation term.
        Ok(left + right + delta / 15.0)
    } else {
        let l = adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)?;
        let r = adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)?;
        Ok(l + r)
    }
}

/// Adaptive Simpson integration of `f` over the finite interval `[a, b]`
/// with absolute tolerance `tol`.
///
/// Integrable endpoint singularities should be handled by the caller
/// (e.g. by substitution); the routine evaluates `f` at both endpoints.
pub fn integrate(
    mut f: impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
) -> Result<f64, QuadratureError> {
    if a == b {
        return Ok(0.0);
    }
    let (a, b, sign) = if a < b { (a, b, 1.0) } else { (b, a, -1.0) };
    let fa = f(a);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let fb = f(b);
    if !fa.is_finite() || !fm.is_finite() || !fb.is_finite() {
        return Err(QuadratureError::NotFinite);
    }
    let whole = simpson(fa, fm, fb, b - a);
    let v = adaptive(&mut f, a, b, fa, fm, fb, whole, tol.max(f64::EPSILON), 40)?;
    Ok(sign * v)
}

/// Integrate `f` over `[0, ∞)` assuming `f` eventually decays fast enough
/// for dyadic window sums to converge (true for `e^{−λt}` envelopes).
///
/// `scale` sets the width of the first window — pass a characteristic time
/// of the integrand (e.g. `1/λ`); the result is insensitive to the exact
/// choice. `tol` is the absolute tolerance.
pub fn integrate_semi_infinite(
    f: impl FnMut(f64) -> f64,
    scale: f64,
    tol: f64,
) -> Result<f64, QuadratureError> {
    let scale = if scale.is_finite() && scale > 0.0 {
        scale
    } else {
        1.0
    };
    integrate_tail(f, 0.0, scale, tol)
}

/// Dyadic-window integration of `f` over `[start, ∞)`.
fn integrate_tail(
    mut f: impl FnMut(f64) -> f64,
    start: f64,
    scale: f64,
    tol: f64,
) -> Result<f64, QuadratureError> {
    let mut lo = start;
    let mut width = scale;
    let mut total = 0.0;
    // 64 dyadically growing windows cover ~2^64·scale: plenty for any
    // exponentially decaying integrand.
    for window in 0..64 {
        let hi = lo + width;
        let part = integrate(&mut f, lo, hi, tol * 0.25)?;
        total += part;
        // Converged once two consecutive windows contribute ~nothing.
        if window >= 2 && part.abs() < tol * 0.25 {
            return Ok(total);
        }
        lo = hi;
        width *= 2.0;
    }
    Err(QuadratureError::TailDiverged)
}

/// Integrate `f` over `[0, ∞)` where `f` may have an *integrable*
/// singularity at `t = 0` (e.g. `t^{−β}`, `β < 1`, or `ln t`).
///
/// The head `[0, scale]` is computed under the substitution `t = u^16`,
///
/// ```text
/// ∫₀^s f(t) dt = ∫₀^{s^{1/16}} f(u¹⁶)·16·u¹⁵ du ,
/// ```
///
/// which regularizes `t^{−β}` for `β < 1 − 1/16` (the transformed
/// integrand behaves as `u^{16(1−β)−1}`) — enough for the paper's power
/// family up to `α < 2 − 1/16` (the `φ` integrand is `t^{1−α}`). The
/// smooth tail `[scale, ∞)` is integrated without substitution so that
/// exponential decay is resolved at its natural width. The point `t = 0`
/// contributes zero and is short-circuited.
pub fn integrate_semi_infinite_singular(
    mut f: impl FnMut(f64) -> f64,
    scale: f64,
    tol: f64,
) -> Result<f64, QuadratureError> {
    const P: i32 = 16;
    let scale = if scale.is_finite() && scale > 0.0 {
        scale
    } else {
        1.0
    };
    let head = integrate(
        |u: f64| {
            let t = u.powi(P);
            if t == 0.0 {
                // u = 0 or underflow: the integrable singularity
                // contributes nothing in the limit.
                return 0.0;
            }
            f(t) * P as f64 * u.powi(P - 1)
        },
        0.0,
        scale.powf(1.0 / P as f64),
        0.5 * tol,
    )?;
    let tail = integrate_tail(f, scale, scale, 0.5 * tol)?;
    Ok(head + tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn polynomial_exact() {
        // Simpson is exact on cubics.
        let v = integrate(|t| t * t * t - 2.0 * t + 1.0, 0.0, 2.0, 1e-12).unwrap();
        close(v, 4.0 - 4.0 + 2.0, 1e-10);
    }

    #[test]
    fn reversed_limits_negate() {
        let v1 = integrate(|t| t.sin(), 0.0, 1.0, 1e-10).unwrap();
        let v2 = integrate(|t| t.sin(), 1.0, 0.0, 1e-10).unwrap();
        close(v1, -v2, 1e-12);
    }

    #[test]
    fn zero_width_interval() {
        let v = integrate(|t| t.exp(), 3.0, 3.0, 1e-10).unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn oscillatory() {
        let v = integrate(|t| (10.0 * t).sin(), 0.0, std::f64::consts::PI, 1e-10).unwrap();
        // ∫ sin(10t) over [0,π] = (1 − cos(10π))/10 = 0
        close(v, 0.0, 1e-8);
    }

    #[test]
    fn semi_infinite_exponential() {
        for lambda in [0.1, 1.0, 5.0, 40.0] {
            let v = integrate_semi_infinite(|t| (-lambda * t).exp(), 1.0 / lambda, 1e-10).unwrap();
            close(v, 1.0 / lambda, 1e-7);
        }
    }

    #[test]
    fn semi_infinite_gamma_like() {
        // ∫ t e^{−t} dt = 1
        let v = integrate_semi_infinite(|t| t * (-t).exp(), 1.0, 1e-10).unwrap();
        close(v, 1.0, 1e-8);
        // ∫ t² e^{−2t} dt = 2/8 = 0.25
        let v = integrate_semi_infinite(|t| t * t * (-2.0 * t).exp(), 0.5, 1e-10).unwrap();
        close(v, 0.25, 1e-8);
    }

    #[test]
    fn semi_infinite_handles_bad_scale() {
        let v = integrate_semi_infinite(|t| (-t).exp(), f64::NAN, 1e-9).unwrap();
        close(v, 1.0, 1e-6);
        let v = integrate_semi_infinite(|t| (-t).exp(), 0.0, 1e-9).unwrap();
        close(v, 1.0, 1e-6);
    }

    #[test]
    fn singular_integrands() {
        // ∫₀^∞ t^{−1/2} e^{−t} dt = Γ(1/2) = √π
        let v = integrate_semi_infinite_singular(|t| t.powf(-0.5) * (-t).exp(), 1.0, 1e-9).unwrap();
        close(v, std::f64::consts::PI.sqrt(), 1e-6);
        // ∫₀^∞ (−ln t)·e^{−t} dt = γ (Euler–Mascheroni)
        let v = integrate_semi_infinite_singular(|t| -t.ln() * (-t).exp(), 1.0, 1e-9).unwrap();
        close(v, 0.577_215_664_901_532_9, 1e-6);
        // Strong (but integrable) singularity: ∫ t^{−0.9} e^{−t} = Γ(0.1)
        let v = integrate_semi_infinite_singular(|t| t.powf(-0.9) * (-t).exp(), 1.0, 1e-9).unwrap();
        close(v, 9.513_507_698_668_732, 1e-4);
    }

    #[test]
    fn singular_matches_regular_for_smooth_integrands() {
        let a = integrate_semi_infinite(|t| t * (-2.0 * t).exp(), 0.5, 1e-10).unwrap();
        let b = integrate_semi_infinite_singular(|t| t * (-2.0 * t).exp(), 0.5, 1e-10).unwrap();
        close(a, b, 1e-7);
    }

    #[test]
    fn nan_integrand_reports_error() {
        let err = integrate(|t| if t > 0.5 { f64::NAN } else { 1.0 }, 0.0, 1.0, 1e-9);
        assert_eq!(err.unwrap_err(), QuadratureError::NotFinite);
    }

    #[test]
    fn nonconvergent_tail_reports_error() {
        let err = integrate_semi_infinite(|_| 1.0, 1.0, 1e-9);
        assert_eq!(err.unwrap_err(), QuadratureError::TailDiverged);
    }

    #[test]
    fn error_display() {
        assert!(QuadratureError::NotFinite
            .to_string()
            .contains("non-finite"));
        assert!(QuadratureError::TailDiverged
            .to_string()
            .contains("converge"));
    }
}
