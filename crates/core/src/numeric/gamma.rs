//! Gamma function via the Lanczos approximation.
//!
//! The power delay-utility family needs `Γ(2−α)` for the closed forms of
//! the welfare, the equilibrium condition φ and the reaction function ψ
//! (paper Table 1, `α < 2`).

use std::f64::consts::PI;

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// The Gamma function `Γ(z)` for real `z`.
///
/// Poles at non-positive integers return `NaN`. Relative accuracy is about
/// `1e-13` over the range used in this crate (`z ∈ (0, 4]`).
pub fn gamma(z: f64) -> f64 {
    if z.is_nan() {
        return f64::NAN;
    }
    if z <= 0.0 && z == z.floor() {
        return f64::NAN; // pole
    }
    if z < 0.5 {
        // Reflection: Γ(z) Γ(1−z) = π / sin(πz)
        PI / ((PI * z).sin() * gamma(1.0 - z))
    } else {
        let z = z - 1.0;
        let mut x = LANCZOS[0];
        for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
            x += c / (z + i as f64);
        }
        let t = z + LANCZOS_G + 0.5;
        (2.0 * PI).sqrt() * t.powf(z + 0.5) * (-t).exp() * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn integer_values() {
        close(gamma(1.0), 1.0, 1e-12);
        close(gamma(2.0), 1.0, 1e-12);
        close(gamma(3.0), 2.0, 1e-12);
        close(gamma(4.0), 6.0, 1e-12);
        close(gamma(5.0), 24.0, 1e-12);
        close(gamma(10.0), 362_880.0, 1e-11);
    }

    #[test]
    fn half_integer_values() {
        close(gamma(0.5), PI.sqrt(), 1e-12);
        close(gamma(1.5), 0.5 * PI.sqrt(), 1e-12);
        close(gamma(2.5), 0.75 * PI.sqrt(), 1e-12);
    }

    #[test]
    fn reflection_for_negative_arguments() {
        // Γ(−0.5) = −2√π
        close(gamma(-0.5), -2.0 * PI.sqrt(), 1e-11);
        // Γ(−1.5) = 4√π/3
        close(gamma(-1.5), 4.0 * PI.sqrt() / 3.0, 1e-11);
    }

    #[test]
    fn poles_are_nan() {
        assert!(gamma(0.0).is_nan());
        assert!(gamma(-1.0).is_nan());
        assert!(gamma(-2.0).is_nan());
        assert!(gamma(f64::NAN).is_nan());
    }

    #[test]
    fn recurrence_holds() {
        // Γ(z+1) = z Γ(z) across a range of z.
        for k in 1..40 {
            let z = 0.1 * k as f64;
            close(gamma(z + 1.0), z * gamma(z), 1e-10);
        }
    }

    #[test]
    fn range_used_by_power_family() {
        // Γ(2−α) for α ∈ (−2, 2): arguments in (0, 4).
        for k in -19..20 {
            let alpha = 0.1 * k as f64;
            let g = gamma(2.0 - alpha);
            assert!(g.is_finite() && g > 0.0, "Γ(2−{alpha}) = {g}");
        }
    }
}
