//! Bracketing root finder used to invert the (strictly monotone) transform
//! `φ` in the water-filling solver of Property 1.

/// Failure modes of [`bisect`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BracketError {
    /// `f(lo)` and `f(hi)` have the same sign — no guaranteed root inside.
    NoSignChange {
        /// Value at the lower bracket end.
        f_lo: f64,
        /// Value at the upper bracket end.
        f_hi: f64,
    },
    /// The function produced a non-finite value inside the bracket.
    NotFinite,
}

impl std::fmt::Display for BracketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BracketError::NoSignChange { f_lo, f_hi } => {
                write!(
                    f,
                    "no sign change over bracket (f(lo)={f_lo}, f(hi)={f_hi})"
                )
            }
            BracketError::NotFinite => write!(f, "function not finite inside bracket"),
        }
    }
}

impl std::error::Error for BracketError {}

/// Find a root of `f` in `[lo, hi]` by bisection, to absolute `x`-tolerance
/// `tol`. Requires `f(lo)` and `f(hi)` to have opposite (or zero) signs.
///
/// Bisection is chosen over Newton/secant because the φ-inversions this
/// serves involve numerically integrated functions whose derivatives are
/// expensive and noisy; 60 bisection steps already reach `f64` resolution.
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> Result<f64, BracketError> {
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if !f_lo.is_finite() || !f_hi.is_finite() {
        return Err(BracketError::NotFinite);
    }
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(BracketError::NoSignChange { f_lo, f_hi });
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if hi - lo <= tol || mid == lo || mid == hi {
            return Ok(mid);
        }
        let f_mid = f(mid);
        if !f_mid.is_finite() {
            return Err(BracketError::NotFinite);
        }
        if f_mid == 0.0 {
            return Ok(mid);
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn accepts_swapped_bracket() {
        let r = bisect(|x| x - 1.0, 3.0, 0.0, 1e-12).unwrap();
        assert!((r - 1.0).abs() < 1e-10);
    }

    #[test]
    fn root_at_endpoint() {
        let r = bisect(|x| x, 0.0, 5.0, 1e-12).unwrap();
        assert_eq!(r, 0.0);
        let r = bisect(|x| x - 5.0, 0.0, 5.0, 1e-12).unwrap();
        assert_eq!(r, 5.0);
    }

    #[test]
    fn no_sign_change_is_error() {
        let e = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(e, BracketError::NoSignChange { .. }));
        assert!(e.to_string().contains("no sign change"));
    }

    #[test]
    fn non_finite_is_error() {
        let e = bisect(|_| f64::NAN, 0.0, 1.0, 1e-9).unwrap_err();
        assert_eq!(e, BracketError::NotFinite);
    }

    #[test]
    fn decreasing_function() {
        // Decreasing through the root: ln(1/x) = 0 at x = 1.
        let r = bisect(|x| (1.0 / x).ln(), 0.1, 10.0, 1e-12).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tight_tolerance_converges() {
        let r = bisect(|x| x.cos() - x, 0.0, 1.0, 0.0).unwrap();
        assert!((r.cos() - r).abs() < 1e-14);
    }
}
