//! Small numerical toolbox: adaptive quadrature on finite and semi-infinite
//! intervals, bracketing root finders, and the Gamma function.
//!
//! These back the *generic* code paths: every delay-utility family in the
//! paper has closed forms for its transforms (Table 1), and the numeric
//! routines here both (a) support arbitrary user-supplied utilities and
//! (b) cross-validate the closed forms in tests.

mod gamma;
mod quadrature;
mod roots;
pub mod tolerances;

pub use gamma::gamma;
pub use quadrature::{
    integrate, integrate_semi_infinite, integrate_semi_infinite_singular, QuadratureError,
};
pub use roots::{bisect, BracketError};
