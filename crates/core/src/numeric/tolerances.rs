//! The workspace's shared comparison tolerances.
//!
//! Differential checks (greedy vs brute force, incremental vs scratch,
//! equilibrium residuals, …) used to carry their own `1e-9`-style
//! literals, scattered across `crates/oracle` and the solver tests. They
//! are all statements about the *same* two error sources — f64 round-off
//! accumulated over a welfare sum, and the convergence tolerance of the
//! bisection-based solvers — so they belong in one place with the
//! rationale attached. Statistical (Monte-Carlo) comparisons never use
//! these: they are gated by CLT confidence intervals in
//! `oracle::differential` instead of fixed epsilons.

/// Relative tolerance for comparing two independently computed welfare
/// values that should agree exactly in real arithmetic (greedy vs brute
/// force, memoized vs recomputed, incremental vs scratch). Welfare is a
/// sum of `|I|` products of quadrature results; with `|I| ≤ 10³ terms
/// the accumulated relative round-off stays far below `1e-9`.
pub const WELFARE_REL: f64 = 1e-9;

/// Absolute floor used alongside [`WELFARE_REL`] when the reference value
/// may be ~0: `|a − b| ≤ WELFARE_REL·scale.max(WELFARE_ABS_FLOOR)`.
pub const WELFARE_ABS_FLOOR: f64 = 1e-12;

/// Maximum relative deviation of `d_i·φ(x̃_i)` from the common water
/// level at the relaxed optimum. Looser than [`WELFARE_REL`] because the
/// outer water-level bisection terminates on the *budget* residual, not
/// the per-item equilibrium residual; the observed residuals sit around
/// `1e-8`–`1e-7`.
pub const EQUILIBRIUM_RESIDUAL: f64 = 1e-6;

/// Tolerance on "exactly zero" discrete quantities that were computed
/// through floating point (marginal-gain violations of submodularity /
/// monotonicity on exhaustively enumerated chains).
pub const MARGINAL_SLACK: f64 = 1e-9;

/// Slack applied when comparing f64 error *sequences* for monotone
/// ordering (e.g. slot-refinement errors across shrinking δ).
pub const SEQUENCE_SLACK: f64 = 1e-12;

/// Relative inflation applied to the relaxed (fractional) welfare before
/// it is used as an upper bound in the staleness certificate:
/// `bound = W̃·(1 + RELAXED_BOUND_SLACK·sign)`. The water-filling solver
/// converges to round-off, so its reported optimum can sit a hair *below*
/// the true relaxed optimum; the inflation restores the one-sided
/// guarantee `bound ≥ W_fresh` that certificate soundness rests on.
pub const RELAXED_BOUND_SLACK: f64 = 1e-9;

/// Scale floor for the staleness certificate's relative gap: the gap is
/// certified against `ε·max(|W̃|, |W_stale|, CERT_SCALE_FLOOR)`, so an
/// all-but-zero-welfare instance cannot manufacture an infinite relative
/// gap out of round-off.
pub const CERT_SCALE_FLOOR: f64 = 1e-12;

// The exact-agreement floor must be the tightest, the equilibrium
// residual the loosest; anything else indicates a typo'd exponent.
// Checked at compile time.
const _: () = {
    assert!(WELFARE_ABS_FLOOR < WELFARE_REL);
    assert!(SEQUENCE_SLACK < MARGINAL_SLACK);
    assert!(WELFARE_REL <= MARGINAL_SLACK);
    assert!(MARGINAL_SLACK < EQUILIBRIUM_RESIDUAL);
    assert!(CERT_SCALE_FLOOR < RELAXED_BOUND_SLACK);
};
