//! Fundamental identifiers and system descriptors.
//!
//! The paper distinguishes two node populations (§3.1): *dedicated nodes*
//! (disjoint client and server sets, e.g. throwboxes or kiosks) and *pure
//! P2P* (every node is both client and server, e.g. the VideoForU phones).
//! [`SystemModel`] captures the population shape together with the cache
//! capacity `ρ` and — for the homogeneous analysis — the pairwise contact
//! rate `μ`.

use std::fmt;

/// Identifier of a content item (`i ∈ I`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ItemId(pub u32);

/// Identifier of a node (client and/or server).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl ItemId {
    /// Index into item-indexed vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// Index into node-indexed vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Shape of the client/server populations (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Population {
    /// Disjoint client and server sets (`C ∩ S = ∅`): a managed system with
    /// special delivery nodes (buses, throwboxes, kiosks).
    Dedicated {
        /// Number of client nodes `N = |C|`.
        clients: usize,
        /// Number of server nodes `|S|`.
        servers: usize,
    },
    /// Every node is both client and server (`C = S`), the cooperative
    /// setting of the VideoForU scenario.
    PureP2p {
        /// Number of nodes `N = |C| = |S|`.
        nodes: usize,
    },
}

impl Population {
    /// Number of client nodes `|C|`.
    pub fn clients(&self) -> usize {
        match *self {
            Population::Dedicated { clients, .. } => clients,
            Population::PureP2p { nodes } => nodes,
        }
    }

    /// Number of server nodes `|S|`.
    pub fn servers(&self) -> usize {
        match *self {
            Population::Dedicated { servers, .. } => servers,
            Population::PureP2p { nodes } => nodes,
        }
    }

    /// Whether clients can self-serve from their own cache (pure P2P only).
    pub fn is_pure_p2p(&self) -> bool {
        matches!(self, Population::PureP2p { .. })
    }
}

/// Static description of a homogeneous system: population shape, per-server
/// cache capacity `ρ`, and the homogeneous pairwise meeting rate `μ`.
///
/// Heterogeneous systems carry a full rate matrix instead; see
/// [`crate::welfare::ContactRates`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SystemModel {
    /// Population shape.
    pub population: Population,
    /// Cache capacity (number of item slots) per server node, `ρ ≥ 0`.
    pub cache_capacity: usize,
    /// Homogeneous pairwise contact rate `μ > 0` (meetings per unit time
    /// between any fixed client/server pair).
    pub contact_rate: f64,
}

impl SystemModel {
    /// A pure-P2P system of `nodes` nodes, each caching up to `rho` items,
    /// with homogeneous pairwise meeting rate `mu`.
    ///
    /// # Panics
    /// Panics if `mu` is not strictly positive and finite.
    pub fn pure_p2p(nodes: usize, rho: usize, mu: f64) -> Self {
        assert!(nodes > 0, "a pure-P2P system needs at least one node");
        assert!(mu > 0.0 && mu.is_finite(), "contact rate must be positive");
        SystemModel {
            population: Population::PureP2p { nodes },
            cache_capacity: rho,
            contact_rate: mu,
        }
    }

    /// A dedicated-node system with separate client and server populations.
    ///
    /// # Panics
    /// Panics if `mu` is not strictly positive and finite.
    pub fn dedicated(clients: usize, servers: usize, rho: usize, mu: f64) -> Self {
        assert!(
            clients > 0 && servers > 0,
            "dedicated systems need clients and servers"
        );
        assert!(mu > 0.0 && mu.is_finite(), "contact rate must be positive");
        SystemModel {
            population: Population::Dedicated { clients, servers },
            cache_capacity: rho,
            contact_rate: mu,
        }
    }

    /// Number of server nodes `|S|`.
    pub fn servers(&self) -> usize {
        self.population.servers()
    }

    /// Number of client nodes `|C|`.
    pub fn clients(&self) -> usize {
        self.population.clients()
    }

    /// Total number of cache slots in the system, `ρ·|S|` — the budget of
    /// the allocation problem (Eq. 6).
    pub fn total_slots(&self) -> usize {
        self.cache_capacity * self.servers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        let i = ItemId::from(7);
        let n = NodeId::from(3);
        assert_eq!(i.index(), 7);
        assert_eq!(n.index(), 3);
        assert_eq!(i.to_string(), "item#7");
        assert_eq!(n.to_string(), "node#3");
        assert!(ItemId(1) < ItemId(2));
    }

    #[test]
    fn populations() {
        let d = Population::Dedicated {
            clients: 10,
            servers: 4,
        };
        assert_eq!(d.clients(), 10);
        assert_eq!(d.servers(), 4);
        assert!(!d.is_pure_p2p());

        let p = Population::PureP2p { nodes: 50 };
        assert_eq!(p.clients(), 50);
        assert_eq!(p.servers(), 50);
        assert!(p.is_pure_p2p());
    }

    #[test]
    fn system_model_slots() {
        let s = SystemModel::pure_p2p(50, 5, 0.05);
        assert_eq!(s.total_slots(), 250);
        assert_eq!(s.servers(), 50);
        assert_eq!(s.clients(), 50);

        let d = SystemModel::dedicated(100, 10, 3, 0.1);
        assert_eq!(d.total_slots(), 30);
        assert_eq!(d.clients(), 100);
    }

    #[test]
    #[should_panic(expected = "contact rate must be positive")]
    fn rejects_nonpositive_rate() {
        let _ = SystemModel::pure_p2p(10, 5, 0.0);
    }

    #[test]
    #[should_panic(expected = "contact rate must be positive")]
    fn rejects_nan_rate() {
        let _ = SystemModel::dedicated(10, 5, 1, f64::NAN);
    }
}
