//! Homogeneous-contact welfare: Eqs. (2)–(5) of the paper.
//!
//! With `μ_{m,n} = μ` for all pairs, a request for an item with `x`
//! replicas is fulfilled after `Y ~ Exp(μx)` (continuous model) or after a
//! geometric number of slots (discrete model), and the social welfare
//! reduces to a sum of per-item terms.

use crate::demand::DemandRates;
use crate::types::SystemModel;
use crate::utility::DelayUtility;

/// Per-request expected gain for an item with `replicas` copies under the
/// continuous-time, dedicated-node model (the inner term of Eq. 3):
/// `G(μ·x) = E[h(Y)]`, `Y ~ Exp(μ·x)`.
///
/// `replicas` may be fractional (relaxed allocations).
pub fn expected_gain_continuous(utility: &dyn DelayUtility, replicas: f64, mu: f64) -> f64 {
    debug_assert!(replicas >= 0.0 && mu > 0.0);
    utility.gain(mu * replicas)
}

/// Per-request expected gain in the pure-P2P case (inner term of Eq. 5):
/// with probability `x/N` the requester holds the item (gain `h(0⁺)`),
/// otherwise it waits for one of the `x` replicas.
///
/// # Panics
/// Panics (debug) if the utility has infinite `h(0⁺)` — the paper
/// restricts those families to dedicated nodes (§3.2).
pub fn expected_gain_pure_p2p(
    utility: &dyn DelayUtility,
    replicas: f64,
    nodes: usize,
    mu: f64,
) -> f64 {
    debug_assert!(
        !utility.requires_dedicated(),
        "{} has h(0+)=∞ and is restricted to the dedicated-node case",
        utility.kind()
    );
    let n = nodes as f64;
    let self_prob = (replicas / n).min(1.0);
    let gain = utility.gain(mu * replicas);
    if self_prob >= 1.0 {
        // Every node holds the item; h(0+) alone (avoids 0·(−∞) below).
        return utility.h_zero();
    }
    if gain == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    self_prob * utility.h_zero() + (1.0 - self_prob) * gain
}

/// Social welfare under homogeneous contacts, continuous time
/// (Eq. 3 dedicated / Eq. 5 pure P2P): `U(x) = Σ_i d_i·G_i(x_i)`.
///
/// `counts` may be fractional. Returns `−∞` if any demanded item is
/// unreplicated under a cost-type utility.
pub fn social_welfare_homogeneous(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
    counts: &[f64],
) -> f64 {
    assert_eq!(
        counts.len(),
        demand.items(),
        "allocation and demand catalog sizes differ"
    );
    let mu = system.contact_rate;
    let mut total = 0.0;
    for (i, &x) in counts.iter().enumerate() {
        let d = demand.rate(i);
        if d == 0.0 {
            continue; // no demand ⇒ no welfare contribution, even at x = 0
        }
        let g = if system.population.is_pure_p2p() {
            expected_gain_pure_p2p(utility, x, system.clients(), mu)
        } else {
            expected_gain_continuous(utility, x, mu)
        };
        if g == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        total += d * g;
    }
    total
}

/// Per-request expected gain under the discrete-time contact model with
/// slot length `delta` (inner term of Eqs. 2/4):
/// `h(δ) − Σ_{k≥1} (1−μδ)^{x·k} Δc(kδ)`.
///
/// Requires `μ·δ < 1` (a contact probability). The series is summed until
/// its geometric envelope drops below `1e-12` of the accumulated value.
pub fn item_gain_discrete(utility: &dyn DelayUtility, x: f64, mu: f64, delta: f64) -> f64 {
    assert!(
        delta > 0.0 && mu * delta < 1.0,
        "need μδ < 1 (got {})",
        mu * delta
    );
    if x == 0.0 {
        // q = 1: the sum telescopes to h(δ) − h(∞).
        return utility.h_infinity();
    }
    let q = (1.0 - mu * delta).powf(x);
    let mut sum = 0.0;
    let mut qk = 1.0;
    let mut k = 1u64;
    loop {
        qk *= q;
        let dc = utility.delta_c(k, delta);
        sum += qk * dc;
        // Δc of the families in use is bounded by a polynomial in k, so a
        // relative geometric cutoff terminates correctly.
        if k > 8 && qk * (dc.abs() + 1.0) * (k as f64) < 1e-13 * (sum.abs() + 1.0) {
            break;
        }
        if k > 10_000_000 {
            break; // safety valve for pathological (q ≈ 1) inputs
        }
        k += 1;
    }
    utility.h(delta) - sum
}

/// Social welfare under homogeneous contacts, discrete time
/// (Eq. 2 dedicated / Eq. 4 pure P2P).
pub fn social_welfare_homogeneous_discrete(
    system: &SystemModel,
    demand: &DemandRates,
    utility: &dyn DelayUtility,
    counts: &[f64],
    delta: f64,
) -> f64 {
    assert_eq!(counts.len(), demand.items());
    let mu = system.contact_rate;
    let n = system.clients() as f64;
    let mut total = 0.0;
    for (i, &x) in counts.iter().enumerate() {
        let d = demand.rate(i);
        if d == 0.0 {
            continue;
        }
        let g = if system.population.is_pure_p2p() {
            debug_assert!(!utility.requires_dedicated());
            let self_prob = (x / n).min(1.0);
            let wait_term = utility.h(delta) - item_gain_discrete(utility, x, mu, delta);
            // Eq. 4: h(δ) − (1 − x/N)·Σ…
            if wait_term.is_infinite() && self_prob >= 1.0 {
                utility.h(delta)
            } else {
                utility.h(delta) - (1.0 - self_prob) * wait_term
            }
        } else {
            item_gain_discrete(utility, x, mu, delta)
        };
        if g == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        total += d * g;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Popularity;
    use crate::utility::{Exponential, NegLog, Power, Step};

    fn demand50() -> DemandRates {
        Popularity::pareto(50, 1.0).demand_rates(1.0)
    }

    #[test]
    fn dedicated_step_closed_form() {
        // Eq. 3 with step utility: U = Σ d_i (1 − e^{−μτ x_i})  (Table 1).
        let sys = SystemModel::dedicated(100, 50, 5, 0.05);
        let d = demand50();
        let u = Step::new(1.0);
        let counts = vec![5.0; 50];
        let got = social_welfare_homogeneous(&sys, &d, &u, &counts);
        let expect: f64 = d
            .rates()
            .iter()
            .map(|di| di * (1.0 - (-0.05f64 * 1.0 * 5.0).exp()))
            .sum();
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn pure_p2p_corrections_shrink_with_population() {
        // The (1 − x/N) correction vanishes as N grows: pure-P2P welfare
        // approaches dedicated welfare (paper §4.2).
        let d = demand50();
        let u = Exponential::new(0.5);
        let counts = vec![3.0; 50];
        let dedicated = social_welfare_homogeneous(
            &SystemModel::dedicated(1000, 1000, 5, 0.05),
            &d,
            &u,
            &counts,
        );
        let small =
            social_welfare_homogeneous(&SystemModel::pure_p2p(10, 5, 0.05), &d, &u, &counts);
        let large =
            social_welfare_homogeneous(&SystemModel::pure_p2p(10_000, 5, 0.05), &d, &u, &counts);
        assert!((large - dedicated).abs() < (small - dedicated).abs());
        assert!((large - dedicated).abs() < 1e-3);
    }

    #[test]
    fn pure_p2p_self_cache_bonus() {
        // With x replicas among N pure-P2P nodes, welfare exceeds the
        // dedicated value because of immediate self-service.
        let d = demand50();
        let u = Step::new(1.0);
        let counts = vec![10.0; 50];
        let p2p = social_welfare_homogeneous(&SystemModel::pure_p2p(50, 5, 0.05), &d, &u, &counts);
        let ded =
            social_welfare_homogeneous(&SystemModel::dedicated(50, 50, 5, 0.05), &d, &u, &counts);
        assert!(p2p > ded);
    }

    #[test]
    fn unreplicated_item_with_cost_utility_is_neg_inf() {
        let sys = SystemModel::dedicated(10, 10, 5, 0.05);
        let d = demand50();
        let u = Power::new(0.0); // waiting cost, h(∞) = −∞
        let mut counts = vec![1.0; 50];
        counts[7] = 0.0;
        assert_eq!(
            social_welfare_homogeneous(&sys, &d, &u, &counts),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn unreplicated_item_without_demand_is_ignored() {
        let sys = SystemModel::dedicated(10, 10, 5, 0.05);
        let d = DemandRates::new(vec![1.0, 0.0]);
        let u = Power::new(0.0);
        let counts = vec![2.0, 0.0];
        let got = social_welfare_homogeneous(&sys, &d, &u, &counts);
        assert!(got.is_finite());
    }

    #[test]
    fn neglog_welfare_matches_table() {
        // Table 1: U = Σ d_i ln(x_i) − cst, with cst = −(ln μ + γ) per unit
        // demand. Differences of U across allocations must equal
        // Σ d_i Δln x_i exactly.
        let sys = SystemModel::dedicated(10, 10, 5, 0.05);
        let d = DemandRates::new(vec![2.0, 1.0]);
        let u = NegLog::new();
        let a = social_welfare_homogeneous(&sys, &d, &u, &[4.0, 2.0]);
        let b = social_welfare_homogeneous(&sys, &d, &u, &[2.0, 4.0]);
        let expect = 2.0 * (4.0f64 / 2.0).ln() + 1.0 * (2.0f64 / 4.0).ln();
        assert!(((a - b) - expect).abs() < 1e-12);
    }

    #[test]
    fn discrete_converges_to_continuous() {
        // Paper §3.4: the discrete-time model approaches the continuous
        // model as δ → 0.
        let sys = SystemModel::dedicated(100, 50, 5, 0.05);
        let d = demand50();
        let counts = vec![5.0; 50];
        for u in [
            Box::new(Step::new(1.0)) as Box<dyn DelayUtility>,
            Box::new(Exponential::new(0.5)),
        ] {
            let cont = social_welfare_homogeneous(&sys, &d, u.as_ref(), &counts);
            let mut prev_err = f64::INFINITY;
            for delta in [0.5, 0.1, 0.02] {
                let disc =
                    social_welfare_homogeneous_discrete(&sys, &d, u.as_ref(), &counts, delta);
                let err = (disc - cont).abs();
                assert!(err < prev_err, "δ={delta}: {err} ≥ {prev_err}");
                prev_err = err;
            }
            assert!(prev_err < 5e-3, "residual {prev_err}");
        }
    }

    #[test]
    fn discrete_step_exact_value() {
        // Step(τ), slot δ, x replicas: P(fulfilled within deadline) in the
        // discrete model is 1 − (1−μδ)^{x·(⌊τ/δ⌋+1)} … computed against the
        // direct geometric formula. Contacts in slot k ≥ 1 fulfill at kδ;
        // the request misses iff no contact in slots 1..=⌊τ/δ⌋… plus the
        // k=0 slot convention of Δc. Validate against brute-force series.
        let u = Step::new(1.0);
        let (mu, delta, x) = (0.05, 0.1, 4.0);
        let got = item_gain_discrete(&u, x, mu, delta);
        // Brute force: h(δ) − Σ_k (1−μδ)^{xk} Δc(kδ)
        let q = 1.0 - mu * delta;
        let brute: f64 = (1..=200u64)
            .map(|k| q.powf(x * k as f64) * u.delta_c(k, delta))
            .sum();
        assert!((got - (u.h(delta) - brute)).abs() < 1e-12);
    }

    #[test]
    fn discrete_zero_replicas() {
        let u = Step::new(1.0);
        assert_eq!(item_gain_discrete(&u, 0.0, 0.05, 0.1), 0.0);
        let p = Power::new(0.5);
        assert_eq!(item_gain_discrete(&p, 0.0, 0.05, 0.1), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "μδ < 1")]
    fn discrete_rejects_large_slot() {
        let u = Step::new(1.0);
        let _ = item_gain_discrete(&u, 1.0, 0.5, 3.0);
    }

    #[test]
    fn welfare_monotone_in_replicas() {
        let sys = SystemModel::dedicated(100, 50, 5, 0.05);
        let d = demand50();
        let u = Exponential::new(1.0);
        let mut prev = f64::NEG_INFINITY;
        for x in 1..=10 {
            let counts = vec![x as f64; 50];
            let w = social_welfare_homogeneous(&sys, &d, &u, &counts);
            assert!(w > prev);
            prev = w;
        }
    }
}
