//! Heterogeneous-contact welfare: Lemma 1 in full generality.
//!
//! For arbitrary pairwise meeting rates `μ_{m,n}` the expected gain of a
//! request for item `i` at client `n` is
//!
//! ```text
//! U_{i,n}(x) = x_{i,n}·h(0⁺) + (1 − x_{i,n})·G(λ_{i,n}),
//! λ_{i,n} = Σ_{m ∈ S} x_{i,m}·μ_{m,n}
//! ```
//!
//! (the `(1 − x_{i,n})` factor is the paper's immediate-fulfillment term),
//! and the social welfare is `U(x) = Σ_i d_i Σ_n π_{i,n} U_{i,n}(x)`.
//! This module evaluates OPT on measured contact traces: rates are
//! estimated from the trace (memoryless approximation, §6.3) and fed to
//! the submodular greedy of Theorem 1.

use crate::allocation::AllocationMatrix;
use crate::demand::{DemandProfile, DemandRates};
use crate::utility::DelayUtility;

/// Symmetric pairwise contact-rate matrix `μ_{a,b}` over a node set.
#[derive(Clone, Debug, PartialEq)]
pub struct ContactRates {
    nodes: usize,
    /// Row-major `nodes × nodes`, symmetric, zero diagonal.
    rates: Vec<f64>,
}

impl ContactRates {
    /// All pairs meet at rate `mu` (zero diagonal).
    pub fn homogeneous(nodes: usize, mu: f64) -> Self {
        assert!(mu >= 0.0 && mu.is_finite());
        let mut rates = vec![mu; nodes * nodes];
        for a in 0..nodes {
            rates[a * nodes + a] = 0.0;
        }
        ContactRates { nodes, rates }
    }

    /// Build from a function of the (unordered) pair.
    pub fn from_fn(nodes: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut rates = vec![0.0; nodes * nodes];
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                let mu = f(a, b);
                assert!(
                    mu >= 0.0 && mu.is_finite(),
                    "rate for ({a},{b}) must be ≥ 0"
                );
                rates[a * nodes + b] = mu;
                rates[b * nodes + a] = mu;
            }
        }
        ContactRates { nodes, rates }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Rate `μ_{a,b}`.
    #[inline]
    pub fn rate(&self, a: usize, b: usize) -> f64 {
        self.rates[a * self.nodes + b]
    }

    /// Set the rate of an (unordered) pair.
    pub fn set_rate(&mut self, a: usize, b: usize, mu: f64) {
        assert!(a != b, "diagonal rates are fixed at zero");
        assert!(mu >= 0.0 && mu.is_finite());
        self.rates[a * self.nodes + b] = mu;
        self.rates[b * self.nodes + a] = mu;
    }

    /// Mean off-diagonal rate (the `μ` a homogeneous approximation would
    /// use).
    pub fn mean_rate(&self) -> f64 {
        if self.nodes < 2 {
            return 0.0;
        }
        let total: f64 = self.rates.iter().sum();
        total / (self.nodes * (self.nodes - 1)) as f64
    }

    /// Total meeting rate of node `a` with all others.
    pub fn node_degree(&self, a: usize) -> f64 {
        (0..self.nodes).map(|b| self.rate(a, b)).sum()
    }
}

/// A heterogeneous system: which nodes serve, which request, at what rates.
///
/// `servers[k]` is the node id backing column `k` of an
/// [`AllocationMatrix`]; `clients[j]` the node id of client `j` (the index
/// used by [`DemandProfile`]).
#[derive(Clone, Debug)]
pub struct HeterogeneousSystem {
    /// Pairwise meeting rates over the full node set.
    pub rates: ContactRates,
    /// Node ids acting as servers (allocation matrix columns).
    pub servers: Vec<usize>,
    /// Node ids acting as clients (demand profile columns).
    pub clients: Vec<usize>,
    /// Per-server cache capacity ρ.
    pub rho: usize,
}

impl HeterogeneousSystem {
    /// Pure-P2P system over all nodes of `rates`.
    pub fn pure_p2p(rates: ContactRates, rho: usize) -> Self {
        let all: Vec<usize> = (0..rates.nodes()).collect();
        HeterogeneousSystem {
            rates,
            servers: all.clone(),
            clients: all,
            rho,
        }
    }

    /// Dedicated system: `servers` and `clients` must be disjoint node-id
    /// lists (not checked — the welfare formulas are valid regardless, the
    /// distinction only matters for infinite-`h(0⁺)` utilities).
    pub fn dedicated(
        rates: ContactRates,
        servers: Vec<usize>,
        clients: Vec<usize>,
        rho: usize,
    ) -> Self {
        HeterogeneousSystem {
            rates,
            servers,
            clients,
            rho,
        }
    }

    /// Fulfillment rate `λ_{i,n}` seen by client node `client_node` for an
    /// item placed at the given server columns.
    pub fn fulfillment_rate(&self, holders: &[usize], client_node: usize) -> f64 {
        holders
            .iter()
            .map(|&col| self.rates.rate(self.servers[col], client_node))
            .sum()
    }
}

/// Welfare contribution of a single item under Lemma 1:
/// `d_i Σ_n π_{i,n} U_{i,n}(x)`.
///
/// `holders` lists the server *columns* currently caching the item.
pub fn item_welfare_heterogeneous(
    system: &HeterogeneousSystem,
    item: usize,
    holders: &[usize],
    demand: &DemandRates,
    profile: &DemandProfile,
    utility: &dyn DelayUtility,
) -> f64 {
    let d = demand.rate(item);
    if d == 0.0 {
        return 0.0;
    }
    let mut total = 0.0;
    for (j, &client_node) in system.clients.iter().enumerate() {
        let pi = profile.pi(item, j);
        if pi == 0.0 {
            continue;
        }
        let self_cached = holders
            .iter()
            .any(|&col| system.servers[col] == client_node);
        let g = if self_cached {
            debug_assert!(
                !utility.requires_dedicated(),
                "self-cached client with h(0+)=∞: use a dedicated population"
            );
            utility.h_zero()
        } else {
            let lambda = system.fulfillment_rate(holders, client_node);
            utility.gain(lambda)
        };
        if g == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        total += pi * g;
    }
    d * total
}

/// Full social welfare `U(x)` for a heterogeneous system (Lemma 1 summed
/// over items, Eq. 1).
pub fn social_welfare_heterogeneous(
    system: &HeterogeneousSystem,
    alloc: &AllocationMatrix,
    demand: &DemandRates,
    profile: &DemandProfile,
    utility: &dyn DelayUtility,
) -> f64 {
    assert_eq!(alloc.servers(), system.servers.len());
    assert_eq!(alloc.items(), demand.items());
    assert_eq!(profile.nodes(), system.clients.len());
    let mut total = 0.0;
    for item in 0..alloc.items() {
        let holders = alloc.holders(item);
        let w = item_welfare_heterogeneous(system, item, &holders, demand, profile, utility);
        if w == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        total += w;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Popularity;
    use crate::types::SystemModel;
    use crate::utility::{Exponential, Step};
    use crate::welfare::social_welfare_homogeneous;

    #[test]
    fn contact_rates_basics() {
        let mut r = ContactRates::homogeneous(4, 0.1);
        assert_eq!(r.rate(0, 0), 0.0);
        assert_eq!(r.rate(1, 2), 0.1);
        r.set_rate(1, 2, 0.5);
        assert_eq!(r.rate(2, 1), 0.5);
        assert!((r.node_degree(1) - (0.1 + 0.5 + 0.1)).abs() < 1e-12);
        let mean = r.mean_rate();
        assert!(mean > 0.1 && mean < 0.2);
    }

    #[test]
    fn from_fn_is_symmetric() {
        let r = ContactRates::from_fn(3, |a, b| (a + b) as f64 * 0.01);
        assert_eq!(r.rate(0, 2), r.rate(2, 0));
        assert_eq!(r.rate(0, 0), 0.0);
        assert!((r.rate(1, 2) - 0.03).abs() < 1e-15);
    }

    #[test]
    fn homogeneous_special_case_matches_closed_form() {
        // A heterogeneous evaluation with constant rates must reproduce the
        // homogeneous pure-P2P closed form (Eq. 5) when placements are
        // "generic" — here we average over requesters via the π profile, so
        // the (1 − x/N) factor appears exactly if each holder set has the
        // right size. Use x_i replicas on distinct servers and uniform π.
        let nodes = 20;
        let mu = 0.05;
        let items = 4;
        let rho = 2;
        let rates = ContactRates::homogeneous(nodes, mu);
        let system = HeterogeneousSystem::pure_p2p(rates, rho);
        let demand = Popularity::pareto(items, 1.0).demand_rates(1.0);
        let profile = DemandProfile::uniform(items, nodes);
        let utility = Step::new(1.0);

        let counts = crate::allocation::ReplicaCounts::new(vec![5, 3, 2, 1], nodes);
        let alloc = AllocationMatrix::from_counts(&counts, rho);
        let het = social_welfare_heterogeneous(&system, &alloc, &demand, &profile, &utility);

        let sys = SystemModel::pure_p2p(nodes, rho, mu);
        let hom = social_welfare_homogeneous(&sys, &demand, &utility, &counts.as_f64());
        assert!(
            (het - hom).abs() < 1e-10,
            "heterogeneous {het} vs homogeneous {hom}"
        );
    }

    #[test]
    fn dedicated_population_no_self_cache() {
        // Servers 0..3, clients 4..9: client gains come only from contact
        // rates to the holders.
        let rates = ContactRates::from_fn(10, |a, b| if a < 4 || b < 4 { 0.1 } else { 0.0 });
        let system = HeterogeneousSystem::dedicated(rates, vec![0, 1, 2, 3], (4..10).collect(), 2);
        let demand = DemandRates::new(vec![1.0]);
        let profile = DemandProfile::uniform(1, 6);
        let utility = Exponential::new(0.5);
        let mut alloc = AllocationMatrix::new(1, 4, 2);
        alloc.place(0, 0);
        alloc.place(0, 2);
        let w = social_welfare_heterogeneous(&system, &alloc, &demand, &profile, &utility);
        // Every client sees λ = 2 × 0.1 = 0.2 ⇒ gain = 0.2/0.7.
        let expect = 0.2 / 0.7;
        assert!((w - expect).abs() < 1e-12, "{w} vs {expect}");
    }

    #[test]
    fn submodularity_of_item_welfare() {
        // Theorem 1: marginal gain of adding a holder diminishes as the
        // holder set grows — checked on a heterogeneous instance.
        let rates = ContactRates::from_fn(8, |a, b| 0.01 * ((a * b) % 5 + 1) as f64);
        let system = HeterogeneousSystem::pure_p2p(rates, 3);
        let demand = DemandRates::new(vec![1.0]);
        let profile = DemandProfile::uniform(1, 8);
        let utility = Step::new(2.0);

        let small = vec![1usize];
        let large = vec![1usize, 3, 5];
        let new_holder = 6usize;
        let f = |set: &[usize]| {
            item_welfare_heterogeneous(&system, 0, set, &demand, &profile, &utility)
        };
        let mut small_plus = small.clone();
        small_plus.push(new_holder);
        let mut large_plus = large.clone();
        large_plus.push(new_holder);
        let gain_small = f(&small_plus) - f(&small);
        let gain_large = f(&large_plus) - f(&large);
        assert!(
            gain_small >= gain_large - 1e-12,
            "submodularity violated: {gain_small} < {gain_large}"
        );
    }

    #[test]
    fn zero_demand_items_are_free() {
        let rates = ContactRates::homogeneous(4, 0.1);
        let system = HeterogeneousSystem::pure_p2p(rates, 1);
        let demand = DemandRates::new(vec![0.0]);
        let profile = DemandProfile::uniform(1, 4);
        let w = item_welfare_heterogeneous(&system, 0, &[], &demand, &profile, &Step::new(1.0));
        assert_eq!(w, 0.0);
    }

    #[test]
    fn mean_rate_single_node() {
        assert_eq!(ContactRates::homogeneous(1, 0.5).mean_rate(), 0.0);
    }
}
