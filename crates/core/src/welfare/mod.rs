//! Social-welfare evaluation: the objective `U(x)` of Eq. (1).
//!
//! Three levels of generality, matching the paper:
//!
//! * `homogeneous` — all pairs meet at the same rate `μ`; welfare depends
//!   only on replica counts (Eqs. 2–5, both populations, both contact
//!   models);
//! * `heterogeneous` — arbitrary pairwise rate matrix `μ_{m,n}` and full
//!   placement matrix (Lemma 1), used to compute OPT on contact traces.
//!
//! The bridge between the two is the identity
//! `∫₀^∞ e^{−λt} c(t) dt = h(0⁺) − G(λ)` (integration by parts), where
//! `G(λ) = E[h(Y)]`, `Y ~ Exp(λ)` is [`crate::utility::DelayUtility::gain`].
//! Every formula below is expressed through `G`, which keeps the
//! infinite-`h(0⁺)` families (inverse power, neg-log) finite wherever the
//! paper's restriction (dedicated nodes) is respected.

mod heterogeneous;
mod homogeneous;
mod mixed;

pub use heterogeneous::{
    item_welfare_heterogeneous, social_welfare_heterogeneous, ContactRates, HeterogeneousSystem,
};
pub use homogeneous::{
    expected_gain_continuous, expected_gain_pure_p2p, item_gain_discrete,
    social_welfare_homogeneous, social_welfare_homogeneous_discrete,
};
pub use mixed::{greedy_homogeneous_mixed, social_welfare_homogeneous_mixed, UtilityCatalog};
