//! Per-item delay-utilities: `h_i` differs across the catalog.
//!
//! §3.2: "Since different types of content may be subject to differing
//! user expectations, we allow each content item `i` … its own
//! delay-utility function `h_i`." All of §4's structure survives — the
//! welfare stays a sum of per-item concave terms, so the greedy of
//! Theorem 2 remains exact and Property 1 generalizes to
//! `d_i·φ_i(x̃_i) = d_j·φ_j(x̃_j)` with *item-specific* transforms.

use std::sync::Arc;

use crate::allocation::ReplicaCounts;
use crate::demand::DemandRates;
use crate::solver::HeapKey;
use crate::types::SystemModel;
use crate::utility::DelayUtility;
use crate::welfare::{expected_gain_continuous, expected_gain_pure_p2p};

/// A catalog assigning each item its own delay-utility.
#[derive(Clone)]
pub struct UtilityCatalog {
    utilities: Vec<Arc<dyn DelayUtility>>,
}

impl UtilityCatalog {
    /// Build from one utility per item.
    ///
    /// # Panics
    /// Panics on an empty catalog.
    pub fn new(utilities: Vec<Arc<dyn DelayUtility>>) -> Self {
        assert!(!utilities.is_empty(), "catalog must not be empty");
        UtilityCatalog { utilities }
    }

    /// The same utility for every item (degenerate case).
    pub fn homogeneous(items: usize, utility: Arc<dyn DelayUtility>) -> Self {
        assert!(items > 0);
        UtilityCatalog {
            utilities: vec![utility; items],
        }
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.utilities.len()
    }

    /// Utility of item `i`.
    pub fn utility(&self, i: usize) -> &dyn DelayUtility {
        self.utilities[i].as_ref()
    }

    /// Whether any item's utility requires a dedicated population.
    pub fn requires_dedicated(&self) -> bool {
        self.utilities.iter().any(|u| u.requires_dedicated())
    }
}

impl std::fmt::Debug for UtilityCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.utilities.iter().map(|u| u.kind()))
            .finish()
    }
}

/// Social welfare with per-item utilities under homogeneous contacts
/// (the mixed-`h_i` generalization of Eqs. 3/5).
pub fn social_welfare_homogeneous_mixed(
    system: &SystemModel,
    demand: &DemandRates,
    catalog: &UtilityCatalog,
    counts: &[f64],
) -> f64 {
    assert_eq!(
        catalog.items(),
        demand.items(),
        "catalog/demand size mismatch"
    );
    assert_eq!(counts.len(), demand.items(), "allocation size mismatch");
    let mu = system.contact_rate;
    let mut total = 0.0;
    for (i, &x) in counts.iter().enumerate() {
        let d = demand.rate(i);
        if d == 0.0 {
            continue;
        }
        let u = catalog.utility(i);
        let g = if system.population.is_pure_p2p() {
            expected_gain_pure_p2p(u, x, system.clients(), mu)
        } else {
            expected_gain_continuous(u, x, mu)
        };
        if g == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        total += d * g;
    }
    total
}

/// Exact greedy optimum with per-item utilities (Theorem 2 still applies:
/// the objective is a sum of per-item concave functions of the counts).
pub fn greedy_homogeneous_mixed(
    system: &SystemModel,
    demand: &DemandRates,
    catalog: &UtilityCatalog,
) -> ReplicaCounts {
    assert_eq!(catalog.items(), demand.items());
    assert!(
        !(catalog.requires_dedicated() && system.population.is_pure_p2p()),
        "catalog contains h(0+)=∞ utilities: use a dedicated population"
    );
    let items = demand.items();
    let servers = system.servers();
    let mut counts = ReplicaCounts::zero(items, servers);
    let budget = system.total_slots();
    if budget == 0 || servers == 0 {
        return counts;
    }

    let gain = |i: usize, x: f64| {
        let u = catalog.utility(i);
        if system.population.is_pure_p2p() {
            expected_gain_pure_p2p(u, x, system.clients(), system.contact_rate)
        } else {
            expected_gain_continuous(u, x, system.contact_rate)
        }
    };
    let key_for = |i: usize, x: u32| {
        let curr = gain(i, x as f64);
        let m = if curr == f64::NEG_INFINITY {
            f64::INFINITY
        } else {
            (gain(i, (x + 1) as f64) - curr) * demand.rate(i)
        };
        if m.is_infinite() {
            HeapKey::new(f64::INFINITY, demand.rate(i))
        } else {
            HeapKey::new(m, demand.rate(i))
        }
    };

    let mut heap: std::collections::BinaryHeap<(HeapKey, usize)> = (0..items)
        .filter(|&i| demand.rate(i) > 0.0)
        .map(|i| (key_for(i, 0), i))
        .collect();
    for _ in 0..budget {
        let Some((_, i)) = heap.pop() else { break };
        counts.add(i);
        let x = counts.count(i);
        if (x as usize) < servers {
            heap.push((key_for(i, x), i));
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Popularity;
    use crate::utility::{Exponential, Step};
    use crate::welfare::social_welfare_homogeneous;

    fn system() -> SystemModel {
        SystemModel::pure_p2p(50, 5, 0.05)
    }

    #[test]
    fn homogeneous_catalog_matches_single_utility_paths() {
        let demand = Popularity::pareto(10, 1.0).demand_rates(1.0);
        let single = Step::new(5.0);
        let catalog = UtilityCatalog::homogeneous(10, Arc::new(Step::new(5.0)));
        let counts: Vec<f64> = (0..10).map(|i| 1.0 + i as f64 % 4.0).collect();
        let mixed = social_welfare_homogeneous_mixed(&system(), &demand, &catalog, &counts);
        let plain = social_welfare_homogeneous(&system(), &demand, &single, &counts);
        assert!((mixed - plain).abs() < 1e-12);

        let g_mixed = greedy_homogeneous_mixed(&system(), &demand, &catalog);
        let g_plain = crate::solver::greedy::greedy_homogeneous(&system(), &demand, &single);
        let w_mixed =
            social_welfare_homogeneous_mixed(&system(), &demand, &catalog, &g_mixed.as_f64());
        let w_plain = social_welfare_homogeneous(&system(), &demand, &single, &g_plain.as_f64());
        assert!((w_mixed - w_plain).abs() < 1e-12);
    }

    #[test]
    fn urgent_items_get_more_replicas_at_equal_demand() {
        // Two items with identical demand; item 0 is time-critical
        // (ν large ⇒ value decays fast), item 1 is patient. The optimal
        // cache must favor the urgent one.
        let demand = crate::demand::DemandRates::new(vec![1.0, 1.0]);
        let catalog = UtilityCatalog::new(vec![
            Arc::new(Exponential::new(2.0)),
            Arc::new(Exponential::new(0.01)),
        ]);
        // ρ = 1 keeps the 50-slot budget scarce (both items would saturate
        // the |S| cap under ρ = 5).
        let tight = SystemModel::pure_p2p(50, 1, 0.05);
        let opt = greedy_homogeneous_mixed(&tight, &demand, &catalog);
        assert!(
            opt.count(0) > opt.count(1),
            "urgent item got {} vs patient {}",
            opt.count(0),
            opt.count(1)
        );
    }

    #[test]
    fn mixed_greedy_beats_any_single_utility_greedy_on_mixed_catalogs() {
        // Solving with the wrong (uniform) impatience model must not beat
        // solving with the true mixed model, evaluated under the truth.
        let demand = Popularity::pareto(8, 1.0).demand_rates(1.0);
        let mut utilities: Vec<Arc<dyn DelayUtility>> = Vec::new();
        for i in 0..8 {
            if i % 2 == 0 {
                utilities.push(Arc::new(Step::new(1.0)));
            } else {
                utilities.push(Arc::new(Step::new(100.0)));
            }
        }
        let catalog = UtilityCatalog::new(utilities);
        let opt_mixed = greedy_homogeneous_mixed(&system(), &demand, &catalog);
        let w_mixed =
            social_welfare_homogeneous_mixed(&system(), &demand, &catalog, &opt_mixed.as_f64());
        for tau in [1.0, 10.0, 100.0] {
            let wrong =
                crate::solver::greedy::greedy_homogeneous(&system(), &demand, &Step::new(tau));
            let w_wrong =
                social_welfare_homogeneous_mixed(&system(), &demand, &catalog, &wrong.as_f64());
            assert!(
                w_mixed >= w_wrong - 1e-9,
                "mixed-aware greedy ({w_mixed}) lost to τ={tau} model ({w_wrong})"
            );
        }
    }

    #[test]
    fn debug_formats_kinds() {
        let catalog = UtilityCatalog::new(vec![
            Arc::new(Step::new(1.0)),
            Arc::new(Exponential::new(0.5)),
        ]);
        let s = format!("{catalog:?}");
        assert!(s.contains("Step") && s.contains("Exponential"));
        assert_eq!(catalog.items(), 2);
        assert!(!catalog.requires_dedicated());
    }

    #[test]
    #[should_panic(expected = "catalog must not be empty")]
    fn rejects_empty_catalog() {
        let _ = UtilityCatalog::new(vec![]);
    }
}
