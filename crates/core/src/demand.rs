//! Content popularity and per-node demand profiles (§3.3).
//!
//! Demand for item `i` arrives at total rate `d_i`; node `n` originates a
//! fraction `π_{i,n}` of it (so node `n` requests item `i` at rate
//! `d_i·π_{i,n}`). The paper's simulations use a Pareto (Zipf-like)
//! popularity `d_i ∝ i^{−ω}` with `ω = 1` and a uniform profile
//! `π_{i,n} = 1/|C|`; community-clustered profiles model the "clustered and
//! evolving demands" extension mentioned in §7.

use crate::rng::{AliasTable, Xoshiro256};

/// A normalized content-popularity distribution over a catalog of items.
#[derive(Clone, Debug, PartialEq)]
pub struct Popularity {
    /// Probability of each item; sums to 1.
    weights: Vec<f64>,
}

impl Popularity {
    /// Pareto/Zipf popularity `p_i ∝ (i+1)^{−ω}` over `items` items — the
    /// paper's default with `ω = 1`.
    ///
    /// # Panics
    /// Panics if `items == 0` or `ω` is not finite.
    pub fn pareto(items: usize, omega: f64) -> Self {
        assert!(items > 0, "catalog must not be empty");
        assert!(omega.is_finite(), "ω must be finite");
        let raw: Vec<f64> = (1..=items).map(|rank| (rank as f64).powf(-omega)).collect();
        Popularity::from_weights(raw)
    }

    /// Uniform popularity `p_i = 1/|I|`.
    pub fn uniform(items: usize) -> Self {
        assert!(items > 0, "catalog must not be empty");
        Popularity {
            weights: vec![1.0 / items as f64; items],
        }
    }

    /// Geometrically decaying popularity `p_i ∝ r^i`, `0 < r ≤ 1`.
    pub fn geometric(items: usize, ratio: f64) -> Self {
        assert!(items > 0, "catalog must not be empty");
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        let raw: Vec<f64> = (0..items).map(|i| ratio.powi(i as i32)).collect();
        Popularity::from_weights(raw)
    }

    /// Arbitrary non-negative weights, normalized to sum to one.
    ///
    /// # Panics
    /// Panics on empty/negative/non-finite weights or an all-zero sum.
    pub fn from_weights(raw: Vec<f64>) -> Self {
        assert!(!raw.is_empty(), "catalog must not be empty");
        let total: f64 = raw
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be finite and ≥ 0");
                w
            })
            .sum();
        assert!(total > 0.0, "popularity weights must not all be zero");
        Popularity {
            weights: raw.into_iter().map(|w| w / total).collect(),
        }
    }

    /// Number of items in the catalog.
    pub fn items(&self) -> usize {
        self.weights.len()
    }

    /// Probability of item `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// The normalized probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.weights
    }

    /// Turn the distribution into absolute demand rates with a given total
    /// request rate (requests per unit time across the whole system).
    pub fn demand_rates(&self, total_rate: f64) -> DemandRates {
        assert!(total_rate > 0.0 && total_rate.is_finite());
        DemandRates {
            rates: self.weights.iter().map(|p| p * total_rate).collect(),
        }
    }

    /// An O(1) sampler of item indices distributed according to popularity.
    pub fn sampler(&self) -> AliasTable {
        AliasTable::new(&self.weights)
    }
}

/// Absolute demand rates `d_i` (requests per unit time per item,
/// system-wide).
#[derive(Clone, Debug, PartialEq)]
pub struct DemandRates {
    rates: Vec<f64>,
}

impl DemandRates {
    /// Wrap raw rates.
    ///
    /// # Panics
    /// Panics on empty input or non-finite/negative rates.
    pub fn new(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "demand rates must not be empty");
        for &d in &rates {
            assert!(
                d >= 0.0 && d.is_finite(),
                "demand rates must be finite and ≥ 0"
            );
        }
        DemandRates { rates }
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.rates.len()
    }

    /// Rate of item `i`.
    pub fn rate(&self, i: usize) -> f64 {
        self.rates[i]
    }

    /// All rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Total request rate `Σ_i d_i`.
    pub fn total(&self) -> f64 {
        self.rates.iter().sum()
    }
}

/// Per-node demand profile `π_{i,n}`: how the demand of each item is split
/// across client nodes. Row `i` sums to 1 over nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct DemandProfile {
    items: usize,
    nodes: usize,
    /// Row-major `items × nodes`.
    pi: Vec<f64>,
}

impl DemandProfile {
    /// The paper's default: all items equally popular everywhere,
    /// `π_{i,n} = 1/|C|`.
    pub fn uniform(items: usize, nodes: usize) -> Self {
        assert!(items > 0 && nodes > 0);
        DemandProfile {
            items,
            nodes,
            pi: vec![1.0 / nodes as f64; items * nodes],
        }
    }

    /// Community-clustered profile: nodes are split round-robin into
    /// `communities` groups; item `i` is preferentially (weight
    /// `affinity ≥ 1`) demanded by community `i mod communities`.
    ///
    /// Models the "different populations of nodes have different popularity
    /// profiles" remark of §3.3 and the clustered-demand extension of §7.
    pub fn clustered(items: usize, nodes: usize, communities: usize, affinity: f64) -> Self {
        assert!(items > 0 && nodes > 0 && communities > 0);
        assert!(affinity >= 1.0, "affinity must be ≥ 1");
        let mut pi = vec![0.0; items * nodes];
        for i in 0..items {
            let home = i % communities;
            let mut row_total = 0.0;
            for n in 0..nodes {
                let w = if n % communities == home {
                    affinity
                } else {
                    1.0
                };
                pi[i * nodes + n] = w;
                row_total += w;
            }
            for n in 0..nodes {
                pi[i * nodes + n] /= row_total;
            }
        }
        DemandProfile { items, nodes, pi }
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Number of client nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// `π_{i,n}`.
    pub fn pi(&self, item: usize, node: usize) -> f64 {
        self.pi[item * self.nodes + node]
    }

    /// Row of `π_{i,·}` for one item.
    pub fn row(&self, item: usize) -> &[f64] {
        &self.pi[item * self.nodes..(item + 1) * self.nodes]
    }

    /// Sample the originating node for a request of item `i`.
    pub fn sample_origin(&self, item: usize, rng: &mut Xoshiro256) -> usize {
        let row = self.row(item);
        let mut u = rng.f64();
        for (n, &p) in row.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return n;
            }
        }
        self.nodes - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_is_normalized_and_decreasing() {
        let p = Popularity::pareto(50, 1.0);
        assert_eq!(p.items(), 50);
        let total: f64 = p.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        for i in 1..50 {
            assert!(p.probability(i) < p.probability(i - 1));
        }
        // ω = 1 ⇒ p_0 / p_9 = 10.
        assert!((p.probability(0) / p.probability(9) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pareto_omega_zero_is_uniform() {
        let p = Popularity::pareto(10, 0.0);
        let u = Popularity::uniform(10);
        for i in 0..10 {
            assert!((p.probability(i) - u.probability(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn geometric_decays() {
        let p = Popularity::geometric(5, 0.5);
        assert!((p.probability(0) / p.probability(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn demand_rates_scale() {
        let d = Popularity::pareto(10, 1.0).demand_rates(5.0);
        assert!((d.total() - 5.0).abs() < 1e-12);
        assert_eq!(d.items(), 10);
        assert!(d.rate(0) > d.rate(9));
    }

    #[test]
    fn sampler_matches_popularity() {
        let p = Popularity::pareto(5, 1.0);
        let table = p.sampler();
        let mut rng = Xoshiro256::seed_from_u64(17);
        let n = 200_000;
        let mut counts = [0u32; 5];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let expect = n as f64 * p.probability(i);
            assert!(
                (count as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "item {i}: {count} vs {expect}"
            );
        }
    }

    #[test]
    fn uniform_profile_rows_sum_to_one() {
        let prof = DemandProfile::uniform(3, 7);
        for i in 0..3 {
            let s: f64 = prof.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!((prof.pi(i, 0) - 1.0 / 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn clustered_profile_prefers_home_community() {
        let prof = DemandProfile::clustered(4, 12, 4, 5.0);
        // Item 0's home community is nodes {0, 4, 8}.
        assert!(prof.pi(0, 0) > prof.pi(0, 1));
        assert!((prof.pi(0, 0) - prof.pi(0, 4)).abs() < 1e-12);
        for i in 0..4 {
            let s: f64 = prof.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn clustered_affinity_one_is_uniform() {
        let a = DemandProfile::clustered(3, 6, 2, 1.0);
        let b = DemandProfile::uniform(3, 6);
        for i in 0..3 {
            for n in 0..6 {
                assert!((a.pi(i, n) - b.pi(i, n)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sample_origin_distribution() {
        let prof = DemandProfile::clustered(1, 4, 2, 9.0);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let n = 100_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[prof.sample_origin(0, &mut rng)] += 1;
        }
        for (node, &count) in counts.iter().enumerate() {
            let expect = n as f64 * prof.pi(0, node);
            assert!(
                (count as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "node {node}: {count} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn rejects_empty_catalog() {
        let _ = Popularity::pareto(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and ≥ 0")]
    fn rejects_negative_rate() {
        let _ = DemandRates::new(vec![1.0, -0.5]);
    }
}
