//! # impatience-core
//!
//! Theory layer of the *Age of Impatience* reproduction (Reich & Chaintreau,
//! CoNEXT 2009): delay-utility functions, social-welfare computation, and
//! optimal cache-allocation solvers for P2P content dissemination over
//! opportunistic (delay-tolerant) networks.
//!
//! ## The model in one paragraph
//!
//! A population of *server* nodes `S`, each with a cache of `ρ` equally sized
//! slots, opportunistically serves a population of *client* nodes `C`
//! requesting items from a catalog `I`. A request for item `i` issued by
//! client `n` is fulfilled at the first meeting with a node caching a replica
//! of `i`; meetings follow (in the analytical model) independent memoryless
//! contact processes with rates `μ_{m,n}`. The user's *impatience* is a
//! monotonically decreasing delay-utility `h_i(t)`: the value of receiving
//! item `i` after waiting `t`. The *social welfare* of a global cache
//! allocation `x` is `U(x) = Σ_i d_i Σ_n π_{i,n} E[h_i(Y_{i,n}(x))]` where
//! `d_i` are demand rates and `Y` the fulfillment delay (paper Eq. 1).
//!
//! ## What lives where
//!
//! * [`utility`] — the delay-utility families of §3.2 (step, exponential,
//!   power, negative logarithm), their differential form `c = −h′`, and the
//!   two transforms the paper builds on them: the equilibrium condition
//!   `φ` (Property 1) and the QCR reaction function `ψ` (Property 2).
//! * [`welfare`] — expected gains `U_{i,n}(x)` (Lemma 1) and the homogeneous
//!   closed forms (Eqs. 2–5), plus fully heterogeneous evaluation.
//! * [`solver`] — the greedy allocator of Theorem 2 (exact under
//!   homogeneous contacts), the lazy submodular greedy of Theorem 1
//!   (`1−1/e` guarantee, heterogeneous), the relaxed water-filling optimum
//!   of Property 1, and the fixed heuristics (UNI/SQRT/PROP/DOM) used as
//!   competitors in §6.
//! * [`allocation`] — replica-count vectors and per-server allocation
//!   matrices with feasibility invariants.
//! * [`demand`] — content-popularity models (Pareto/Zipf, …) and per-node
//!   demand profiles `π_{i,n}`.
//! * [`rng`] — a deterministic, dependency-free xoshiro256++ PRNG and the
//!   samplers used throughout the workspace (exponential, Pareto, Poisson,
//!   alias method). Bit-stable results across toolchain upgrades.
//! * [`numeric`] — the small numerical toolbox (adaptive quadrature,
//!   bisection, Lanczos Γ) backing the closed-form-free code paths.
//!
//! ## Quickstart
//!
//! ```
//! use impatience_core::prelude::*;
//!
//! // 50 items with Pareto(ω=1) popularity, 50 pure-P2P nodes, cache ρ=5.
//! let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
//! let system = SystemModel::pure_p2p(50, 5, 0.05);
//! let utility = Power::new(0.0); // "waiting cost" impatience
//!
//! // Exact optimal allocation under homogeneous contacts (Theorem 2).
//! let opt = greedy_homogeneous(&system, &demand, &utility);
//! let welfare = social_welfare_homogeneous(&system, &demand, &utility, &opt.as_f64());
//! assert!(welfare > f64::NEG_INFINITY);
//! // Popular items get at least as many replicas as unpopular ones:
//! assert!(opt.counts()[0] >= opt.counts()[49]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod allocation;
pub mod demand;
pub mod numeric;
pub mod rng;
pub mod solver;
pub mod types;
pub mod utility;
pub mod welfare;

pub mod prelude {
    //! Convenience re-exports of the most used types.
    pub use crate::allocation::{AllocationMatrix, ReplicaCounts};
    pub use crate::demand::{DemandProfile, DemandRates, Popularity};
    pub use crate::rng::Xoshiro256;
    pub use crate::solver::fixed::{dominant, proportional, sqrt_proportional, uniform};
    pub use crate::solver::greedy::{
        brute_force_homogeneous, greedy_homogeneous, try_greedy_homogeneous,
    };
    pub use crate::solver::het_greedy::greedy_heterogeneous;
    pub use crate::solver::relaxed::{relaxed_optimum, try_relaxed_optimum};
    pub use crate::solver::SolverError;
    pub use crate::types::{ItemId, NodeId, Population, SystemModel};
    pub use crate::utility::{Custom, DelayUtility, Exponential, NegLog, Power, Step, UtilityKind};
    pub use crate::welfare::{
        expected_gain_continuous, social_welfare_heterogeneous, social_welfare_homogeneous,
        social_welfare_homogeneous_discrete,
    };
}
