//! Arbitrary user-supplied delay-utility functions.
//!
//! The paper's theory (Lemma 1, Theorems 1–2, Properties 1–2) only needs
//! `h` to be monotonically non-increasing; [`Custom`] lets downstream users
//! plug in any such function — e.g. one fitted to observed abandonment
//! behaviour — and still use every solver and the QCR reaction function,
//! through the numeric defaults of [`DelayUtility`].

use super::{DelayUtility, UtilityKind};
use std::sync::Arc;

type HFn = dyn Fn(f64) -> f64 + Send + Sync;

/// A delay-utility defined by closures.
///
/// ```
/// use impatience_core::utility::{Custom, DelayUtility};
///
/// // A logistic abandonment curve fitted from user feedback.
/// let u = Custom::new(|t| 1.0 / (1.0 + (2.0 * (t - 3.0)).exp()), 1.0, 0.0);
/// assert!(u.h(0.1) > 0.99);
/// assert!(u.h(10.0) < 0.01);
/// // φ is available numerically:
/// let phi = u.phi(5.0, 0.05);
/// assert!(phi > 0.0);
/// ```
#[derive(Clone)]
pub struct Custom {
    h: Arc<HFn>,
    /// Optional analytic differential `c = −h′`; numeric fallback otherwise.
    c: Option<Arc<HFn>>,
    h_zero: f64,
    h_infinity: f64,
}

impl Custom {
    /// Wrap a non-increasing function `h` with its limits at `0⁺` and `∞`.
    ///
    /// The limits are taken explicitly because they may be infinite and are
    /// needed exactly (they anchor the welfare closed forms).
    pub fn new(
        h: impl Fn(f64) -> f64 + Send + Sync + 'static,
        h_zero: f64,
        h_infinity: f64,
    ) -> Self {
        Custom {
            h: Arc::new(h),
            c: None,
            h_zero,
            h_infinity,
        }
    }

    /// Also supply the analytic differential delay-utility `c = −h′`,
    /// avoiding numeric differentiation in `φ`/`ψ`.
    pub fn with_derivative(mut self, c: impl Fn(f64) -> f64 + Send + Sync + 'static) -> Self {
        self.c = Some(Arc::new(c));
        self
    }
}

impl std::fmt::Debug for Custom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Custom")
            .field("h_zero", &self.h_zero)
            .field("h_infinity", &self.h_infinity)
            .field("has_analytic_c", &self.c.is_some())
            .finish()
    }
}

impl DelayUtility for Custom {
    fn h(&self, t: f64) -> f64 {
        (self.h)(t)
    }

    fn h_zero(&self) -> f64 {
        self.h_zero
    }

    fn h_infinity(&self) -> f64 {
        self.h_infinity
    }

    fn c(&self, t: f64) -> f64 {
        match &self.c {
            Some(c) => c(t),
            None => {
                let eps = (t.abs().max(1e-6)) * 1e-6;
                -((self.h)(t + eps) - (self.h)(t - eps)) / (2.0 * eps)
            }
        }
    }

    fn kind(&self) -> UtilityKind {
        UtilityKind::Custom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::Exponential;

    #[test]
    fn mirrors_exponential_numerically() {
        // A Custom clone of Exponential(ν) must produce the same gain and φ
        // through the numeric code paths.
        let nu = 0.8;
        let reference = Exponential::new(nu);
        let custom = Custom::new(move |t| (-nu * t).exp(), 1.0, 0.0);

        for lambda in [0.2, 1.0, 5.0] {
            let a = custom.gain(lambda);
            let b = reference.gain(lambda);
            assert!((a - b).abs() < 1e-6, "λ={lambda}: {a} vs {b}");
        }
        for x in [0.5, 3.0, 12.0] {
            let a = custom.phi(x, 0.05);
            let b = reference.phi(x, 0.05);
            assert!((a - b).abs() < 1e-6 * b.max(1e-9), "x={x}: {a} vs {b}");
        }
    }

    #[test]
    fn analytic_derivative_is_used() {
        let custom = Custom::new(|t| (-t).exp(), 1.0, 0.0).with_derivative(|t| (-t).exp());
        assert!((custom.c(1.0) - (-1.0f64).exp()).abs() < 1e-15);
        assert!(format!("{custom:?}").contains("has_analytic_c: true"));
    }

    #[test]
    fn numeric_derivative_fallback() {
        let custom = Custom::new(|t| 1.0 / (1.0 + t), 1.0, 0.0);
        // c = 1/(1+t)²
        for t in [0.5, 2.0, 8.0] {
            let expect = 1.0 / ((1.0 + t) * (1.0 + t));
            assert!((custom.c(t) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn psi_available_numerically() {
        let custom = Custom::new(|t| (-0.5 * t).exp(), 1.0, 0.0);
        let reference = Exponential::new(0.5);
        let got = custom.psi(10.0, 50.0, 0.05);
        let expect = reference.psi(10.0, 50.0, 0.05);
        assert!((got - expect).abs() < 1e-6, "{got} vs {expect}");
    }

    #[test]
    fn requires_dedicated_follows_h_zero() {
        let finite = Custom::new(|t| -t, 0.0, f64::NEG_INFINITY);
        assert!(!finite.requires_dedicated());
        let infinite = Custom::new(|t| 1.0 / t, f64::INFINITY, 0.0);
        assert!(infinite.requires_dedicated());
    }
}
