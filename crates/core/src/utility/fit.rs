//! Estimating the delay-utility from user feedback — the paper's closing
//! open problem (§7): "how to estimate the delay-utility function
//! implicitly from user feedback, instead of assuming that it is known."
//!
//! The feedback model follows the advertising-revenue interpretation of
//! §3.2: when a request is fulfilled after waiting `t`, the user either
//! *consumes* the content (the network earns) or has lost interest. The
//! consumption probability at delay `t` **is** `h(t)` for the
//! step/exponential families, so observations are Bernoulli draws
//! `(t_k, consumed_k)` with `P(consumed | t) = h(t)`.
//!
//! Provided estimators:
//!
//! * [`fit_exponential`] — maximum-likelihood `ν` for `h(t) = e^{−νt}`;
//! * [`fit_step`] — maximum-likelihood deadline `τ` for `h(t) = 1{t≤τ}`
//!   under a symmetric label-noise rate;
//! * [`fit_empirical`] — distribution-free: a monotone (isotonic-
//!   regression) estimate of `h`, returned as a [`Custom`] utility usable
//!   with every solver and with QCR's numeric ψ.
//!
//! The closed loop — simulate feedback, fit, replicate with the fitted
//! reaction — is exercised in `examples/fitted_impatience.rs` and the
//! integration tests.

use std::sync::Arc;

use super::{Custom, DelayUtility};

/// One user-feedback observation: the request was fulfilled after
/// `delay`, and the user did (`consumed = true`) or did not use it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Feedback {
    /// Fulfillment delay experienced.
    pub delay: f64,
    /// Whether the content was still wanted.
    pub consumed: bool,
}

impl Feedback {
    /// Construct an observation.
    ///
    /// # Panics
    /// Panics on non-finite or negative delays.
    pub fn new(delay: f64, consumed: bool) -> Self {
        assert!(
            delay >= 0.0 && delay.is_finite(),
            "delay must be finite and ≥ 0"
        );
        Feedback { delay, consumed }
    }
}

/// Errors from the fitting routines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FitError {
    /// Not enough observations to estimate anything.
    TooFewObservations {
        /// How many were provided.
        got: usize,
        /// The minimum required.
        need: usize,
    },
    /// The data is degenerate for the requested family (e.g. every
    /// observation consumed: ν̂ = 0 is outside the exponential family).
    Degenerate(&'static str),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewObservations { got, need } => {
                write!(f, "need at least {need} observations, got {got}")
            }
            FitError::Degenerate(msg) => write!(f, "degenerate feedback data: {msg}"),
        }
    }
}

impl std::error::Error for FitError {}

/// Maximum-likelihood estimate of the exponential impatience rate `ν`
/// from Bernoulli feedback with `P(consumed | t) = e^{−νt}`.
///
/// The log-likelihood `Σ_consumed (−νt_k) + Σ_lost ln(1 − e^{−νt_k})` is
/// concave in `ν`; the unique stationary point is found by bisection on
/// its derivative.
pub fn fit_exponential(data: &[Feedback]) -> Result<f64, FitError> {
    const MIN_OBS: usize = 10;
    if data.len() < MIN_OBS {
        return Err(FitError::TooFewObservations {
            got: data.len(),
            need: MIN_OBS,
        });
    }
    let losses = data.iter().filter(|f| !f.consumed && f.delay > 0.0).count();
    if losses == 0 {
        return Err(FitError::Degenerate(
            "every observation was consumed; ν is indistinguishable from 0",
        ));
    }
    if data.iter().all(|f| !f.consumed) {
        return Err(FitError::Degenerate(
            "no observation was consumed; ν is unbounded",
        ));
    }
    // dL/dν = −Σ_consumed t + Σ_lost t·e^{−νt}/(1 − e^{−νt}); strictly
    // decreasing in ν from +∞ (ν→0⁺, thanks to the lost terms) to the
    // negative consumed sum.
    let score = |nu: f64| -> f64 {
        let mut s = 0.0;
        for f in data {
            if f.delay == 0.0 {
                continue; // h(0)=1: a zero-delay observation carries no ν information
            }
            if f.consumed {
                s -= f.delay;
            } else {
                let e = (-nu * f.delay).exp();
                s += f.delay * e / (1.0 - e);
            }
        }
        s
    };
    // Bracket: score(ν→0⁺) = +∞; grow hi until the score is negative.
    let mut lo = 1e-12;
    let mut hi = 1.0;
    while score(hi) > 0.0 {
        hi *= 4.0;
        if hi > 1e12 {
            return Err(FitError::Degenerate("likelihood has no interior maximum"));
        }
    }
    while score(lo) < 0.0 {
        lo /= 4.0;
        if lo < 1e-300 {
            return Err(FitError::Degenerate("likelihood maximized at ν = 0"));
        }
    }
    let nu = crate::numeric::bisect(score, lo, hi, 0.0)
        .expect("score is continuous and changes sign over the bracket");
    Ok(nu)
}

/// Maximum-likelihood deadline `τ` for the step family under symmetric
/// label noise `ε` (`P(consumed | t ≤ τ) = 1 − ε`,
/// `P(consumed | t > τ) = ε`): the τ maximizing the label agreement,
/// scanned over the observed delays (the likelihood is piecewise
/// constant between them).
pub fn fit_step(data: &[Feedback]) -> Result<f64, FitError> {
    const MIN_OBS: usize = 10;
    if data.len() < MIN_OBS {
        return Err(FitError::TooFewObservations {
            got: data.len(),
            need: MIN_OBS,
        });
    }
    let mut sorted: Vec<&Feedback> = data.iter().collect();
    sorted.sort_by(|a, b| a.delay.total_cmp(&b.delay));
    // Agreement(τ) = #{consumed with t ≤ τ} + #{lost with t > τ}.
    // Sweep τ through each observed delay; prefix sums make it O(n log n).
    let total_lost = sorted.iter().filter(|f| !f.consumed).count();
    if total_lost == 0 || total_lost == sorted.len() {
        return Err(FitError::Degenerate(
            "all labels identical; τ is unidentifiable",
        ));
    }
    let mut best_agreement = 0usize;
    let mut best_tau = sorted[0].delay;
    let mut consumed_prefix = 0usize;
    let mut lost_prefix = 0usize;
    for (k, f) in sorted.iter().enumerate() {
        if f.consumed {
            consumed_prefix += 1;
        } else {
            lost_prefix += 1;
        }
        // τ just after this delay (and any ties).
        if k + 1 < sorted.len() && sorted[k + 1].delay == f.delay {
            continue;
        }
        let agreement = consumed_prefix + (total_lost - lost_prefix);
        if agreement > best_agreement {
            best_agreement = agreement;
            best_tau = f.delay;
        }
    }
    Ok(best_tau)
}

/// Distribution-free estimate of a non-increasing `h` via binned means +
/// isotonic regression (pool-adjacent-violators), returned as a
/// [`Custom`] utility that linearly interpolates between bin centers.
///
/// `bins` controls the resolution; delays beyond the largest observation
/// extrapolate flat at the last level.
pub fn fit_empirical(data: &[Feedback], bins: usize) -> Result<Arc<dyn DelayUtility>, FitError> {
    const MIN_OBS: usize = 20;
    if data.len() < MIN_OBS {
        return Err(FitError::TooFewObservations {
            got: data.len(),
            need: MIN_OBS,
        });
    }
    assert!(bins >= 2, "need at least two bins");
    let max_delay = data
        .iter()
        .map(|f| f.delay)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let width = max_delay / bins as f64;
    let mut sums = vec![0.0f64; bins];
    let mut counts = vec![0usize; bins];
    for f in data {
        let b = ((f.delay / width) as usize).min(bins - 1);
        sums[b] += f64::from(u8::from(f.consumed));
        counts[b] += 1;
    }
    // Empirical consumption rate per bin (empty bins inherit later).
    let mut level: Vec<f64> = Vec::with_capacity(bins);
    let mut weight: Vec<f64> = Vec::with_capacity(bins);
    for b in 0..bins {
        if counts[b] > 0 {
            level.push(sums[b] / counts[b] as f64);
            weight.push(counts[b] as f64);
        } else {
            level.push(f64::NAN);
            weight.push(0.0);
        }
    }
    // Fill empty bins by carrying the previous estimate forward.
    let mut prev = 1.0;
    for l in level.iter_mut() {
        if l.is_nan() {
            *l = prev;
        } else {
            prev = *l;
        }
    }
    // Pool adjacent violators for a non-INCREASING fit: merge any block
    // whose mean exceeds its predecessor's.
    struct Block {
        mean: f64,
        weight: f64,
        bins: usize,
    }
    let mut blocks: Vec<Block> = Vec::new();
    for b in 0..bins {
        let mut cur = Block {
            mean: level[b],
            weight: weight[b].max(1e-9),
            bins: 1,
        };
        while let Some(prev) = blocks.last() {
            if prev.mean >= cur.mean {
                break;
            }
            // Violation (increasing): merge with the predecessor.
            let prev = blocks.pop().expect("checked by last()");
            cur = Block {
                mean: (prev.mean * prev.weight + cur.mean * cur.weight)
                    / (prev.weight + cur.weight),
                weight: prev.weight + cur.weight,
                bins: prev.bins + cur.bins,
            };
        }
        blocks.push(cur);
    }
    // Expand blocks back to per-bin levels.
    let mut fitted = Vec::with_capacity(bins);
    for block in &blocks {
        for _ in 0..block.bins {
            fitted.push(block.mean.clamp(0.0, 1.0));
        }
    }
    debug_assert_eq!(fitted.len(), bins);

    let centers: Vec<f64> = (0..bins).map(|b| (b as f64 + 0.5) * width).collect();
    let h0 = fitted[0];
    let h_inf = *fitted.last().expect("bins ≥ 2");
    let h = move |t: f64| -> f64 {
        if t <= centers[0] {
            return fitted[0];
        }
        if t >= *centers.last().unwrap() {
            return *fitted.last().unwrap();
        }
        let k = centers.partition_point(|&c| c < t);
        let (t0, t1) = (centers[k - 1], centers[k]);
        let frac = (t - t0) / (t1 - t0);
        fitted[k - 1] + frac * (fitted[k] - fitted[k - 1])
    };
    Ok(Arc::new(Custom::new(h, h0, h_inf)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;
    use crate::utility::{DelayUtility, Exponential, Step};

    fn synth_feedback(
        truth: &dyn DelayUtility,
        n: usize,
        max_delay: f64,
        seed: u64,
    ) -> Vec<Feedback> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let t = rng.range(0.0, max_delay);
                let consumed = rng.bernoulli(truth.h(t).clamp(0.0, 1.0));
                Feedback::new(t, consumed)
            })
            .collect()
    }

    #[test]
    fn exponential_mle_recovers_nu() {
        for truth in [0.05, 0.3, 1.5] {
            let data = synth_feedback(&Exponential::new(truth), 20_000, 5.0 / truth, 7);
            let nu = fit_exponential(&data).unwrap();
            assert!(
                (nu - truth).abs() < 0.05 * truth,
                "ν̂ = {nu} vs truth {truth}"
            );
        }
    }

    #[test]
    fn step_fit_recovers_tau() {
        let truth = 3.0;
        let data = synth_feedback(&Step::new(truth), 5_000, 10.0, 8);
        let tau = fit_step(&data).unwrap();
        assert!((tau - truth).abs() < 0.05, "τ̂ = {tau}");
    }

    #[test]
    fn step_fit_survives_label_noise() {
        // 10 % of labels flipped.
        let truth = 3.0;
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut data = synth_feedback(&Step::new(truth), 5_000, 10.0, 9);
        for f in data.iter_mut() {
            if rng.bernoulli(0.1) {
                f.consumed = !f.consumed;
            }
        }
        let tau = fit_step(&data).unwrap();
        assert!((tau - truth).abs() < 0.2, "τ̂ = {tau} under noise");
    }

    #[test]
    fn empirical_fit_is_monotone_and_close() {
        let truth = Exponential::new(0.4);
        let data = synth_feedback(&truth, 50_000, 12.0, 10);
        let fitted = fit_empirical(&data, 24).unwrap();
        let mut prev = f64::INFINITY;
        for k in 1..=40 {
            let t = 0.3 * k as f64;
            let v = fitted.h(t);
            assert!(v <= prev + 1e-12, "fitted h not monotone at t={t}");
            prev = v;
            if t < 10.0 {
                assert!(
                    (v - truth.h(t)).abs() < 0.08,
                    "t={t}: fitted {v} vs truth {}",
                    truth.h(t)
                );
            }
        }
    }

    #[test]
    fn empirical_fit_supports_phi_and_psi() {
        // The fitted Custom utility flows through the numeric transforms,
        // approximating the truth's φ.
        let truth = Exponential::new(0.4);
        let data = synth_feedback(&truth, 50_000, 20.0, 11);
        let fitted = fit_empirical(&data, 30).unwrap();
        for x in [2.0, 8.0] {
            let a = fitted.phi(x, 0.05);
            let b = truth.phi(x, 0.05);
            assert!((a - b).abs() < 0.25 * b, "φ({x}): fitted {a} vs truth {b}");
        }
    }

    #[test]
    fn errors_on_degenerate_data() {
        let few = vec![Feedback::new(1.0, true); 3];
        assert!(matches!(
            fit_exponential(&few),
            Err(FitError::TooFewObservations { .. })
        ));
        let all_yes = vec![Feedback::new(1.0, true); 100];
        assert!(matches!(
            fit_exponential(&all_yes),
            Err(FitError::Degenerate(_))
        ));
        assert!(matches!(fit_step(&all_yes), Err(FitError::Degenerate(_))));
        let all_no = vec![Feedback::new(1.0, false); 100];
        assert!(matches!(
            fit_exponential(&all_no),
            Err(FitError::Degenerate(_))
        ));
        let e = fit_exponential(&few).unwrap_err();
        assert!(e.to_string().contains("at least 10"));
    }

    #[test]
    #[should_panic(expected = "finite and ≥ 0")]
    fn feedback_rejects_negative_delay() {
        let _ = Feedback::new(-1.0, true);
    }
}
