//! Textual delay-utility specifications, e.g. for CLIs and config files.
//!
//! Grammar: `step:<tau>` · `exp:<nu>` · `power:<alpha>` · `neglog`.

use std::sync::Arc;

use super::{DelayUtility, Exponential, NegLog, Power, Step};

/// Parse a delay-utility specification string.
///
/// ```
/// use impatience_core::utility::{parse_utility, DelayUtility};
/// let u = parse_utility("step:2.5").unwrap();
/// assert_eq!(u.h(1.0), 1.0);
/// assert_eq!(u.h(3.0), 0.0);
/// assert!(parse_utility("power:2.5").is_err()); // α ≥ 2 diverges
/// ```
pub fn parse_utility(spec: &str) -> Result<Arc<dyn DelayUtility>, UtilitySpecError> {
    let spec = spec.trim();
    let (family, param) = match spec.split_once(':') {
        Some((f, p)) => (f.trim(), Some(p.trim())),
        None => (spec, None),
    };
    let parse_param = |what: &str| -> Result<f64, UtilitySpecError> {
        let raw = param.ok_or_else(|| UtilitySpecError {
            spec: spec.to_string(),
            message: format!("{family} requires a parameter ({family}:<{what}>)"),
        })?;
        raw.parse().map_err(|_| UtilitySpecError {
            spec: spec.to_string(),
            message: format!("cannot parse `{raw}` as {what}"),
        })
    };
    match family {
        "step" => {
            let tau = parse_param("tau")?;
            if tau > 0.0 && tau.is_finite() {
                Ok(Arc::new(Step::new(tau)))
            } else {
                Err(UtilitySpecError {
                    spec: spec.to_string(),
                    message: "step deadline must be positive".into(),
                })
            }
        }
        "exp" | "exponential" => {
            let nu = parse_param("nu")?;
            if nu > 0.0 && nu.is_finite() {
                Ok(Arc::new(Exponential::new(nu)))
            } else {
                Err(UtilitySpecError {
                    spec: spec.to_string(),
                    message: "exponential decay rate must be positive".into(),
                })
            }
        }
        "power" => {
            let alpha = parse_param("alpha")?;
            if alpha.is_finite() && alpha < 2.0 && alpha != 1.0 {
                Ok(Arc::new(Power::new(alpha)))
            } else {
                Err(UtilitySpecError {
                    spec: spec.to_string(),
                    message: "power exponent must satisfy α < 2, α ≠ 1 (use `neglog` for α = 1)"
                        .into(),
                })
            }
        }
        "neglog" => {
            if param.is_some() {
                Err(UtilitySpecError {
                    spec: spec.to_string(),
                    message: "neglog takes no parameter".into(),
                })
            } else {
                Ok(Arc::new(NegLog::new()))
            }
        }
        other => Err(UtilitySpecError {
            spec: spec.to_string(),
            message: format!(
                "unknown family `{other}` (expected step:<tau>, exp:<nu>, power:<alpha>, neglog)"
            ),
        }),
    }
}

/// A malformed delay-utility specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UtilitySpecError {
    /// The offending input.
    pub spec: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for UtilitySpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid utility spec `{}`: {}", self.spec, self.message)
    }
}

impl std::error::Error for UtilitySpecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::UtilityKind;

    #[test]
    fn parses_all_families() {
        assert_eq!(
            parse_utility("step:1.5").unwrap().kind(),
            UtilityKind::Step { tau: 1.5 }
        );
        assert_eq!(
            parse_utility("exp:0.2").unwrap().kind(),
            UtilityKind::Exponential { nu: 0.2 }
        );
        assert_eq!(
            parse_utility("exponential:2").unwrap().kind(),
            UtilityKind::Exponential { nu: 2.0 }
        );
        assert_eq!(
            parse_utility(" power:-1.5 ").unwrap().kind(),
            UtilityKind::Power { alpha: -1.5 }
        );
        assert_eq!(parse_utility("neglog").unwrap().kind(), UtilityKind::NegLog);
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "step",
            "step:0",
            "step:-1",
            "step:abc",
            "exp:-0.1",
            "power:2.0",
            "power:1",
            "power:inf",
            "neglog:3",
            "linear:1",
            "",
        ] {
            assert!(parse_utility(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let e = parse_utility("power:2.5").unwrap_err();
        assert!(e.to_string().contains("α < 2"), "{e}");
        let e = parse_utility("warp:9").unwrap_err();
        assert!(e.to_string().contains("unknown family"), "{e}");
        let e = parse_utility("step").unwrap_err();
        assert!(e.to_string().contains("requires a parameter"), "{e}");
    }
}
