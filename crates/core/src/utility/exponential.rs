//! The exponential delay-utility `h(t) = e^{−νt}` — "advertising revenue"
//! with a mixed population: at any time a constant fraction of still-waiting
//! users loses interest.
//!
//! Closed forms (paper Table 1, second column):
//!
//! * `c(t) = ν·e^{−νt}`
//! * gain `G(λ) = E[e^{−νY}] = λ/(λ+ν)` — in the paper's form
//!   `1 − 1/(1 + μx/ν)`
//! * `φ(x) = (μ/ν)·(1 + μx/ν)^{−2} = μν/(μx+ν)²`
//! * `ψ(y) = (μ|S|/ν)·y/(y + μ|S|/ν)²`

use super::{DelayUtility, UtilityKind};

/// Exponential delay-utility with impatience rate `ν`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    nu: f64,
}

impl Exponential {
    /// Create an exponential utility with decay rate `nu`.
    ///
    /// # Panics
    /// Panics unless `nu` is strictly positive and finite.
    pub fn new(nu: f64) -> Self {
        assert!(nu > 0.0 && nu.is_finite(), "decay rate must be positive");
        Exponential { nu }
    }

    /// The decay rate `ν`.
    pub fn nu(&self) -> f64 {
        self.nu
    }
}

impl DelayUtility for Exponential {
    fn h(&self, t: f64) -> f64 {
        (-self.nu * t).exp()
    }

    fn h_zero(&self) -> f64 {
        1.0
    }

    fn h_infinity(&self) -> f64 {
        0.0
    }

    fn c(&self, t: f64) -> f64 {
        self.nu * (-self.nu * t).exp()
    }

    fn gain(&self, lambda: f64) -> f64 {
        debug_assert!(lambda >= 0.0);
        lambda / (lambda + self.nu)
    }

    fn phi(&self, x: f64, mu: f64) -> f64 {
        let denom = mu * x + self.nu;
        mu * self.nu / (denom * denom)
    }

    fn psi(&self, y: f64, servers: f64, mu: f64) -> f64 {
        // (s/y)·φ(s/y) = (μ|S|/ν)·y/(y + μ|S|/ν)²  (Table 1 last row)
        let a = mu * servers / self.nu;
        let denom = y + a;
        a * y / (denom * denom)
    }

    fn kind(&self) -> UtilityKind {
        UtilityKind::Exponential { nu: self.nu }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let u = Exponential::new(0.5);
        assert_eq!(u.h_zero(), 1.0);
        assert_eq!(u.h_infinity(), 0.0);
        assert!((u.h(2.0) - (-1.0f64).exp()).abs() < 1e-15);
        assert!(!u.requires_dedicated());
        assert_eq!(u.nu(), 0.5);
    }

    #[test]
    fn gain_matches_numeric_integration() {
        let u = Exponential::new(0.7);
        for lambda in [0.05, 0.5, 2.0, 25.0] {
            let numeric = u.gain_numeric(lambda).unwrap();
            let closed = u.gain(lambda);
            assert!(
                (numeric - closed).abs() < 1e-7,
                "λ={lambda}: {numeric} vs {closed}"
            );
        }
    }

    #[test]
    fn gain_zero_lambda() {
        assert_eq!(Exponential::new(1.0).gain(0.0), 0.0);
    }

    #[test]
    fn phi_matches_numeric_integration() {
        let u = Exponential::new(1.3);
        let mu = 0.05;
        for x in [0.5, 1.0, 10.0, 100.0] {
            let numeric = u.phi_numeric(x, mu).unwrap();
            let closed = u.phi(x, mu);
            assert!(
                (numeric - closed).abs() < 1e-7 * closed.max(1e-12),
                "x={x}: {numeric} vs {closed}"
            );
        }
    }

    #[test]
    fn phi_is_gain_derivative() {
        let u = Exponential::new(0.2);
        let mu = 0.05;
        for x in [1.0, 7.0, 30.0] {
            let eps = 1e-6;
            let numeric = (u.gain(mu * (x + eps)) - u.gain(mu * (x - eps))) / (2.0 * eps);
            assert!((numeric - u.phi(x, mu)).abs() < 1e-8);
        }
    }

    #[test]
    fn psi_closed_form_matches_relation() {
        let u = Exponential::new(0.4);
        let (s, mu) = (50.0, 0.05);
        for y in [0.25, 1.0, 6.25, 50.0, 400.0] {
            let x = s / y;
            let expect = x * u.phi(x, mu);
            let got = u.psi(y, s, mu);
            assert!(
                (got - expect).abs() < 1e-12 * expect.abs().max(1.0),
                "y={y}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn c_is_minus_h_prime() {
        let u = Exponential::new(2.0);
        for t in [0.1, 1.0, 3.0] {
            let eps = 1e-6;
            let fd = -(u.h(t + eps) - u.h(t - eps)) / (2.0 * eps);
            assert!((fd - u.c(t)).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "decay rate must be positive")]
    fn rejects_negative_nu() {
        let _ = Exponential::new(-1.0);
    }
}
