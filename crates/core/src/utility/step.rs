//! The step delay-utility `h(t) = 1{t ≤ τ}` — "advertising revenue" where
//! every user abandons the content after the same deadline `τ`.
//!
//! Its differential delay-utility is a Dirac measure at `τ`, so all the
//! integral transforms are overridden with their closed forms
//! (paper Table 1, first column):
//!
//! * gain `G(λ) = P(Y ≤ τ) = 1 − e^{−λτ}`
//! * `φ(x) = μτ·e^{−μτx}`
//! * `ψ(y) = (μτ|S|/y)·e^{−μτ|S|/y}`

use super::{DelayUtility, UtilityKind};

/// Step delay-utility with deadline `τ` (`h(t) = 1` for `t ≤ τ`, else 0).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Step {
    tau: f64,
}

impl Step {
    /// Create a step utility with deadline `tau`.
    ///
    /// # Panics
    /// Panics unless `tau` is strictly positive and finite.
    pub fn new(tau: f64) -> Self {
        assert!(
            tau > 0.0 && tau.is_finite(),
            "step deadline must be positive"
        );
        Step { tau }
    }

    /// The deadline `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl DelayUtility for Step {
    fn h(&self, t: f64) -> f64 {
        if t <= self.tau {
            1.0
        } else {
            0.0
        }
    }

    fn h_zero(&self) -> f64 {
        1.0
    }

    fn h_infinity(&self) -> f64 {
        0.0
    }

    /// The density part of `c` is zero — the whole mass is the Dirac at
    /// `τ`. Integral transforms are overridden accordingly.
    fn c(&self, _t: f64) -> f64 {
        0.0
    }

    fn gain(&self, lambda: f64) -> f64 {
        debug_assert!(lambda >= 0.0);
        -(-lambda * self.tau).exp_m1()
    }

    fn phi(&self, x: f64, mu: f64) -> f64 {
        mu * self.tau * (-mu * self.tau * x).exp()
    }

    fn psi(&self, y: f64, servers: f64, mu: f64) -> f64 {
        let a = mu * self.tau * servers / y;
        a * (-a).exp()
    }

    fn delta_c(&self, k: u64, delta: f64) -> f64 {
        // h(kδ) − h((k+1)δ) is 1 exactly when the deadline falls inside
        // the slot (kδ ≤ τ < (k+1)δ); h(0⁺) = 1 handles k = 0 too.
        let lo = k as f64 * delta;
        let hi = lo + delta;
        if lo <= self.tau && self.tau < hi {
            1.0
        } else {
            0.0
        }
    }

    fn kind(&self) -> UtilityKind {
        UtilityKind::Step { tau: self.tau }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let u = Step::new(2.0);
        assert_eq!(u.h(0.5), 1.0);
        assert_eq!(u.h(2.0), 1.0); // inclusive at the deadline
        assert_eq!(u.h(2.0001), 0.0);
        assert_eq!(u.h_zero(), 1.0);
        assert_eq!(u.h_infinity(), 0.0);
        assert!(!u.requires_dedicated());
        assert_eq!(u.tau(), 2.0);
    }

    #[test]
    fn gain_closed_form() {
        let u = Step::new(1.5);
        // P(Exp(λ) ≤ τ)
        for lambda in [0.0, 0.1, 1.0, 10.0] {
            let expect = if lambda == 0.0 {
                0.0
            } else {
                1.0 - (-lambda * 1.5f64).exp()
            };
            assert!((u.gain(lambda) - expect).abs() < 1e-14);
        }
        // Gain approaches 1 as replicas abound.
        assert!((u.gain(1e3) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn phi_is_gain_derivative() {
        // φ(x) = dG(μx)/dx; check against a finite difference of gain.
        let u = Step::new(1.0);
        let mu = 0.05;
        for x in [0.5, 1.0, 5.0, 20.0] {
            let eps = 1e-6;
            let numeric = (u.gain(mu * (x + eps)) - u.gain(mu * (x - eps))) / (2.0 * eps);
            let closed = u.phi(x, mu);
            assert!(
                (numeric - closed).abs() < 1e-7,
                "x={x}: {numeric} vs {closed}"
            );
        }
    }

    #[test]
    fn phi_decreasing() {
        let u = Step::new(1.0);
        let mut prev = f64::INFINITY;
        for k in 1..50 {
            let v = u.phi(k as f64 * 0.5, 0.1);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn psi_matches_phi_relation() {
        let u = Step::new(3.0);
        let (s, mu) = (50.0, 0.05);
        for y in [0.5, 1.0, 4.0, 100.0] {
            let x = s / y;
            let expect = x * u.phi(x, mu);
            // ψ in closed form drops the μτ·x prefactor arrangement but must
            // agree exactly with (s/y)·φ(s/y).
            assert!((u.psi(y, s, mu) - expect).abs() < 1e-12 * expect.abs().max(1.0));
        }
    }

    #[test]
    fn psi_is_unimodal_in_y() {
        // ψ(y) = a·e^{−a} with a = μτ|S|/y: increases then decreases as a
        // passes 1; as a function of y it peaks at y = μτ|S|.
        let u = Step::new(1.0);
        let (s, mu) = (50.0, 0.05);
        let peak_y = mu * 1.0 * s; // = 2.5
        let at_peak = u.psi(peak_y, s, mu);
        assert!(u.psi(0.5 * peak_y, s, mu) < at_peak);
        assert!(u.psi(2.0 * peak_y, s, mu) < at_peak);
    }

    #[test]
    fn delta_c_mass_is_one() {
        let u = Step::new(1.0);
        for delta in [0.1, 0.3, 0.7, 2.0] {
            let total: f64 = (0..1000).map(|k| u.delta_c(k, delta)).sum();
            assert_eq!(total, 1.0, "delta={delta}");
        }
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn rejects_zero_tau() {
        let _ = Step::new(0.0);
    }
}
