//! The power delay-utility family `h(t) = t^{1−α}/(α−1)` for `α < 2`,
//! `α ≠ 1`, and its `α → 1` limit, the negative logarithm `h(t) = −ln t`.
//!
//! The single exponent `α` spans the paper's impatience spectrum (Fig. 2):
//!
//! * `1 < α < 2` — **time-critical information** (inverse power): immediate
//!   delivery is worth arbitrarily much (`h(0⁺) = ∞`), so these utilities
//!   are restricted to the dedicated-node population;
//! * `α < 1` — **waiting cost** (negative power): `h ≤ 0` grows unboundedly
//!   negative, modelling costs such as running outdated software;
//! * `α = 1` — **negative logarithm**: both effects at once.
//!
//! Closed forms (paper Table 1, columns 3–5):
//!
//! * `c(t) = t^{−α}`
//! * gain `G(λ) = λ^{α−1}·Γ(2−α)/(α−1)` (and `ln λ + γ` for neg-log)
//! * `φ(x) = μ^{α−1}·Γ(2−α)·x^{α−2}` (and `1/x` for neg-log)
//! * `ψ(y) = μ^{α−1}·|S|^{α−1}·Γ(2−α)·y^{1−α}` (and `y/|S|·…` → `1` shape
//!   for neg-log; see [`NegLog`])
//!
//! The optimal relaxed allocation is `x̃_i ∝ d_i^{1/(2−α)}` (Fig. 2):
//! uniform as `α → −∞`, proportional at `α = 1`, square-root at `α = 0`,
//! winner-take-all as `α → 2`.

use super::{DelayUtility, UtilityKind};
use crate::numeric::gamma;

/// Euler–Mascheroni constant γ (used by the neg-log gain `ln λ + γ`).
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Power delay-utility with exponent `α < 2`, `α ≠ 1`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Power {
    alpha: f64,
    /// Precomputed `Γ(2−α)`.
    gamma_2ma: f64,
}

impl Power {
    /// Create a power utility with impatience exponent `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha ≥ 2` (gain diverges), `alpha == 1` (use
    /// [`NegLog`]), or `alpha` is not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha.is_finite(), "alpha must be finite");
        assert!(
            alpha < 2.0,
            "power utility requires α < 2 (gain diverges otherwise)"
        );
        assert!(
            alpha != 1.0,
            "α = 1 is the negative-logarithm limit; use NegLog"
        );
        Power {
            alpha,
            gamma_2ma: gamma(2.0 - alpha),
        }
    }

    /// The impatience exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The exponent of the optimal relaxed allocation, `1/(2−α)`:
    /// `x̃_i ∝ d_i^{1/(2−α)}` (paper Fig. 2).
    pub fn allocation_exponent(&self) -> f64 {
        1.0 / (2.0 - self.alpha)
    }
}

impl DelayUtility for Power {
    fn h(&self, t: f64) -> f64 {
        t.powf(1.0 - self.alpha) / (self.alpha - 1.0)
    }

    fn h_zero(&self) -> f64 {
        if self.alpha > 1.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn h_infinity(&self) -> f64 {
        if self.alpha > 1.0 {
            0.0
        } else {
            f64::NEG_INFINITY
        }
    }

    fn c(&self, t: f64) -> f64 {
        t.powf(-self.alpha)
    }

    fn gain(&self, lambda: f64) -> f64 {
        debug_assert!(lambda >= 0.0);
        if lambda == 0.0 {
            return self.h_infinity();
        }
        lambda.powf(self.alpha - 1.0) * self.gamma_2ma / (self.alpha - 1.0)
    }

    fn phi(&self, x: f64, mu: f64) -> f64 {
        mu.powf(self.alpha - 1.0) * self.gamma_2ma * x.powf(self.alpha - 2.0)
    }

    fn psi(&self, y: f64, servers: f64, mu: f64) -> f64 {
        // Table 1: ψ(y) = y^{1−α}·μ^{α−1}·|S|^{α−1}·Γ(2−α)
        (mu * servers).powf(self.alpha - 1.0) * self.gamma_2ma * y.powf(1.0 - self.alpha)
    }

    fn kind(&self) -> UtilityKind {
        UtilityKind::Power { alpha: self.alpha }
    }
}

/// Negative-logarithm delay-utility `h(t) = −ln t`, the `α → 1` limit of
/// [`Power`]. Both `h(0⁺) = ∞` and `h(∞) = −∞`, so it is restricted to the
/// dedicated-node population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NegLog;

impl NegLog {
    /// Create the negative-logarithm utility.
    pub fn new() -> Self {
        NegLog
    }
}

impl DelayUtility for NegLog {
    fn h(&self, t: f64) -> f64 {
        -t.ln()
    }

    fn h_zero(&self) -> f64 {
        f64::INFINITY
    }

    fn h_infinity(&self) -> f64 {
        f64::NEG_INFINITY
    }

    fn c(&self, t: f64) -> f64 {
        1.0 / t
    }

    fn gain(&self, lambda: f64) -> f64 {
        debug_assert!(lambda >= 0.0);
        if lambda == 0.0 {
            return f64::NEG_INFINITY;
        }
        // E[−ln Y] for Y ~ Exp(λ) is ln λ + γ.
        lambda.ln() + EULER_GAMMA
    }

    fn phi(&self, x: f64, _mu: f64) -> f64 {
        // The paper's Table 1 with α = 1: φ(x) = x^{−1} (μ^0·Γ(1) = 1).
        1.0 / x
    }

    fn psi(&self, y: f64, _servers: f64, _mu: f64) -> f64 {
        // (s/y)·φ(s/y) = (s/y)·(y/s) = 1: the neg-log reaction is constant —
        // exactly one replica per fulfillment, i.e. path-replication's
        // proportional-allocation regime.
        debug_assert!(y > 0.0);
        1.0
    }

    fn kind(&self) -> UtilityKind {
        UtilityKind::NegLog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_regimes() {
        // Waiting cost: h ≤ 0, decreasing, h(0)=0, h(∞)=−∞.
        let u = Power::new(0.0); // h(t) = −t
        assert_eq!(u.h_zero(), 0.0);
        assert_eq!(u.h_infinity(), f64::NEG_INFINITY);
        assert!((u.h(3.0) + 3.0).abs() < 1e-15);
        assert!(!u.requires_dedicated());

        // Time-critical: h ≥ 0, h(0)=∞.
        let u = Power::new(1.5); // h(t) = 2/√t · ... = t^{-0.5}/0.5
        assert_eq!(u.h_zero(), f64::INFINITY);
        assert_eq!(u.h_infinity(), 0.0);
        assert!(u.requires_dedicated());
        assert!(u.h(1.0) > 0.0);
    }

    #[test]
    fn h_monotone_decreasing() {
        for alpha in [-2.0, -0.5, 0.0, 0.5, 1.5, 1.9] {
            let u = Power::new(alpha);
            let mut prev = f64::INFINITY;
            for k in 1..100 {
                let v = u.h(0.1 * k as f64);
                assert!(
                    v <= prev,
                    "α={alpha} not decreasing at t={}",
                    0.1 * k as f64
                );
                prev = v;
            }
        }
    }

    #[test]
    fn gain_matches_numeric() {
        for alpha in [-1.0, 0.0, 0.5, 1.5] {
            let u = Power::new(alpha);
            for lambda in [0.1, 1.0, 10.0] {
                let numeric = u.gain_numeric(lambda).unwrap();
                let closed = u.gain(lambda);
                assert!(
                    (numeric - closed).abs() < 1e-5 * closed.abs().max(1.0),
                    "α={alpha} λ={lambda}: {numeric} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn phi_matches_numeric() {
        let mu = 0.05;
        for alpha in [-1.0, 0.0, 0.5, 1.5] {
            let u = Power::new(alpha);
            for x in [0.5, 2.0, 20.0] {
                let numeric = u.phi_numeric(x, mu).unwrap();
                let closed = u.phi(x, mu);
                assert!(
                    (numeric - closed).abs() < 1e-5 * closed.abs().max(1.0),
                    "α={alpha} x={x}: {numeric} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn phi_is_gain_derivative() {
        let mu = 0.1;
        for alpha in [-0.5, 0.5, 1.5] {
            let u = Power::new(alpha);
            for x in [1.0, 5.0, 25.0] {
                let eps = 1e-5 * x;
                let fd = (u.gain(mu * (x + eps)) - u.gain(mu * (x - eps))) / (2.0 * eps);
                let closed = u.phi(x, mu);
                assert!(
                    (fd - closed).abs() < 1e-5 * closed.abs().max(1e-9),
                    "α={alpha} x={x}: {fd} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn psi_table_row() {
        let (s, mu) = (50.0, 0.05);
        for alpha in [-1.0, 0.0, 0.5, 1.5] {
            let u = Power::new(alpha);
            for y in [1.0, 10.0, 100.0] {
                let x = s / y;
                let expect = x * u.phi(x, mu);
                let got = u.psi(y, s, mu);
                assert!(
                    (got - expect).abs() < 1e-10 * expect.abs().max(1.0),
                    "α={alpha} y={y}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn sqrt_allocation_at_alpha_zero() {
        // α = 0 ⇒ allocation exponent 1/2 (the square-root allocation of
        // Cohen & Shenker).
        assert!((Power::new(0.0).allocation_exponent() - 0.5).abs() < 1e-15);
        // α = 1.5 ⇒ exponent 2 (highly skewed).
        assert!((Power::new(1.5).allocation_exponent() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn neglog_is_alpha_one_limit() {
        // gain and φ of Power(α) approach NegLog's as α → 1 (up to the
        // additive constant in gain, so compare gain *differences*).
        let nl = NegLog::new();
        let mu = 0.05;
        for eps in [1e-3, 1e-4] {
            for side in [-1.0, 1.0] {
                let u = Power::new(1.0 + side * eps);
                let d_power = u.gain(2.0) - u.gain(0.5);
                let d_nl = nl.gain(2.0) - nl.gain(0.5);
                assert!(
                    (d_power - d_nl).abs() < 50.0 * eps,
                    "gain diff α=1{side:+}·{eps}: {d_power} vs {d_nl}"
                );
                for x in [1.0, 10.0] {
                    let ratio = u.phi(x, mu) / nl.phi(x, mu);
                    assert!((ratio - 1.0).abs() < 100.0 * eps, "φ ratio {ratio}");
                }
            }
        }
    }

    #[test]
    fn neglog_closed_forms() {
        let nl = NegLog::new();
        // E[−ln Y] numeric check.
        let numeric = nl.gain_numeric(2.0).unwrap();
        assert!((numeric - nl.gain(2.0)).abs() < 1e-5);
        // φ = 1/x and constant ψ.
        assert_eq!(nl.phi(4.0, 0.05), 0.25);
        assert_eq!(nl.psi(17.0, 50.0, 0.05), 1.0);
        assert!(nl.requires_dedicated());
        assert_eq!(nl.kind(), UtilityKind::NegLog);
    }

    #[test]
    fn gain_increases_with_replicas() {
        for alpha in [-1.0, 0.5, 1.5] {
            let u = Power::new(alpha);
            let mut prev = u.gain(0.0);
            for k in 1..=20 {
                let g = u.gain(0.05 * k as f64);
                assert!(g > prev, "α={alpha}");
                prev = g;
            }
        }
    }

    #[test]
    #[should_panic(expected = "α < 2")]
    fn rejects_alpha_two() {
        let _ = Power::new(2.0);
    }

    #[test]
    #[should_panic(expected = "negative-logarithm")]
    fn rejects_alpha_one() {
        let _ = Power::new(1.0);
    }
}
