//! Delay-utility functions: the paper's model of user impatience (§3.2) and
//! the two transforms built on them.
//!
//! A delay-utility `h(t)` maps the waiting time `t` between a request and
//! its fulfillment to the gain perceived by the user (and, in aggregate, by
//! the network). It is monotonically non-increasing, may take negative
//! values (a *cost*), and may diverge at `t → 0⁺` (time-critical content)
//! or at `t → ∞` (unbounded waiting cost).
//!
//! Three derived quantities drive everything else:
//!
//! * the **differential delay-utility** `c(t) = −h′(t)` — the marginal loss
//!   per extra unit of waiting (a *measure* for discontinuous `h`, e.g. the
//!   step function's Dirac at `τ`);
//! * the **expected gain** `G(λ) = E[h(Y)]` for an exponentially
//!   distributed fulfillment delay `Y ~ Exp(λ)` — the per-request utility
//!   when an item has `x` replicas and `λ = μx` (Lemma 1);
//! * the **equilibrium transform** `φ(x) = ∫₀^∞ μ t e^{−μtx} c(t) dt
//!   = dG/dx` — Property 1: at the relaxed optimum `d_i·φ(x̃_i)` is equal
//!   across items;
//! * the **reaction function** `ψ(y) = (|S|/y)·φ(|S|/y)` — Property 2: the
//!   number of replicas QCR must create after a request that took `y`
//!   failed queries, so that its steady state meets Property 1.
//!
//! Every family from the paper's Table 1 ([`Step`], [`Exponential`],
//! [`Power`], [`NegLog`]) overrides the numeric defaults with its closed
//! forms; [`Custom`] supports arbitrary user-supplied `h` through numeric
//! differentiation and quadrature. The unit tests cross-validate every
//! closed form against the numeric path — that *is* the Table 1
//! reproduction (see also `impatience-bench`'s `table1_closed_forms`).

mod custom;
mod exponential;
mod fit;
mod power;
mod spec;
mod step;

pub use custom::Custom;
pub use exponential::Exponential;
pub use fit::{fit_empirical, fit_exponential, fit_step, Feedback, FitError};
pub use power::{NegLog, Power};
pub use spec::{parse_utility, UtilitySpecError};
pub use step::Step;

use crate::numeric::{integrate_semi_infinite_singular, QuadratureError};

/// Label identifying a delay-utility family and its parameter; used by the
/// experiment harness and for `Display`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UtilityKind {
    /// Step function `h(t) = 1{t ≤ τ}` with deadline `τ`.
    Step {
        /// The deadline `τ`.
        tau: f64,
    },
    /// Exponential decay `h(t) = e^{−νt}` with impatience rate `ν`.
    Exponential {
        /// The decay rate `ν`.
        nu: f64,
    },
    /// Power family `h(t) = t^{1−α}/(α−1)` with exponent `α < 2`, `α ≠ 1`.
    Power {
        /// The impatience exponent `α`.
        alpha: f64,
    },
    /// Negative logarithm `h(t) = −ln t` (the `α → 1` limit).
    NegLog,
    /// A user-supplied function.
    Custom,
}

impl std::fmt::Display for UtilityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UtilityKind::Step { tau } => write!(f, "step(τ={tau})"),
            UtilityKind::Exponential { nu } => write!(f, "exp(ν={nu})"),
            UtilityKind::Power { alpha } => write!(f, "power(α={alpha})"),
            UtilityKind::NegLog => write!(f, "neglog"),
            UtilityKind::Custom => write!(f, "custom"),
        }
    }
}

/// A monotonically non-increasing delay-utility function `h` together with
/// the transforms the replication theory needs.
///
/// Implementors must guarantee that `h` is non-increasing; all default
/// methods build on that. Families whose `c` contains a singular (Dirac)
/// part **must** override the integral-valued methods ([`Self::gain`],
/// [`Self::phi`]) since the numeric defaults integrate the density only.
pub trait DelayUtility: Send + Sync {
    /// The delay-utility `h(t)` for waiting time `t > 0`.
    fn h(&self, t: f64) -> f64;

    /// `h(0⁺)`: the value of immediate fulfillment. May be `+∞` for
    /// time-critical families (which the paper then restricts to the
    /// dedicated-node case, §3.2).
    fn h_zero(&self) -> f64;

    /// `lim_{t→∞} h(t)`: the value of a request that is never fulfilled.
    /// May be `−∞` for unbounded waiting costs.
    fn h_infinity(&self) -> f64;

    /// The *density part* of the differential delay-utility
    /// `c(t) = −h′(t) ≥ 0`. Defaults to a central finite difference of `h`.
    fn c(&self, t: f64) -> f64 {
        let eps = (t.abs().max(1e-6)) * 1e-6;
        -(self.h(t + eps) - self.h(t - eps)) / (2.0 * eps)
    }

    /// Expected gain `E[h(Y)]` for `Y ~ Exp(lambda)`: the per-request
    /// utility of an item whose total encounter rate with replicas is
    /// `lambda = μ·x` (Lemma 1, homogeneous dedicated case).
    ///
    /// For `lambda == 0` this is [`Self::h_infinity`] (the request is never
    /// fulfilled). The numeric default integrates `h(t)·λe^{−λt}` and is
    /// valid as long as `h` is integrable against the exponential density.
    fn gain(&self, lambda: f64) -> f64 {
        debug_assert!(lambda >= 0.0);
        if lambda == 0.0 {
            return self.h_infinity();
        }
        integrate_semi_infinite_singular(
            |t| self.h(t) * lambda * (-lambda * t).exp(),
            1.0 / lambda,
            1e-10,
        )
        .unwrap_or(f64::NAN)
    }

    /// The equilibrium transform of Property 1:
    /// `φ(x) = ∫₀^∞ μ t e^{−μtx} c(t) dt`, the marginal welfare of one more
    /// (fractional) replica. Strictly decreasing in `x` for non-degenerate
    /// `c`.
    fn phi(&self, x: f64, mu: f64) -> f64 {
        debug_assert!(x > 0.0 && mu > 0.0);
        integrate_semi_infinite_singular(
            |t| mu * t * (-mu * t * x).exp() * self.c(t),
            1.0 / (mu * x),
            1e-10,
        )
        .unwrap_or(f64::NAN)
    }

    /// The QCR reaction function of Property 2 (up to the free
    /// proportionality constant): `ψ(y) = (|S|/y)·φ(|S|/y)` where `y` is
    /// the query count observed at fulfillment and `servers = |S|`.
    fn psi(&self, y: f64, servers: f64, mu: f64) -> f64 {
        debug_assert!(y > 0.0 && servers > 0.0);
        let x = servers / y;
        x * self.phi(x, mu)
    }

    /// Discrete-time differential delay-utility
    /// `Δc(kδ) = h(kδ) − h((k+1)δ)` (paper §3.5).
    fn delta_c(&self, k: u64, delta: f64) -> f64 {
        let t = k as f64 * delta;
        if k == 0 {
            self.h_zero() - self.h(delta)
        } else {
            self.h(t) - self.h(t + delta)
        }
    }

    /// Whether `h(0⁺) = ∞`, restricting this utility to the dedicated-node
    /// population (a pure-P2P self-serve hit would earn infinite utility).
    fn requires_dedicated(&self) -> bool {
        self.h_zero().is_infinite()
    }

    /// Batched fulfillment-gain evaluation: appends `h(w)` for each wait
    /// `w > 0`, and `h(0⁺)` for `w == 0`, to `out` in input order — the
    /// exact per-fulfillment branch the simulator engines apply. A single
    /// virtual call per meeting amortizes the dynamic dispatch that a
    /// per-fulfillment `h` lookup would pay; families with cheap closed
    /// forms may override this to vectorize the loop body.
    fn h_batch(&self, waits: &[f64], out: &mut Vec<f64>) {
        out.reserve(waits.len());
        for &w in waits {
            out.push(if w > 0.0 { self.h(w) } else { self.h_zero() });
        }
    }

    /// Family label for reporting.
    fn kind(&self) -> UtilityKind;

    /// Numeric fallback for `gain` exposed for cross-validation in tests.
    fn gain_numeric(&self, lambda: f64) -> Result<f64, QuadratureError> {
        if lambda == 0.0 {
            return Ok(self.h_infinity());
        }
        integrate_semi_infinite_singular(
            |t| self.h(t) * lambda * (-lambda * t).exp(),
            1.0 / lambda,
            1e-10,
        )
    }

    /// Numeric fallback for `phi` exposed for cross-validation in tests.
    fn phi_numeric(&self, x: f64, mu: f64) -> Result<f64, QuadratureError> {
        integrate_semi_infinite_singular(
            |t| mu * t * (-mu * t * x).exp() * self.c(t),
            1.0 / (mu * x),
            1e-10,
        )
    }
}

impl std::fmt::Debug for dyn DelayUtility + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DelayUtility({})", self.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(UtilityKind::Step { tau: 1.0 }.to_string(), "step(τ=1)");
        assert_eq!(
            UtilityKind::Exponential { nu: 0.5 }.to_string(),
            "exp(ν=0.5)"
        );
        assert_eq!(
            UtilityKind::Power { alpha: -1.0 }.to_string(),
            "power(α=-1)"
        );
        assert_eq!(UtilityKind::NegLog.to_string(), "neglog");
        assert_eq!(UtilityKind::Custom.to_string(), "custom");
    }

    #[test]
    fn debug_for_trait_object() {
        let u: Box<dyn DelayUtility> = Box::new(Exponential::new(1.0));
        assert_eq!(format!("{u:?}"), "DelayUtility(exp(ν=1))");
    }

    #[test]
    fn psi_default_is_phi_relation() {
        // For any family, ψ(y) must equal (s/y)·φ(s/y) by construction.
        let u = Exponential::new(0.7);
        let (s, mu) = (50.0, 0.05);
        for y in [0.5, 1.0, 3.0, 10.0, 200.0] {
            let x = s / y;
            let lhs = u.psi(y, s, mu);
            let rhs = x * u.phi(x, mu);
            assert!((lhs - rhs).abs() < 1e-12 * rhs.abs().max(1.0));
        }
    }

    #[test]
    fn delta_c_telescopes_to_h_differences() {
        let u = Exponential::new(0.3);
        let delta = 0.25;
        // Σ_{k=1..K} Δc(kδ) = h(δ) − h((K+1)δ)
        let total: f64 = (1..=40).map(|k| u.delta_c(k, delta)).sum();
        let expect = u.h(delta) - u.h(41.0 * delta);
        assert!((total - expect).abs() < 1e-12);
    }
}
