//! Full placement matrices `x = (x_{i,m})`: which server holds which item.
//!
//! Used by the heterogeneous solver (Theorem 1) and to seed the simulator's
//! concrete caches from a count-level solution.

use super::{BitSet, ReplicaCounts};
use crate::rng::Xoshiro256;

/// A binary item×server placement with per-server capacity `ρ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocationMatrix {
    /// One bitset of items per server.
    caches: Vec<BitSet>,
    items: usize,
    rho: usize,
}

impl AllocationMatrix {
    /// Empty allocation for `servers` servers of capacity `rho` over a
    /// catalog of `items` items.
    pub fn new(items: usize, servers: usize, rho: usize) -> Self {
        AllocationMatrix {
            caches: (0..servers).map(|_| BitSet::new(items)).collect(),
            items,
            rho,
        }
    }

    /// Number of items in the catalog.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.caches.len()
    }

    /// Per-server capacity `ρ`.
    pub fn rho(&self) -> usize {
        self.rho
    }

    /// Whether server `m` caches item `i` (`x_{i,m} = 1`).
    pub fn holds(&self, item: usize, server: usize) -> bool {
        self.caches[server].contains(item)
    }

    /// Items cached at server `m`.
    pub fn cache_of(&self, server: usize) -> impl Iterator<Item = usize> + '_ {
        self.caches[server].iter()
    }

    /// Free slots remaining at server `m`.
    pub fn free_slots(&self, server: usize) -> usize {
        self.rho - self.caches[server].len()
    }

    /// Place item `i` at server `m`. Returns `false` if already present.
    ///
    /// # Panics
    /// Panics if the server's cache is full.
    pub fn place(&mut self, item: usize, server: usize) -> bool {
        if self.caches[server].contains(item) {
            return false;
        }
        assert!(
            self.caches[server].len() < self.rho,
            "server {server} cache is full (ρ = {})",
            self.rho
        );
        self.caches[server].insert(item)
    }

    /// Evict item `i` from server `m`. Returns `false` if absent.
    pub fn evict(&mut self, item: usize, server: usize) -> bool {
        self.caches[server].remove(item)
    }

    /// Servers currently holding item `i`.
    pub fn holders(&self, item: usize) -> Vec<usize> {
        (0..self.servers())
            .filter(|&m| self.caches[m].contains(item))
            .collect()
    }

    /// Collapse to replica counts `x_i = Σ_m x_{i,m}`.
    pub fn to_counts(&self) -> ReplicaCounts {
        let mut counts = vec![0u32; self.items];
        for cache in &self.caches {
            for item in cache.iter() {
                counts[item] += 1;
            }
        }
        ReplicaCounts::new(counts, self.servers())
    }

    /// Materialize counts into concrete placements, spreading each item's
    /// replicas across distinct servers in a capacity-respecting round
    /// robin. Deterministic; use [`Self::from_counts_shuffled`] to
    /// randomize which server gets which item.
    ///
    /// # Panics
    /// Panics if the counts do not fit (`Σ x_i > ρ·|S|` or `x_i > |S|`) —
    /// infeasible inputs indicate a solver bug upstream.
    pub fn from_counts(counts: &ReplicaCounts, rho: usize) -> Self {
        Self::from_counts_inner(counts, rho, None)
    }

    /// As [`Self::from_counts`], but the server order is shuffled so
    /// repeated trials see different concrete placements.
    pub fn from_counts_shuffled(counts: &ReplicaCounts, rho: usize, rng: &mut Xoshiro256) -> Self {
        Self::from_counts_inner(counts, rho, Some(rng))
    }

    fn from_counts_inner(counts: &ReplicaCounts, rho: usize, rng: Option<&mut Xoshiro256>) -> Self {
        let servers = counts.servers();
        assert!(
            counts.total() <= (rho * servers) as u64,
            "counts exceed the global budget ρ|S|"
        );
        let mut order: Vec<usize> = (0..servers).collect();
        if let Some(rng) = rng {
            rng.shuffle(&mut order);
        }
        let mut matrix = AllocationMatrix::new(counts.items(), servers, rho);
        // Place items most-replicated first so the round robin can always
        // find x_i distinct servers with room.
        let mut items: Vec<usize> = (0..counts.items()).collect();
        items.sort_by_key(|&i| std::cmp::Reverse(counts.count(i)));
        let mut cursor = 0usize;
        for &item in &items {
            let mut remaining = counts.count(item);
            let mut scanned = 0;
            while remaining > 0 {
                assert!(
                    scanned <= servers,
                    "infeasible counts: item {item} needs more distinct servers than available"
                );
                let server = order[cursor % servers];
                cursor += 1;
                scanned += 1;
                if matrix.caches[server].len() < rho && !matrix.caches[server].contains(item) {
                    matrix.caches[server].insert(item);
                    remaining -= 1;
                    scanned = 0;
                }
            }
        }
        matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_and_evict() {
        let mut m = AllocationMatrix::new(10, 3, 2);
        assert!(m.place(4, 0));
        assert!(!m.place(4, 0)); // duplicate
        assert!(m.place(7, 0));
        assert_eq!(m.free_slots(0), 0);
        assert!(m.holds(4, 0));
        assert_eq!(m.holders(4), vec![0]);
        assert!(m.evict(4, 0));
        assert!(!m.evict(4, 0));
        assert_eq!(m.free_slots(0), 1);
    }

    #[test]
    #[should_panic(expected = "cache is full")]
    fn cannot_overfill_server() {
        let mut m = AllocationMatrix::new(10, 1, 1);
        m.place(0, 0);
        m.place(1, 0);
    }

    #[test]
    fn counts_roundtrip() {
        let counts = ReplicaCounts::new(vec![3, 1, 0, 2], 3);
        let m = AllocationMatrix::from_counts(&counts, 2);
        assert_eq!(m.to_counts(), counts);
        // Replicas of one item are on distinct servers by construction.
        assert_eq!(m.holders(0).len(), 3);
    }

    #[test]
    fn shuffled_materialization_preserves_counts() {
        let counts = ReplicaCounts::new(vec![5, 2, 2, 1, 0], 5);
        let mut rng = Xoshiro256::seed_from_u64(8);
        let m = AllocationMatrix::from_counts_shuffled(&counts, 2, &mut rng);
        assert_eq!(m.to_counts(), counts);
        for s in 0..5 {
            assert!(m.cache_of(s).count() <= 2);
        }
    }

    #[test]
    fn tight_packing_succeeds() {
        // Full budget: 3 servers × ρ=2 = 6 slots, exactly 6 replicas.
        let counts = ReplicaCounts::new(vec![3, 2, 1], 3);
        let m = AllocationMatrix::from_counts(&counts, 2);
        assert_eq!(m.to_counts(), counts);
    }

    #[test]
    #[should_panic(expected = "exceed the global budget")]
    fn over_budget_counts_rejected() {
        let counts = ReplicaCounts::new(vec![2, 2], 2);
        let _ = AllocationMatrix::from_counts(&counts, 1);
    }

    #[test]
    fn empty_matrix() {
        let m = AllocationMatrix::new(5, 0, 3);
        assert_eq!(m.servers(), 0);
        assert_eq!(m.to_counts().items(), 5);
    }
}
