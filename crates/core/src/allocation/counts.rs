//! Replica-count allocations: `x_i = Σ_m x_{i,m}`.
//!
//! Under homogeneous contacts the social welfare depends on the allocation
//! only through these counts (Theorem 2), so the solvers work at this level
//! and only materialize a full matrix when the simulator needs concrete
//! placements.

/// An item-indexed vector of replica counts with the system's feasibility
/// bounds attached (`0 ≤ x_i ≤ |S|`, `Σ_i x_i ≤ ρ|S|`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaCounts {
    counts: Vec<u32>,
    servers: usize,
}

impl ReplicaCounts {
    /// An all-zero allocation over `items` items for `servers` servers.
    pub fn zero(items: usize, servers: usize) -> Self {
        ReplicaCounts {
            counts: vec![0; items],
            servers,
        }
    }

    /// Wrap explicit counts.
    ///
    /// # Panics
    /// Panics if any count exceeds the number of servers.
    pub fn new(counts: Vec<u32>, servers: usize) -> Self {
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c as usize <= servers,
                "item {i} has {c} replicas but only {servers} servers exist"
            );
        }
        ReplicaCounts { counts, servers }
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.counts.len()
    }

    /// Number of servers `|S|` (the per-item cap).
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The counts as a slice.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Count for item `i`.
    pub fn count(&self, i: usize) -> u32 {
        self.counts[i]
    }

    /// Total replicas `Σ_i x_i`.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Add one replica of item `i`.
    ///
    /// # Panics
    /// Panics if item `i` is already on every server.
    pub fn add(&mut self, i: usize) {
        assert!(
            (self.counts[i] as usize) < self.servers,
            "item {i} already replicated on all {} servers",
            self.servers
        );
        self.counts[i] += 1;
    }

    /// Remove one replica of item `i`.
    ///
    /// # Panics
    /// Panics if item `i` has no replicas.
    pub fn remove(&mut self, i: usize) {
        assert!(self.counts[i] > 0, "item {i} has no replicas to remove");
        self.counts[i] -= 1;
    }

    /// Whether the allocation satisfies the global budget `Σ x_i ≤ ρ|S|`.
    pub fn fits_budget(&self, rho: usize) -> bool {
        self.total() <= (rho * self.servers) as u64
    }

    /// Fraction of the total slot budget in use.
    pub fn utilization(&self, rho: usize) -> f64 {
        let budget = (rho * self.servers) as f64;
        if budget == 0.0 {
            return 0.0;
        }
        self.total() as f64 / budget
    }

    /// Number of items with zero replicas (lost content).
    pub fn missing_items(&self) -> usize {
        self.counts.iter().filter(|&&c| c == 0).count()
    }

    /// Counts as `f64` (for welfare evaluation).
    pub fn as_f64(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }
}

impl std::ops::Index<usize> for ReplicaCounts {
    type Output = u32;
    fn index(&self, i: usize) -> &u32 {
        &self.counts[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_add_remove() {
        let mut x = ReplicaCounts::zero(3, 5);
        assert_eq!(x.total(), 0);
        assert_eq!(x.missing_items(), 3);
        x.add(0);
        x.add(0);
        x.add(2);
        assert_eq!(x.count(0), 2);
        assert_eq!(x[2], 1);
        assert_eq!(x.total(), 3);
        assert_eq!(x.missing_items(), 1);
        x.remove(0);
        assert_eq!(x.count(0), 1);
    }

    #[test]
    fn budget_and_utilization() {
        let x = ReplicaCounts::new(vec![5, 3, 2], 5);
        assert!(x.fits_budget(2)); // budget 10, total 10
        assert!(!x.fits_budget(1)); // budget 5
        assert!((x.utilization(2) - 1.0).abs() < 1e-12);
        assert!((x.utilization(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_utilization() {
        let x = ReplicaCounts::zero(2, 0);
        assert_eq!(x.utilization(5), 0.0);
    }

    #[test]
    fn as_f64_roundtrip() {
        let x = ReplicaCounts::new(vec![1, 4], 10);
        assert_eq!(x.as_f64(), vec![1.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "only 2 servers exist")]
    fn rejects_count_above_servers() {
        let _ = ReplicaCounts::new(vec![3], 2);
    }

    #[test]
    #[should_panic(expected = "already replicated on all")]
    fn add_beyond_servers_panics() {
        let mut x = ReplicaCounts::new(vec![2], 2);
        x.add(0);
    }

    #[test]
    #[should_panic(expected = "no replicas to remove")]
    fn remove_from_zero_panics() {
        let mut x = ReplicaCounts::zero(1, 2);
        x.remove(0);
    }
}
