//! Cache-allocation state: who stores what.
//!
//! The paper's decision variable is the binary matrix `x = (x_{i,m})`
//! (item `i` is cached at server `m`), constrained per server by the cache
//! capacity `Σ_i x_{i,m} ≤ ρ` (§3.1). Under homogeneous contacts only the
//! *replica counts* `x_i = Σ_m x_{i,m}` matter (Theorem 2), so both
//! representations are provided with lossless conversions where possible.

mod bitset;
mod counts;
mod matrix;

pub use bitset::BitSet;
pub use counts::ReplicaCounts;
pub use matrix::AllocationMatrix;
