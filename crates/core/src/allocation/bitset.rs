//! A compact fixed-capacity bit set used for per-server cache membership.
//!
//! Implemented in-repo (rather than pulling a dependency) because the
//! allocation matrix is on the simulator's hot path and needs exactly four
//! operations: test, set, clear, and iterate.

/// Fixed-capacity set of small integers backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl BitSet {
    /// Create an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Maximum value (exclusive) this set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of elements currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `value` is in the set.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        debug_assert!(value < self.capacity, "bitset index out of range");
        self.words[value / 64] & (1u64 << (value % 64)) != 0
    }

    /// Insert `value`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bitset index out of range");
        let word = &mut self.words[value / 64];
        let mask = 1u64 << (value % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Remove `value`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bitset index out of range");
        let word = &mut self.words[value / 64];
        let mask = 1u64 << (value % 64);
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterate elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect values into a set sized to the maximum value seen.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let capacity = values.iter().max().map_or(0, |&m| m + 1);
        let mut set = BitSet::new(capacity);
        for v in values {
            set.insert(v);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129)); // duplicate
        assert_eq!(s.len(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = BitSet::new(200);
        let values = [5usize, 0, 199, 64, 63, 100];
        for &v in &values {
            s.insert(v);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 100, 199]);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.insert(7);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(3));
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [3usize, 1, 4, 1, 5].into_iter().collect();
        assert_eq!(s.len(), 4);
        assert_eq!(s.capacity(), 6);
        assert!(s.contains(5));
    }

    #[test]
    fn debug_format() {
        let s: BitSet = [2usize, 0].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{0, 2}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
