//! # impatience-serve
//!
//! Allocation-as-a-service: the long-running HTTP server behind
//! `impatience serve`. The paper's QCR gateway is meant to run *live* —
//! demand drifts, channels arrive, and the gateway keeps republishing
//! near-optimal allocations — so this crate wraps the workspace's
//! solvers and campaign runner in a service:
//!
//! * **`POST /v1/solve`** — synchronous analytic solves on a warm
//!   [`DeltaSolver`](impatience_core::solver::incremental::DeltaSolver)
//!   pool, with per-request bounded staleness (`stale_eps`).
//! * **`POST /v1/campaigns`** — a bounded FIFO job queue over
//!   [`run_campaign`](impatience_sim::runner::run_campaign); full queue
//!   sheds with 429, every job checkpoints and recovers bit-identically
//!   after a crash.
//! * **`GET /v1/campaigns/{id}/events`** — live SSE progress fed by the
//!   `obs` recorder event stream, with `Last-Event-ID` replay.
//! * **`GET /v1/artifacts/{hash}`** — content-addressed result
//!   documents (FNV-1a, crash-safe atomic writes).
//! * **`GET /healthz`**, **`GET /metrics`** — liveness and Prometheus
//!   text exposition.
//!
//! The implementation is dependency-free by design, matching the
//! repo's no-async discipline: `std::net::TcpListener`, a small
//! hand-rolled thread pool, blocking I/O. `API.md` at the repo root is
//! the operator-facing endpoint reference; `DESIGN.md` §17 covers the
//! architecture.
//!
//! ## Spinning up a server
//!
//! ```
//! use std::io::{Read, Write};
//! use impatience_serve::{ServeConfig, Server};
//!
//! let dir = std::env::temp_dir().join(format!("serve-doc-{}", std::process::id()));
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     data_dir: dir.clone(),
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//!
//! // Exercise /healthz over a plain TCP socket.
//! let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
//! conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! assert!(reply.contains("\"status\":\"ok\""));
//!
//! server.shutdown();
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod artifacts;
pub mod error;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod pool;
pub mod server;
pub mod solve;

pub use artifacts::{fnv1a_hash, ArtifactStore};
pub use error::ApiError;
pub use jobs::{JobManager, JobSpec, JobState, JobStatus};
pub use metrics::ServeMetrics;
pub use server::{ServeConfig, Server};
pub use solve::{SolveReply, SolveRequest, SolverPool};
