//! The error envelope: one JSON shape for every non-2xx response.
//!
//! Each [`ApiError`] kind maps to both an HTTP status and the CLI exit
//! code the same failure would produce under `impatience <cmd>` — the
//! taxonomy table lives in `API.md` and is round-tripped by
//! `tests/serve_api.rs`.

use impatience_json::Json;

/// A typed service error: everything a handler can fail with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// Malformed request: bad JSON, missing field, unknown route
    /// parameter. HTTP 400 · exit 2 (usage).
    BadRequest(String),
    /// Syntactically fine but semantically invalid model configuration
    /// (bad rates, impossible population). HTTP 422 · exit 3 (config).
    Config(String),
    /// The solver rejected the instance. HTTP 422 · exit 4 (solver).
    Solver(String),
    /// No such job, artifact, or route. HTTP 404 · exit 2 (usage).
    NotFound(String),
    /// Wrong HTTP method for an existing route. HTTP 405 · exit 2.
    MethodNotAllowed(String),
    /// The campaign queue is full: load shed, retry later.
    /// HTTP 429 · exit 9 (degraded).
    QueueFull {
        /// Configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// Request larger than the configured body limit.
    /// HTTP 413 · exit 2 (usage).
    TooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// Checkpoint machinery failed while running or recovering a job.
    /// HTTP 500 · exit 6 (checkpoint).
    Checkpoint(String),
    /// The campaign itself failed (all trials panicked, …).
    /// HTTP 500 · exit 7 (campaign).
    Campaign(String),
    /// Filesystem or socket trouble. HTTP 500 · exit 8 (io).
    Io(String),
    /// The server is draining and not accepting work.
    /// HTTP 503 · exit 9 (degraded).
    ShuttingDown,
}

impl ApiError {
    /// The HTTP status code this error renders as.
    pub fn http_status(&self) -> u16 {
        match self {
            ApiError::BadRequest(_) => 400,
            ApiError::Config(_) | ApiError::Solver(_) => 422,
            ApiError::NotFound(_) => 404,
            ApiError::MethodNotAllowed(_) => 405,
            ApiError::QueueFull { .. } => 429,
            ApiError::TooLarge { .. } => 413,
            ApiError::Checkpoint(_) | ApiError::Campaign(_) | ApiError::Io(_) => 500,
            ApiError::ShuttingDown => 503,
        }
    }

    /// The exit code the equivalent CLI failure reports (the PR 3
    /// taxonomy: 2 usage, 3 config, 4 solver, 6 checkpoint, 7 campaign,
    /// 8 io, 9 degraded).
    pub fn exit_code(&self) -> i32 {
        match self {
            ApiError::BadRequest(_)
            | ApiError::NotFound(_)
            | ApiError::MethodNotAllowed(_)
            | ApiError::TooLarge { .. } => 2,
            ApiError::Config(_) => 3,
            ApiError::Solver(_) => 4,
            ApiError::Checkpoint(_) => 6,
            ApiError::Campaign(_) => 7,
            ApiError::Io(_) => 8,
            ApiError::QueueFull { .. } | ApiError::ShuttingDown => 9,
        }
    }

    /// Stable machine-readable kind tag used in the envelope.
    pub fn kind(&self) -> &'static str {
        match self {
            ApiError::BadRequest(_) => "bad_request",
            ApiError::Config(_) => "config",
            ApiError::Solver(_) => "solver",
            ApiError::NotFound(_) => "not_found",
            ApiError::MethodNotAllowed(_) => "method_not_allowed",
            ApiError::QueueFull { .. } => "queue_full",
            ApiError::TooLarge { .. } => "too_large",
            ApiError::Checkpoint(_) => "checkpoint",
            ApiError::Campaign(_) => "campaign",
            ApiError::Io(_) => "io",
            ApiError::ShuttingDown => "shutting_down",
        }
    }

    /// Human-readable message for the envelope.
    pub fn message(&self) -> String {
        match self {
            ApiError::BadRequest(m)
            | ApiError::Config(m)
            | ApiError::Solver(m)
            | ApiError::NotFound(m)
            | ApiError::MethodNotAllowed(m)
            | ApiError::Checkpoint(m)
            | ApiError::Campaign(m)
            | ApiError::Io(m) => m.clone(),
            ApiError::QueueFull { capacity } => {
                format!("campaign queue is full ({capacity} jobs); retry later")
            }
            ApiError::TooLarge { limit } => {
                format!("request body exceeds the {limit}-byte limit")
            }
            ApiError::ShuttingDown => "server is shutting down".to_string(),
        }
    }

    /// The JSON error envelope:
    /// `{"error":{"kind","message","status","exit_code"}}`.
    pub fn envelope(&self) -> Json {
        Json::obj([(
            "error",
            Json::obj([
                ("kind", Json::from(self.kind())),
                ("message", Json::from(self.message())),
                ("status", Json::from(u64::from(self.http_status()))),
                ("exit_code", Json::from(i64::from(self.exit_code()))),
            ]),
        )])
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_and_exit_code_mapping() {
        let table: Vec<(ApiError, u16, i32)> = vec![
            (ApiError::BadRequest("x".into()), 400, 2),
            (ApiError::Config("x".into()), 422, 3),
            (ApiError::Solver("x".into()), 422, 4),
            (ApiError::NotFound("x".into()), 404, 2),
            (ApiError::MethodNotAllowed("x".into()), 405, 2),
            (ApiError::QueueFull { capacity: 4 }, 429, 9),
            (ApiError::TooLarge { limit: 8 }, 413, 2),
            (ApiError::Checkpoint("x".into()), 500, 6),
            (ApiError::Campaign("x".into()), 500, 7),
            (ApiError::Io("x".into()), 500, 8),
            (ApiError::ShuttingDown, 503, 9),
        ];
        for (err, status, exit) in table {
            assert_eq!(err.http_status(), status, "{err:?}");
            assert_eq!(err.exit_code(), exit, "{err:?}");
        }
    }

    #[test]
    fn envelope_is_parseable_and_complete() {
        let err = ApiError::QueueFull { capacity: 2 };
        let mut out = String::new();
        err.envelope().write(&mut out);
        let json = impatience_json::Json::parse(&out).unwrap();
        let e = json.get("error").unwrap();
        assert_eq!(e.get("kind").unwrap().as_str(), Some("queue_full"));
        assert_eq!(e.get("status").unwrap().as_u64(), Some(429));
        assert_eq!(e.get("exit_code").unwrap().as_i64(), Some(9));
        assert!(e.get("message").unwrap().as_str().unwrap().contains("2"));
    }
}
