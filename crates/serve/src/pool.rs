//! A fixed-size worker pool for connection handling.
//!
//! `std::sync::mpsc` with a shared receiver: the accept loop pushes
//! jobs, `threads` workers pop and run them. No async runtime — the
//! repo's no-dependency discipline — and deliberately tiny: the only
//! lifecycle is "submit until dropped, then drain and join".

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads consuming closures in FIFO order.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `threads` workers (clamped to at least 1).
    pub fn new(threads: usize, name: &str) -> ThreadPool {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .unwrap_or_else(|e| panic!("cannot spawn pool worker: {e}"))
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Enqueue a job. Jobs submitted before drop are all executed.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(tx) = &self.tx {
            // Send fails only when every worker has exited, which only
            // happens after drop; dropping the job then is correct.
            let _ = tx.send(Box::new(job));
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // sender dropped: pool shutting down
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.tx.take(); // close the channel; workers drain then exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs_before_shutdown() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4, "test");
            for _ in 0..64 {
                let done = Arc::clone(&done);
                pool.execute(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop joins the workers after the queue drains
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }
}
