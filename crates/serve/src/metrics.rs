//! The server's shared [`MetricsRegistry`] and the metric names it owns.
//!
//! One registry per [`Server`](crate::Server) instance (not the
//! process-global one, so parallel tests don't cross-contaminate),
//! rendered on demand by `GET /metrics` in Prometheus text exposition
//! format — the same format `impatience trace lint-prom` and
//! `obs::parse_prometheus` consume.

use std::sync::{Arc, Mutex, MutexGuard};

use impatience_obs::{Histogram, MetricsRegistry};

/// Solve-latency histogram range (milliseconds). With 4096 buckets the
/// exported power-of-two edge grid is 1 ms, 2 ms, …, 4096 ms.
const LATENCY_RANGE_MS: f64 = 4096.0;
const LATENCY_BUCKETS: usize = 4096;

/// Shared handle on the server's metrics state.
#[derive(Clone)]
pub struct ServeMetrics {
    inner: Arc<Mutex<Inner>>,
}

struct Inner {
    registry: MetricsRegistry,
    solve_latency: Histogram,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        ServeMetrics {
            inner: Arc::new(Mutex::new(Inner {
                registry: MetricsRegistry::new(),
                solve_latency: Histogram::new(LATENCY_RANGE_MS, LATENCY_BUCKETS),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Count one handled HTTP request by route template and status.
    pub fn http_request(&self, route: &str, status: u16) {
        let status = status.to_string();
        self.lock().registry.counter_add(
            "impatience_http_requests_total",
            "HTTP requests handled, by route template and status code.",
            &[("route", route), ("status", &status)],
            1.0,
        );
    }

    /// Record one synchronous solve: wall latency plus pool reuse.
    pub fn solve(&self, latency_ms: f64, pool_hit: bool) {
        let mut inner = self.lock();
        inner.solve_latency.record(latency_ms);
        let outcome = if pool_hit { "hit" } else { "miss" };
        inner.registry.counter_add(
            "impatience_solver_pool_total",
            "Warm DeltaSolver pool checkouts, by hit/miss.",
            &[("outcome", outcome)],
            1.0,
        );
    }

    /// Track the campaign queue depth gauge.
    pub fn queue_depth(&self, depth: usize) {
        self.lock().registry.gauge_set(
            "impatience_campaign_queue_depth",
            "Campaign jobs currently queued (accepted, not yet running).",
            &[],
            depth as f64,
        );
    }

    /// Count one campaign reaching a terminal disposition
    /// (`done` / `failed` / `shed`).
    pub fn campaign(&self, disposition: &str) {
        self.lock().registry.counter_add(
            "impatience_campaigns_total",
            "Campaign jobs by terminal disposition.",
            &[("disposition", disposition)],
            1.0,
        );
    }

    /// Count SSE frames actually written to subscribers.
    pub fn sse_events(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.lock().registry.counter_add(
            "impatience_sse_events_streamed_total",
            "Server-sent event frames delivered to subscribers.",
            &[],
            n as f64,
        );
    }

    /// Render the Prometheus exposition, folding in the latency
    /// histogram snapshot.
    pub fn render(&self) -> String {
        let mut inner = self.lock();
        if inner.solve_latency.count() > 0 {
            let hist = inner.solve_latency.clone();
            inner.registry.histogram_observe(
                "impatience_solve_latency_ms",
                "POST /v1/solve wall latency (milliseconds).",
                &[],
                &hist,
            );
        }
        inner.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_obs::parse_prometheus;

    #[test]
    fn exposition_parses_and_carries_all_families() {
        let m = ServeMetrics::new();
        m.http_request("/v1/solve", 200);
        m.http_request("/v1/campaigns", 429);
        m.solve(3.5, true);
        m.solve(7.0, false);
        m.queue_depth(2);
        m.campaign("done");
        m.sse_events(17);
        let text = m.render();
        let samples = parse_prometheus(&text).unwrap();
        let has = |name: &str| samples.iter().any(|s| s.name.starts_with(name));
        assert!(has("impatience_http_requests_total"));
        assert!(has("impatience_solver_pool_total"));
        assert!(has("impatience_campaign_queue_depth"));
        assert!(has("impatience_campaigns_total"));
        assert!(has("impatience_sse_events_streamed_total"));
        assert!(has("impatience_solve_latency_ms"));
    }
}
