//! A deliberately small HTTP/1.1 subset over `std::net::TcpStream`.
//!
//! Enough for the service surface and nothing more: request line +
//! headers + `Content-Length` bodies in, status + headers + body (or a
//! streamed SSE body) out, every connection `Connection: close`. No
//! chunked encoding, no keep-alive, no TLS — the repo's no-async,
//! no-dependency discipline applied to the wire.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::error::ApiError;

/// Maximum accepted header block size (request line included).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body size.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component, percent-decoding not applied (the API uses none).
    pub path: String,
    /// `?key=value&…` parameters, last occurrence wins.
    pub query: BTreeMap<String, String>,
    /// Lower-cased header name → value.
    pub headers: BTreeMap<String, String>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Read one request from `stream`.
    pub fn read_from(stream: &mut TcpStream) -> Result<Request, ApiError> {
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ApiError::Io(format!("cannot clone stream: {e}")))?,
        );

        let mut line = String::new();
        let mut head_bytes = 0usize;
        reader
            .read_line(&mut line)
            .map_err(|e| ApiError::Io(format!("reading request line: {e}")))?;
        head_bytes += line.len();
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| ApiError::BadRequest("empty request line".into()))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| ApiError::BadRequest("request line lacks a path".into()))?
            .to_string();

        let mut headers = BTreeMap::new();
        loop {
            let mut h = String::new();
            let n = reader
                .read_line(&mut h)
                .map_err(|e| ApiError::Io(format!("reading headers: {e}")))?;
            head_bytes += n;
            if head_bytes > MAX_HEAD_BYTES {
                return Err(ApiError::TooLarge {
                    limit: MAX_HEAD_BYTES,
                });
            }
            let h = h.trim_end();
            if n == 0 || h.is_empty() {
                break;
            }
            if let Some((name, value)) = h.split_once(':') {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
        }

        let mut body = Vec::new();
        if let Some(len) = headers.get("content-length") {
            let len: usize = len
                .parse()
                .map_err(|_| ApiError::BadRequest(format!("bad content-length `{len}`")))?;
            if len > MAX_BODY_BYTES {
                return Err(ApiError::TooLarge {
                    limit: MAX_BODY_BYTES,
                });
            }
            body.resize(len, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| ApiError::Io(format!("reading body: {e}")))?;
        }

        let (path, query) = parse_target(&target);
        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
        })
    }

    /// The request body as UTF-8 JSON.
    pub fn json(&self) -> Result<impatience_json::Json, ApiError> {
        let text = std::str::from_utf8(&self.body)
            .map_err(|_| ApiError::BadRequest("body is not UTF-8".into()))?;
        impatience_json::Json::parse(text)
            .map_err(|e| ApiError::BadRequest(format!("body is not valid JSON: {e}")))
    }
}

fn parse_target(target: &str) -> (String, BTreeMap<String, String>) {
    let mut query = BTreeMap::new();
    let (path, qs) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => query.insert(k.to_string(), v.to_string()),
            None => query.insert(pair.to_string(), String::new()),
        };
    }
    (path.to_string(), query)
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Write head + body for a fixed-length response (`Connection: close`).
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        status,
        status_text(status),
        content_type,
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Serialize `json` and send it with the given status.
pub fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    json: &impatience_json::Json,
) -> std::io::Result<()> {
    let mut body = String::new();
    json.write(&mut body);
    body.push('\n');
    respond(stream, status, "application/json", body.as_bytes())
}

/// Send the error envelope for `err`.
pub fn respond_error(stream: &mut TcpStream, err: &ApiError) -> std::io::Result<()> {
    respond_json(stream, err.http_status(), &err.envelope())
}

/// Start a streamed (SSE) response: head only, body follows via
/// [`write_sse_event`]. The connection stays open until the handler
/// returns and the stream drops.
pub fn start_sse(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\ncontent-type: text/event-stream\r\ncache-control: no-cache\r\nconnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Write one SSE frame: `id: N`, optional `event:`, one `data:` line.
pub fn write_sse_event(
    stream: &mut TcpStream,
    id: Option<usize>,
    event: Option<&str>,
    data: &str,
) -> std::io::Result<()> {
    let mut frame = String::new();
    if let Some(id) = id {
        frame.push_str("id: ");
        frame.push_str(&id.to_string());
        frame.push('\n');
    }
    if let Some(event) = event {
        frame.push_str("event: ");
        frame.push_str(event);
        frame.push('\n');
    }
    // The JSONL payloads are single-line by construction, but split
    // defensively: a bare newline inside `data:` would desynchronize
    // the SSE framing.
    for line in data.lines() {
        frame.push_str("data: ");
        frame.push_str(line);
        frame.push('\n');
    }
    frame.push('\n');
    stream.write_all(frame.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parsing_splits_path_and_query() {
        let (path, query) = parse_target("/v1/campaigns/j0001/events?offset=12&follow=0");
        assert_eq!(path, "/v1/campaigns/j0001/events");
        assert_eq!(query.get("offset").map(String::as_str), Some("12"));
        assert_eq!(query.get("follow").map(String::as_str), Some("0"));
        let (path, query) = parse_target("/healthz");
        assert_eq!(path, "/healthz");
        assert!(query.is_empty());
    }

    #[test]
    fn request_roundtrip_over_socket() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /v1/solve?x=1 HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\n{}")
                .unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = Request::read_from(&mut conn).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.query.get("x").map(String::as_str), Some("1"));
        assert_eq!(req.body, b"{}");
        assert!(req.json().unwrap().as_object().unwrap().is_empty());
        respond_json(
            &mut conn,
            200,
            &impatience_json::Json::obj([("ok", true.into())]),
        )
        .unwrap();
        drop(conn);
        let reply = client.join().unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(reply.contains("{\"ok\":true}"));
    }

    #[test]
    fn oversized_body_is_rejected() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let head = format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            );
            let _ = s.write_all(head.as_bytes());
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            out
        });
        let (mut conn, _) = listener.accept().unwrap();
        let err = Request::read_from(&mut conn).unwrap_err();
        assert_eq!(err.http_status(), 413);
        respond_error(&mut conn, &err).unwrap();
        drop(conn);
        let reply = client.join().unwrap();
        assert!(reply.starts_with("HTTP/1.1 413"));
    }
}
