//! Content-addressed artifact store backing `GET /v1/artifacts/{hash}`.
//!
//! Artifacts are addressed by the FNV-1a 64-bit hash of their bytes —
//! the same `fnv1a:<16 hex>` scheme `impatience-exp` stamps into spec
//! manifests — and written once via [`AtomicFile`], so a byte-identical
//! document always lands at the same address and a crashed write never
//! leaves a partial artifact. Campaign result documents are the main
//! tenant: because they are deterministic (wall-clock telemetry is
//! excluded), a job that resumes after a kill produces the *same*
//! artifact hash as an uninterrupted run — which is exactly how
//! `tests/serve_api.rs` checks bit-identical recovery.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use impatience_obs::AtomicFile;

use crate::error::ApiError;

/// FNV-1a 64-bit, formatted like `impatience-exp` spec hashes.
pub fn fnv1a_hash(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a:{h:016x}")
}

/// A directory of write-once, hash-addressed artifacts.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Open (creating if needed) the store under `dir`.
    pub fn open(dir: &Path) -> Result<Self, ApiError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ApiError::Io(format!("cannot create artifact dir {dir:?}: {e}")))?;
        Ok(ArtifactStore {
            dir: dir.to_path_buf(),
        })
    }

    /// `fnv1a:<hex>` (or bare `<hex>`) → on-disk path.
    fn path_for(&self, hash: &str) -> Option<PathBuf> {
        let hex = hash.strip_prefix("fnv1a:").unwrap_or(hash);
        if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(self.dir.join(format!("{}.json", hex.to_ascii_lowercase())))
    }

    /// Store `bytes`, returning their address. Idempotent: re-storing
    /// identical bytes is a no-op returning the same hash.
    pub fn put(&self, bytes: &[u8]) -> Result<String, ApiError> {
        let hash = fnv1a_hash(bytes);
        let path = match self.path_for(&hash) {
            Some(p) => p,
            None => return Err(ApiError::Io(format!("unrepresentable hash {hash}"))),
        };
        if path.exists() {
            return Ok(hash);
        }
        let mut file = AtomicFile::create(&path)
            .map_err(|e| ApiError::Io(format!("cannot create artifact: {e}")))?;
        file.write_all(bytes)
            .and_then(|()| file.commit())
            .map_err(|e| ApiError::Io(format!("cannot write artifact: {e}")))?;
        Ok(hash)
    }

    /// Fetch the artifact at `hash`.
    pub fn get(&self, hash: &str) -> Result<Vec<u8>, ApiError> {
        let path = self
            .path_for(hash)
            .ok_or_else(|| ApiError::BadRequest(format!("malformed artifact hash `{hash}`")))?;
        if !path.exists() {
            return Err(ApiError::NotFound(format!("no artifact {hash}")));
        }
        std::fs::read(&path).map_err(|e| ApiError::Io(format!("cannot read artifact: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_matches_exp_spec_idiom() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(fnv1a_hash(b""), "fnv1a:cbf29ce484222325");
        assert_ne!(fnv1a_hash(b"a"), fnv1a_hash(b"b"));
    }

    #[test]
    fn put_get_roundtrip_and_idempotence() {
        let dir = std::env::temp_dir().join(format!("impatience-artifacts-{}", std::process::id()));
        let store = ArtifactStore::open(&dir).unwrap();
        let h1 = store.put(b"{\"x\":1}").unwrap();
        let h2 = store.put(b"{\"x\":1}").unwrap();
        assert_eq!(h1, h2);
        assert_eq!(store.get(&h1).unwrap(), b"{\"x\":1}");
        // Bare-hex addressing works too.
        let bare = h1.strip_prefix("fnv1a:").unwrap();
        assert_eq!(store.get(bare).unwrap(), b"{\"x\":1}");
        // Unknown and malformed hashes map to the right errors.
        assert!(matches!(
            store.get("fnv1a:0000000000000000"),
            Err(ApiError::NotFound(_))
        ));
        assert!(matches!(store.get("nope"), Err(ApiError::BadRequest(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
