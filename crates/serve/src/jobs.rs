//! `POST /v1/campaigns`: the bounded job queue, the campaign runner
//! thread, and crash recovery.
//!
//! ## Lifecycle
//!
//! `queued → running → done | failed`. Submission persists the job spec
//! to `jobs/<id>.json` (atomic write) *before* acknowledging, then
//! enqueues; a single runner thread drains the queue in submission
//! order, so concurrently accepted campaigns complete FIFO. A full
//! queue sheds with 429 ([`ApiError::QueueFull`]) — the job is not
//! persisted, the client retries.
//!
//! ## Crash recovery
//!
//! Each job runs under [`run_campaign`] with a checkpoint at
//! `jobs/<id>.ckpt`. On startup the manager rescans the directory: any
//! spec without a matching `<id>.result.json` is re-enqueued and
//! resumes from its checkpoint (the fingerprint is re-verified), so a
//! `kill -9` mid-campaign costs at most one checkpoint interval of
//! work. The result document excludes wall-clock telemetry — the one
//! non-bit-stable part of a [`TrialAggregate`] — so a resumed job
//! produces a **byte-identical artifact** (same content hash) as an
//! uninterrupted run.
//!
//! ## Progress streaming
//!
//! The runner records through an [`obs` stream sink](StreamSink), so
//! every recorder event a campaign emits is live-tailable over
//! `GET /v1/campaigns/{id}/events` while the job runs; the stream
//! closes when the job reaches a terminal state.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use impatience_core::demand::{DemandProfile, Popularity};
use impatience_core::solver::fixed::{dominant, proportional, sqrt_proportional, uniform};
use impatience_core::utility::parse_utility;
use impatience_json::Json;
use impatience_obs::stream::{EventStream, StreamSink};
use impatience_obs::{write_atomic, Recorder, Sink as _};
use impatience_sim::runner::{run_campaign, CampaignOptions, CampaignOutcome};
use impatience_sim::{CampaignError, ContactSource, PolicyKind, SimConfig, TrialAggregate};

use crate::artifacts::ArtifactStore;
use crate::error::ApiError;
use crate::metrics::ServeMetrics;

/// A validated campaign job specification.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Total nodes in the homogeneous contact process.
    pub nodes: usize,
    /// Pairwise contact rate μ.
    pub mu: f64,
    /// Simulated horizon (minutes).
    pub duration: f64,
    /// Catalog size.
    pub items: usize,
    /// Per-node cache slots ρ.
    pub rho: usize,
    /// Pareto popularity exponent ω.
    pub omega: f64,
    /// Delay-utility spec (`step:10`, `exp:0.5`, …).
    pub utility: String,
    /// Policy name (`qcr`, `uni`, `sqrt`, `prop`, `dom`, `passive`).
    pub policy: String,
    /// Number of trials.
    pub trials: usize,
    /// Base seed (trial `k` uses `seed + k`).
    pub seed: u64,
    /// Trials per checkpoint interval.
    pub checkpoint_every: usize,
}

impl JobSpec {
    /// Parse and validate a submission body.
    pub fn from_json(body: &Json) -> Result<JobSpec, ApiError> {
        if body.as_object().is_none() {
            return Err(ApiError::BadRequest(
                "request body must be an object".into(),
            ));
        }
        let usize_or = |key: &str, default: usize| -> Result<usize, ApiError> {
            match body.get(key) {
                None => Ok(default),
                Some(v) => v.as_u64().map(|n| n as usize).ok_or_else(|| {
                    ApiError::BadRequest(format!("`{key}` must be a non-negative integer"))
                }),
            }
        };
        let f64_or = |key: &str, default: f64| -> Result<f64, ApiError> {
            match body.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| ApiError::BadRequest(format!("`{key}` must be a number"))),
            }
        };
        let str_or = |key: &str, default: &str| -> Result<String, ApiError> {
            match body.get(key) {
                None => Ok(default.to_string()),
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ApiError::BadRequest(format!("`{key}` must be a string"))),
            }
        };

        let spec = JobSpec {
            nodes: usize_or("nodes", 40)?,
            mu: f64_or("mu", 0.05)?,
            duration: f64_or("duration", 2000.0)?,
            items: usize_or("items", 20)?,
            rho: usize_or("rho", 2)?,
            omega: f64_or("omega", 1.0)?,
            utility: str_or("utility", "step:10")?,
            policy: str_or("policy", "qcr")?,
            trials: usize_or("trials", 8)?,
            seed: match body.get("seed") {
                None => 42,
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| ApiError::BadRequest("`seed` must be an integer".into()))?,
            },
            checkpoint_every: usize_or("checkpoint_every", 4)?,
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), ApiError> {
        if self.nodes < 2 {
            return Err(ApiError::Config("`nodes` must be ≥ 2".into()));
        }
        if !(self.mu.is_finite() && self.mu > 0.0) {
            return Err(ApiError::Config(format!(
                "`mu` must be finite and > 0, got {}",
                self.mu
            )));
        }
        if !(self.duration.is_finite() && self.duration > 0.0) {
            return Err(ApiError::Config("`duration` must be finite and > 0".into()));
        }
        if self.items == 0 {
            return Err(ApiError::Config("`items` must be ≥ 1".into()));
        }
        if !(self.omega.is_finite() && self.omega > 0.0) {
            return Err(ApiError::Config("`omega` must be finite and > 0".into()));
        }
        if self.trials == 0 {
            return Err(ApiError::Config("`trials` must be ≥ 1".into()));
        }
        parse_utility(&self.utility).map_err(|e| ApiError::Config(e.to_string()))?;
        match self.policy.as_str() {
            "qcr" | "passive" | "uni" | "sqrt" | "prop" | "dom" => Ok(()),
            other => Err(ApiError::Config(format!(
                "unknown policy `{other}` (expected qcr, passive, uni, sqrt, prop, dom)"
            ))),
        }
    }

    /// Serialize for persistence and status reports.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("nodes", Json::from(self.nodes)),
            ("mu", Json::from(self.mu)),
            ("duration", Json::from(self.duration)),
            ("items", Json::from(self.items)),
            ("rho", Json::from(self.rho)),
            ("omega", Json::from(self.omega)),
            ("utility", Json::from(self.utility.as_str())),
            ("policy", Json::from(self.policy.as_str())),
            ("trials", Json::from(self.trials)),
            ("seed", Json::from(self.seed)),
            ("checkpoint_every", Json::from(self.checkpoint_every)),
        ])
    }

    /// Compile to the simulator inputs.
    pub fn build(&self) -> Result<(SimConfig, ContactSource, PolicyKind), ApiError> {
        let demand = Popularity::pareto(self.items, self.omega).demand_rates(1.0);
        let profile = DemandProfile::uniform(self.items, self.nodes);
        let utility = parse_utility(&self.utility).map_err(|e| ApiError::Config(e.to_string()))?;
        let policy = match self.policy.as_str() {
            "qcr" => PolicyKind::qcr_default(),
            "passive" => PolicyKind::Passive { replicas: 1.0 },
            "uni" => PolicyKind::Static {
                label: "UNI",
                counts: uniform(self.items, self.nodes, self.rho),
            },
            "sqrt" => PolicyKind::Static {
                label: "SQRT",
                counts: sqrt_proportional(&demand, self.nodes, self.rho),
            },
            "prop" => PolicyKind::Static {
                label: "PROP",
                counts: proportional(&demand, self.nodes, self.rho),
            },
            "dom" => PolicyKind::Static {
                label: "DOM",
                counts: dominant(&demand, self.nodes, self.rho),
            },
            other => return Err(ApiError::Config(format!("unknown policy `{other}`"))),
        };
        let config = SimConfig::builder(self.items, self.rho)
            .demand(demand)
            .profile(profile)
            .utility(utility)
            .bin(60.0)
            .warmup_fraction(0.25)
            .build();
        let source = ContactSource::homogeneous(self.nodes, self.mu, self.duration);
        Ok((config, source, policy))
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and persisted, waiting for the runner.
    Queued,
    /// The runner thread is executing it.
    Running,
    /// Completed; the result artifact is stored.
    Done,
    /// Terminal failure (config, checkpoint, or campaign error).
    Failed,
}

impl JobState {
    /// Lower-case tag used in the API.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// Everything the server tracks about one job.
#[derive(Clone)]
pub struct JobStatus {
    /// Job id (`j0001`, …).
    pub id: String,
    /// Lifecycle state.
    pub state: JobState,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Result artifact hash once done.
    pub artifact: Option<String>,
    /// Failure message once failed.
    pub error: Option<String>,
    /// Trials restored from a checkpoint rather than re-run.
    pub resumed: usize,
    /// Trials executed by this process.
    pub executed: usize,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    stream: EventStream,
    artifact: Option<String>,
    error: Option<String>,
    resumed: usize,
    executed: usize,
}

struct ManagerState {
    jobs: HashMap<String, JobEntry>,
    queue: VecDeque<String>,
    /// Terminal completion order — what the FIFO e2e test asserts on.
    completed: Vec<String>,
    next_id: u64,
    draining: bool,
}

struct Shared {
    state: Mutex<ManagerState>,
    cond: Condvar,
    dir: PathBuf,
    store: ArtifactStore,
    metrics: ServeMetrics,
    queue_cap: usize,
}

/// The campaign job manager: bounded queue + single runner thread.
pub struct JobManager {
    shared: Arc<Shared>,
    runner: Mutex<Option<JoinHandle<()>>>,
}

fn lock(shared: &Shared) -> MutexGuard<'_, ManagerState> {
    shared
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl JobManager {
    /// Open the manager over `dir` (`<data_dir>/jobs`), recovering any
    /// interrupted jobs, and start the runner thread.
    pub fn start(
        dir: &Path,
        store: ArtifactStore,
        metrics: ServeMetrics,
        queue_cap: usize,
    ) -> Result<JobManager, ApiError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ApiError::Io(format!("cannot create job dir {dir:?}: {e}")))?;
        let mut state = ManagerState {
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            completed: Vec::new(),
            next_id: 1,
            draining: false,
        };
        recover(dir, &mut state)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            cond: Condvar::new(),
            dir: dir.to_path_buf(),
            store,
            metrics,
            queue_cap: queue_cap.max(1),
        });
        let runner = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("campaign-runner".into())
                .spawn(move || runner_loop(&shared))
                .map_err(|e| ApiError::Io(format!("cannot spawn runner: {e}")))?
        };
        Ok(JobManager {
            shared,
            runner: Mutex::new(Some(runner)),
        })
    }

    /// Accept a job: persist its spec, enqueue, return the id.
    /// Sheds with [`ApiError::QueueFull`] when the queue is at capacity.
    pub fn submit(&self, spec: JobSpec) -> Result<String, ApiError> {
        let id = {
            let mut st = lock(&self.shared);
            if st.draining {
                return Err(ApiError::ShuttingDown);
            }
            if st.queue.len() >= self.shared.queue_cap {
                self.shared.metrics.campaign("shed");
                return Err(ApiError::QueueFull {
                    capacity: self.shared.queue_cap,
                });
            }
            let id = format!("j{:04}", st.next_id);
            st.next_id += 1;
            // Persist before acknowledging: an accepted job survives a
            // crash even if it never started.
            let mut doc = String::new();
            spec.to_json().write(&mut doc);
            doc.push('\n');
            write_atomic(&self.shared.dir.join(format!("{id}.json")), doc.as_bytes())
                .map_err(|e| ApiError::Io(format!("cannot persist job spec: {e}")))?;
            st.jobs.insert(
                id.clone(),
                JobEntry {
                    spec,
                    state: JobState::Queued,
                    stream: EventStream::new(),
                    artifact: None,
                    error: None,
                    resumed: 0,
                    executed: 0,
                },
            );
            st.queue.push_back(id.clone());
            self.shared.metrics.queue_depth(st.queue.len());
            id
        };
        self.shared.cond.notify_all();
        Ok(id)
    }

    /// Status of one job.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let st = lock(&self.shared);
        st.jobs.get(id).map(|e| JobStatus {
            id: id.to_string(),
            state: e.state,
            spec: e.spec.clone(),
            artifact: e.artifact.clone(),
            error: e.error.clone(),
            resumed: e.resumed,
            executed: e.executed,
        })
    }

    /// The live event stream for a job (for SSE subscribers).
    pub fn stream(&self, id: &str) -> Option<EventStream> {
        lock(&self.shared).jobs.get(id).map(|e| e.stream.clone())
    }

    /// All jobs (sorted by id) plus the terminal completion order.
    pub fn list(&self) -> (Vec<JobStatus>, Vec<String>) {
        let st = lock(&self.shared);
        let mut jobs: Vec<JobStatus> = st
            .jobs
            .iter()
            .map(|(id, e)| JobStatus {
                id: id.clone(),
                state: e.state,
                spec: e.spec.clone(),
                artifact: e.artifact.clone(),
                error: e.error.clone(),
                resumed: e.resumed,
                executed: e.executed,
            })
            .collect();
        jobs.sort_by(|a, b| a.id.cmp(&b.id));
        (jobs, st.completed.clone())
    }

    /// Queue depth (jobs accepted but not yet running).
    pub fn queued(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// Whether a job is currently executing.
    pub fn running(&self) -> bool {
        lock(&self.shared)
            .jobs
            .values()
            .any(|e| e.state == JobState::Running)
    }

    /// Stop accepting work and join the runner once the current job (if
    /// any) finishes. Queued jobs stay persisted and recover on the
    /// next start.
    pub fn shutdown(&self) {
        lock(&self.shared).draining = true;
        self.shared.cond.notify_all();
        let handle = self
            .runner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Startup scan: load every persisted spec; jobs with a result file are
/// restored as done, the rest re-enqueue in id order (their checkpoints,
/// if any, make the re-run resume instead of restart).
fn recover(dir: &Path, state: &mut ManagerState) -> Result<(), ApiError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(()), // fresh directory
    };
    let mut pending: Vec<String> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(id) = name.strip_suffix(".json") else {
            continue;
        };
        if id.ends_with(".result") || !id.starts_with('j') {
            continue;
        }
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| ApiError::Io(format!("cannot read job spec {name}: {e}")))?;
        let json = Json::parse(&text)
            .map_err(|e| ApiError::Checkpoint(format!("corrupt job spec {name}: {e}")))?;
        let spec = JobSpec::from_json(&json)?;
        if let Ok(n) = id[1..].parse::<u64>() {
            state.next_id = state.next_id.max(n + 1);
        }
        let result_path = dir.join(format!("{id}.result.json"));
        let (jstate, artifact) = if result_path.exists() {
            let text = std::fs::read_to_string(&result_path)
                .map_err(|e| ApiError::Io(format!("cannot read job result: {e}")))?;
            let artifact = Json::parse(&text).ok().and_then(|j| {
                j.get("artifact")
                    .and_then(|a| a.as_str().map(str::to_string))
            });
            (JobState::Done, artifact)
        } else {
            pending.push(id.to_string());
            (JobState::Queued, None)
        };
        let stream = EventStream::new();
        if jstate == JobState::Done {
            // No replay across restarts: subscribers of a finished job
            // get an immediate terminal frame.
            stream.close();
        }
        state.jobs.insert(
            id.to_string(),
            JobEntry {
                spec,
                state: jstate,
                stream,
                artifact,
                error: None,
                resumed: 0,
                executed: 0,
            },
        );
    }
    pending.sort();
    state.queue.extend(pending);
    Ok(())
}

fn runner_loop(shared: &Shared) {
    loop {
        let (id, spec, stream) = {
            let mut st = lock(shared);
            loop {
                // Draining wins over queued work: queued specs are
                // already persisted and recover on the next start.
                if st.draining {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    shared.metrics.queue_depth(st.queue.len());
                    let Some(entry) = st.jobs.get_mut(&id) else {
                        continue;
                    };
                    entry.state = JobState::Running;
                    break (id, entry.spec.clone(), entry.stream.clone());
                }
                st = shared
                    .cond
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };

        let result = execute(shared, &id, &spec, &stream);
        let mut st = lock(shared);
        let disposition = match &result {
            Ok(_) => "done",
            Err(_) => "failed",
        };
        if let Some(entry) = st.jobs.get_mut(&id) {
            match result {
                Ok((hash, outcome)) => {
                    entry.state = JobState::Done;
                    entry.artifact = Some(hash);
                    entry.resumed = outcome.resumed;
                    entry.executed = outcome.executed;
                }
                Err(e) => {
                    entry.state = JobState::Failed;
                    entry.error = Some(e.message());
                }
            }
        }
        st.completed.push(id);
        drop(st);
        shared.metrics.campaign(disposition);
        stream.close();
    }
}

/// Run one job to a terminal state: campaign → deterministic result
/// document → artifact store → `<id>.result.json` marker → checkpoint
/// cleanup.
fn execute(
    shared: &Shared,
    id: &str,
    spec: &JobSpec,
    stream: &EventStream,
) -> Result<(String, CampaignOutcome), ApiError> {
    let (config, source, policy) = spec.build()?;
    let ckpt_path = shared.dir.join(format!("{id}.ckpt"));
    let options = CampaignOptions {
        checkpoint_path: Some(ckpt_path.clone()),
        checkpoint_every: spec.checkpoint_every,
        workers: None,
        abort_after_chunks: None,
        cli_args: vec!["serve-job".to_string(), id.to_string()],
    };
    let mut rec = Recorder::new(StreamSink::new(stream.clone()));
    let outcome = run_campaign(
        &config,
        &source,
        &policy,
        spec.trials,
        spec.seed,
        &options,
        &mut rec,
    )
    .map_err(|e| match e {
        CampaignError::Config(e) => ApiError::Config(e.to_string()),
        CampaignError::Checkpoint(e) => ApiError::Checkpoint(e.to_string()),
        e => ApiError::Campaign(e.to_string()),
    })?;
    rec.sink_mut().flush();

    let doc = result_document(id, spec, &outcome.aggregate, &outcome.skipped);
    let mut bytes = String::new();
    doc.write(&mut bytes);
    bytes.push('\n');
    let hash = shared.store.put(bytes.as_bytes())?;

    let mut marker = String::new();
    Json::obj([
        ("job", Json::from(id)),
        ("artifact", Json::from(hash.as_str())),
    ])
    .write(&mut marker);
    marker.push('\n');
    write_atomic(
        &shared.dir.join(format!("{id}.result.json")),
        marker.as_bytes(),
    )
    .map_err(|e| ApiError::Io(format!("cannot write result marker: {e}")))?;
    // The checkpoint has served its purpose; a stale one would block
    // nothing (the result marker wins) but tidy up anyway.
    let _ = std::fs::remove_file(&ckpt_path);
    Ok((hash, outcome))
}

fn f64_array(xs: &[f64]) -> Json {
    Json::Array(xs.iter().map(|&x| Json::from(x)).collect())
}

/// The deterministic result document.
///
/// Everything here is bit-stable across kill/resume cycles: the
/// aggregate's wall-clock telemetry (`workers`, `wall_s`,
/// `mean_trial_wall_s`, `worker_utilization`) is deliberately excluded,
/// which is what makes the artifact hash a recovery invariant.
fn result_document(
    id: &str,
    spec: &JobSpec,
    agg: &TrialAggregate,
    skipped: &[(usize, String)],
) -> Json {
    Json::obj([
        ("schema", Json::from("impatience-serve-result/1")),
        ("job", Json::from(id)),
        ("spec", spec.to_json()),
        ("label", Json::from(agg.label.as_str())),
        ("trials", Json::from(agg.trials)),
        ("mean_rate", Json::from(agg.mean_rate)),
        ("p5_rate", Json::from(agg.p5_rate)),
        ("p95_rate", Json::from(agg.p95_rate)),
        ("rates", f64_array(&agg.rates)),
        ("observed_series", f64_array(&agg.observed_series)),
        ("expected_series", f64_array(&agg.expected_series)),
        ("mean_final_replicas", f64_array(&agg.mean_final_replicas)),
        ("mean_transmissions", Json::from(agg.mean_transmissions)),
        ("mean_immediate_hits", Json::from(agg.mean_immediate_hits)),
        ("mean_unfulfilled", Json::from(agg.mean_unfulfilled)),
        (
            "mean_mandates_created",
            Json::from(agg.mean_mandates_created),
        ),
        (
            "mean_mandate_cap_hits",
            Json::from(agg.mean_mandate_cap_hits),
        ),
        (
            "skipped",
            Json::Array(
                skipped
                    .iter()
                    .map(|(k, msg)| {
                        Json::obj([
                            ("trial", Json::from(*k)),
                            ("panic", Json::from(msg.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

impl JobStatus {
    /// Serialize for `GET /v1/campaigns[/{id}]`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("job", Json::from(self.id.as_str())),
            ("state", Json::from(self.state.as_str())),
            ("spec", self.spec.to_json()),
            (
                "events",
                Json::from(format!("/v1/campaigns/{}/events", self.id)),
            ),
        ];
        if let Some(hash) = &self.artifact {
            fields.push(("artifact", Json::from(hash.as_str())));
            fields.push(("artifact_url", Json::from(format!("/v1/artifacts/{hash}"))));
        }
        if let Some(err) = &self.error {
            fields.push(("error", Json::from(err.as_str())));
        }
        fields.push(("resumed", Json::from(self.resumed)));
        fields.push(("executed", Json::from(self.executed)));
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> JobSpec {
        JobSpec {
            nodes: 10,
            mu: 0.05,
            duration: 200.0,
            items: 5,
            rho: 1,
            omega: 1.0,
            utility: "step:10".into(),
            policy: "uni".into(),
            trials: 2,
            seed: 7,
            checkpoint_every: 1,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("impatience-jobs-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spec_json_roundtrip() {
        let spec = tiny_spec();
        let json = spec.to_json();
        let back = JobSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn spec_validation() {
        let bad = [
            r#"{"nodes":1}"#,
            r#"{"mu":-1}"#,
            r#"{"trials":0}"#,
            r#"{"policy":"warp"}"#,
            r#"{"utility":"warp:9"}"#,
            r#"{"duration":0}"#,
        ];
        for body in bad {
            let err = JobSpec::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert_eq!(err.http_status(), 422, "{body}");
        }
    }

    #[test]
    fn manager_runs_a_job_to_done_and_result_is_content_addressed() {
        let dir = temp_dir("run");
        let store = ArtifactStore::open(&dir.join("artifacts")).unwrap();
        let mgr =
            JobManager::start(&dir.join("jobs"), store.clone(), ServeMetrics::new(), 4).unwrap();
        let id = mgr.submit(tiny_spec()).unwrap();
        let stream = mgr.stream(&id).unwrap();
        // Wait for the terminal close (runner thread drives the job).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while !stream.is_closed() {
            assert!(std::time::Instant::now() < deadline, "job did not finish");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let status = mgr.status(&id).unwrap();
        assert_eq!(status.state, JobState::Done);
        let hash = status.artifact.unwrap();
        let doc = store.get(&hash).unwrap();
        let json = Json::parse(std::str::from_utf8(&doc).unwrap()).unwrap();
        assert_eq!(
            json.get("schema").unwrap().as_str(),
            Some("impatience-serve-result/1")
        );
        assert_eq!(json.get("trials").unwrap().as_u64(), Some(2));
        // The campaign streamed events (trial_done at minimum).
        assert!(!stream.is_empty(), "campaign must stream recorder events");
        mgr.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queue_sheds_at_capacity() {
        let dir = temp_dir("shed");
        let store = ArtifactStore::open(&dir.join("artifacts")).unwrap();
        // Capacity 1 with a slow-ish first job: the runner may grab the
        // first job immediately, so fill the queue until shed.
        let mgr = JobManager::start(&dir.join("jobs"), store, ServeMetrics::new(), 1).unwrap();
        let mut shed = false;
        for _ in 0..8 {
            match mgr.submit(tiny_spec()) {
                Ok(_) => {}
                Err(ApiError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    shed = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(shed, "a capacity-1 queue must shed under a burst");
        mgr.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_restores_done_jobs_and_requeues_pending() {
        let dir = temp_dir("recover");
        let jobs_dir = dir.join("jobs");
        let store = ArtifactStore::open(&dir.join("artifacts")).unwrap();
        // First manager: run one job to completion.
        let mgr = JobManager::start(&jobs_dir, store.clone(), ServeMetrics::new(), 4).unwrap();
        let id = mgr.submit(tiny_spec()).unwrap();
        let stream = mgr.stream(&id).unwrap();
        while !stream.is_closed() {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let first_hash = mgr.status(&id).unwrap().artifact.unwrap();
        mgr.shutdown();
        drop(mgr);

        // Second manager over the same directory: the job is restored
        // done with the same artifact, and new ids don't collide.
        let mgr2 = JobManager::start(&jobs_dir, store, ServeMetrics::new(), 4).unwrap();
        let status = mgr2.status(&id).unwrap();
        assert_eq!(status.state, JobState::Done);
        assert_eq!(status.artifact.as_deref(), Some(first_hash.as_str()));
        let id2 = mgr2.submit(tiny_spec()).unwrap();
        assert_ne!(id, id2);
        mgr2.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
