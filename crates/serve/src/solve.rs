//! `POST /v1/solve`: synchronous analytic solves on a warm
//! [`DeltaSolver`] pool.
//!
//! A request names a homogeneous system (population, cache budget ρ,
//! contact rate μ, delay utility) plus a demand vector — either
//! explicit `demand` rates or a synthetic Pareto catalog
//! (`items` + `omega`). The handler checks a warm solver out of a pool
//! keyed by everything *except* demand, rebases its demand onto the
//! request ([`DeltaSolver::rebase_demand`] — only the coordinates that
//! moved pay), applies any explicit deltas, and answers with the
//! allocation and welfare. `stale_eps` switches the checkout into
//! bounded-staleness mode per request ([`DeltaSolver::set_staleness`]).
//!
//! Pool hits skip the dominant cost — the gain-table quadrature — which
//! is what makes p99 solve latency servable; the hit/miss ratio is
//! exported as `impatience_solver_pool_total`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use impatience_core::demand::{DemandRates, Popularity};
use impatience_core::solver::incremental::{Delta, DeltaOutcome, DeltaSolver};
use impatience_core::types::SystemModel;
use impatience_core::utility::{parse_utility, DelayUtility};
use impatience_json::Json;

use crate::error::ApiError;

/// A validated solve request.
#[derive(Debug)]
pub struct SolveRequest {
    system: SystemModel,
    utility_spec: String,
    utility: Arc<dyn DelayUtility>,
    demand: Vec<f64>,
    stale_eps: Option<f64>,
    deltas: Vec<Delta>,
}

fn get_usize(json: &Json, key: &str) -> Result<Option<usize>, ApiError> {
    match json.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| ApiError::BadRequest(format!("`{key}` must be a non-negative integer"))),
    }
}

fn get_f64(json: &Json, key: &str) -> Result<Option<f64>, ApiError> {
    match json.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| ApiError::BadRequest(format!("`{key}` must be a number"))),
    }
}

impl SolveRequest {
    /// Parse and validate the request body.
    ///
    /// Validation is strict up front because the underlying
    /// [`DeltaSolver::apply`] contract is panic-on-malformed: nothing
    /// invalid may reach the solver thread.
    pub fn from_json(body: &Json) -> Result<SolveRequest, ApiError> {
        if body.as_object().is_none() {
            return Err(ApiError::BadRequest(
                "request body must be an object".into(),
            ));
        }
        let nodes = get_usize(body, "nodes")?
            .ok_or_else(|| ApiError::BadRequest("`nodes` is required".into()))?;
        let rho = get_usize(body, "rho")?
            .ok_or_else(|| ApiError::BadRequest("`rho` is required".into()))?;
        let mu =
            get_f64(body, "mu")?.ok_or_else(|| ApiError::BadRequest("`mu` is required".into()))?;
        if !(mu.is_finite() && mu > 0.0) {
            return Err(ApiError::Config(format!(
                "`mu` must be finite and > 0, got {mu}"
            )));
        }
        let servers = get_usize(body, "servers")?;
        let system = match servers {
            None | Some(0) => {
                if nodes == 0 {
                    return Err(ApiError::Config("`nodes` must be ≥ 1".into()));
                }
                SystemModel::pure_p2p(nodes, rho, mu)
            }
            Some(s) => {
                if !(s >= 1 && s < nodes) {
                    return Err(ApiError::Config(format!(
                        "`servers` must satisfy 1 ≤ servers < nodes, got {s} of {nodes}"
                    )));
                }
                SystemModel::dedicated(nodes - s, s, rho, mu)
            }
        };

        let utility_spec = match body.get("utility") {
            None => "step:10".to_string(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| ApiError::BadRequest("`utility` must be a string".into()))?
                .to_string(),
        };
        let utility = parse_utility(&utility_spec).map_err(|e| ApiError::Config(e.to_string()))?;

        let demand: Vec<f64> = match body.get("demand") {
            Some(v) => {
                let arr = v
                    .as_array()
                    .ok_or_else(|| ApiError::BadRequest("`demand` must be an array".into()))?;
                let mut rates = Vec::with_capacity(arr.len());
                for (i, r) in arr.iter().enumerate() {
                    let r = r.as_f64().ok_or_else(|| {
                        ApiError::BadRequest(format!("`demand[{i}]` must be a number"))
                    })?;
                    if !(r.is_finite() && r >= 0.0) {
                        return Err(ApiError::Config(format!(
                            "`demand[{i}]` must be finite and ≥ 0, got {r}"
                        )));
                    }
                    rates.push(r);
                }
                rates
            }
            None => {
                let items = get_usize(body, "items")?.ok_or_else(|| {
                    ApiError::BadRequest("either `demand` or `items` is required".into())
                })?;
                if items == 0 {
                    return Err(ApiError::Config("`items` must be ≥ 1".into()));
                }
                let omega = get_f64(body, "omega")?.unwrap_or(1.0);
                if !(omega.is_finite() && omega > 0.0) {
                    return Err(ApiError::Config(format!(
                        "`omega` must be finite and > 0, got {omega}"
                    )));
                }
                Popularity::pareto(items, omega)
                    .demand_rates(1.0)
                    .rates()
                    .to_vec()
            }
        };
        if demand.is_empty() {
            return Err(ApiError::Config("demand catalog must be non-empty".into()));
        }

        let stale_eps = get_f64(body, "stale_eps")?;
        if let Some(eps) = stale_eps {
            if !(eps.is_finite() && eps >= 0.0) {
                return Err(ApiError::Config(format!(
                    "`stale_eps` must be finite and ≥ 0, got {eps}"
                )));
            }
        }

        let mut deltas = Vec::new();
        if let Some(v) = body.get("deltas") {
            let arr = v
                .as_array()
                .ok_or_else(|| ApiError::BadRequest("`deltas` must be an array".into()))?;
            for (i, d) in arr.iter().enumerate() {
                if let Some(item) = d.get("item") {
                    let item = item.as_u64().ok_or_else(|| {
                        ApiError::BadRequest(format!("`deltas[{i}].item` must be an integer"))
                    })? as usize;
                    if item >= demand.len() {
                        return Err(ApiError::Config(format!(
                            "`deltas[{i}].item` {item} out of range (catalog size {})",
                            demand.len()
                        )));
                    }
                    let rate = get_f64(d, "rate")?.ok_or_else(|| {
                        ApiError::BadRequest(format!("`deltas[{i}]` needs a `rate`"))
                    })?;
                    if !(rate.is_finite() && rate >= 0.0) {
                        return Err(ApiError::Config(format!(
                            "`deltas[{i}].rate` must be finite and ≥ 0, got {rate}"
                        )));
                    }
                    deltas.push(Delta::Demand { item, rate });
                } else if let Some(mu) = get_f64(d, "mu")? {
                    if !(mu.is_finite() && mu > 0.0) {
                        return Err(ApiError::Config(format!(
                            "`deltas[{i}].mu` must be finite and > 0, got {mu}"
                        )));
                    }
                    deltas.push(Delta::ContactRate(mu));
                } else if let Some(rho) = get_usize(d, "rho")? {
                    deltas.push(Delta::CacheBudget(rho));
                } else {
                    return Err(ApiError::BadRequest(format!(
                        "`deltas[{i}]` must be {{item,rate}}, {{mu}}, or {{rho}}"
                    )));
                }
            }
        }

        Ok(SolveRequest {
            system,
            utility_spec,
            utility,
            demand,
            stale_eps,
            deltas,
        })
    }
}

/// Pool key: everything about a solver that demand deltas cannot change.
fn key_of(system: &SystemModel, utility_spec: &str, items: usize) -> String {
    format!(
        "{:?}|rho={}|mu={}|u={}|n={}",
        system.population,
        system.cache_capacity,
        system.contact_rate.to_bits(),
        utility_spec,
        items
    )
}

/// A pool of warm [`DeltaSolver`]s keyed by system shape.
///
/// Checkout pops a warm solver (pool **hit**: the memoized gain table
/// survives) or builds a fresh one (**miss**: pays the quadrature).
/// Check-in re-keys from the solver's *current* system, so a request
/// whose deltas moved μ or ρ parks the solver under its new shape.
#[derive(Default)]
pub struct SolverPool {
    pools: Mutex<HashMap<String, Vec<DeltaSolver>>>,
    /// Cap on idle solvers kept per key (memory bound under fan-in).
    per_key: usize,
}

/// Outcome of one pooled solve, ready to serialize.
#[derive(Debug)]
pub struct SolveReply {
    /// Final allocation, one replica count per item.
    pub counts: Vec<u32>,
    /// Social welfare of the returned allocation.
    pub welfare: f64,
    /// Which path the solver took (`resolved`, `rebuilt`,
    /// `certified_stale`).
    pub outcome: &'static str,
    /// Replicas moved by the exchange (0 for certified-stale reuse).
    pub moved: u64,
    /// Certificate details when the outcome is `certified_stale`.
    pub certificate: Option<Json>,
    /// Whether the pool had a warm solver for this shape.
    pub pool_hit: bool,
}

impl SolverPool {
    /// An empty pool keeping at most `per_key` idle solvers per shape.
    pub fn new(per_key: usize) -> SolverPool {
        SolverPool {
            pools: Mutex::new(HashMap::new()),
            per_key: per_key.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, Vec<DeltaSolver>>> {
        self.pools
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Serve one request end to end.
    pub fn solve(&self, req: &SolveRequest) -> Result<SolveReply, ApiError> {
        let key = key_of(&req.system, &req.utility_spec, req.demand.len());
        let warm = self.lock().get_mut(&key).and_then(Vec::pop);
        let pool_hit = warm.is_some();
        let mut solver = match warm {
            Some(s) => s,
            None => {
                let demand = DemandRates::new(req.demand.clone());
                DeltaSolver::try_new(req.system, &demand, Arc::clone(&req.utility))
                    .map_err(|e| ApiError::Solver(e.to_string()))?
            }
        };

        solver.set_staleness(req.stale_eps);
        let mut outcome = if pool_hit {
            solver
                .rebase_demand(&req.demand)
                .map_err(|e| ApiError::Solver(e.to_string()))?
        } else {
            DeltaOutcome::Resolved { moved: 0 }
        };
        if !req.deltas.is_empty() {
            outcome = solver
                .apply(&req.deltas)
                .map_err(|e| ApiError::Solver(e.to_string()))?;
        }

        let (kind, moved, certificate) = match &outcome {
            DeltaOutcome::Resolved { moved } => ("resolved", *moved, None),
            DeltaOutcome::Rebuilt => ("rebuilt", 0, None),
            DeltaOutcome::CertifiedStale(cert) => (
                "certified_stale",
                0,
                Some(Json::obj([
                    ("accepted", Json::from(cert.accepted)),
                    ("eps", Json::from(cert.eps)),
                    ("gap", Json::from(cert.gap)),
                    ("scale", Json::from(cert.scale)),
                ])),
            ),
        };
        let reply = SolveReply {
            counts: solver.counts().counts().to_vec(),
            welfare: solver.welfare(),
            outcome: kind,
            moved,
            certificate,
            pool_hit,
        };

        // Park the solver for reuse under its (possibly delta-moved)
        // current shape; exact mode so a stale certificate can't leak
        // into the next request's baseline.
        solver.set_staleness(None);
        let park_key = key_of(solver.system(), &req.utility_spec, solver.rates().len());
        let mut pools = self.lock();
        let slot = pools.entry(park_key).or_default();
        if slot.len() < self.per_key {
            slot.push(solver);
        }
        Ok(reply)
    }

    /// Total idle solvers currently parked (for health reporting).
    pub fn idle(&self) -> usize {
        self.lock().values().map(Vec::len).sum()
    }
}

impl SolveReply {
    /// Serialize as the response body.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("welfare", Json::from(self.welfare)),
            (
                "counts",
                Json::Array(self.counts.iter().map(|&c| Json::from(c)).collect()),
            ),
            (
                "total_replicas",
                Json::from(self.counts.iter().map(|&c| u64::from(c)).sum::<u64>()),
            ),
            ("outcome", Json::from(self.outcome)),
            ("moved", Json::from(self.moved)),
            (
                "pool",
                Json::from(if self.pool_hit { "hit" } else { "miss" }),
            ),
        ];
        if let Some(cert) = &self.certificate {
            fields.push(("certificate", cert.clone()));
        }
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impatience_core::solver::greedy::try_greedy_homogeneous;

    fn req(body: &str) -> SolveRequest {
        SolveRequest::from_json(&Json::parse(body).unwrap()).unwrap()
    }

    #[test]
    fn solve_matches_scratch_greedy() {
        let pool = SolverPool::new(4);
        let r = req(r#"{"nodes":40,"rho":3,"mu":0.05,"items":12,"utility":"step:5"}"#);
        let reply = pool.solve(&r).unwrap();
        assert!(!reply.pool_hit);
        let demand = Popularity::pareto(12, 1.0).demand_rates(1.0);
        let fresh = try_greedy_homogeneous(
            &SystemModel::pure_p2p(40, 3, 0.05),
            &demand,
            parse_utility("step:5").unwrap().as_ref(),
        )
        .unwrap();
        assert_eq!(reply.counts, fresh.counts());

        // Second request with the same shape: pool hit, same answer.
        let reply2 = pool.solve(&r).unwrap();
        assert!(reply2.pool_hit);
        assert_eq!(reply2.counts, reply.counts);
        assert_eq!(reply2.welfare.to_bits(), reply.welfare.to_bits());
    }

    #[test]
    fn explicit_demand_and_deltas() {
        let pool = SolverPool::new(4);
        let r = req(r#"{"nodes":20,"rho":2,"mu":0.05,"demand":[1.0,0.5,0.2],
                "deltas":[{"item":2,"rate":3.0}],"utility":"step:5"}"#);
        let reply = pool.solve(&r).unwrap();
        let demand = DemandRates::new(vec![1.0, 0.5, 3.0]);
        let fresh = try_greedy_homogeneous(
            &SystemModel::pure_p2p(20, 2, 0.05),
            &demand,
            parse_utility("step:5").unwrap().as_ref(),
        )
        .unwrap();
        assert_eq!(reply.counts, fresh.counts());
    }

    #[test]
    fn stale_eps_certifies_small_nudges_on_warm_solver() {
        let pool = SolverPool::new(4);
        let base = r#"{"nodes":40,"rho":4,"mu":0.05,"items":16,"utility":"exp:0.5"}"#;
        pool.solve(&req(base)).unwrap();
        // Nudge one mid-rank item by 0.1 % — certifiably negligible at
        // ε = 0.05 — keeping the rest of the catalog identical so the
        // warm checkout's rebase is a no-op.
        let nudge = Popularity::pareto(16, 1.0).demand_rates(1.0).rate(8) * 1.001;
        let nudged = req(&format!(
            r#"{{"nodes":40,"rho":4,"mu":0.05,"items":16,"utility":"exp:0.5",
                "stale_eps":0.05,"deltas":[{{"item":8,"rate":{nudge}}}]}}"#
        ));
        let reply = pool.solve(&nudged).unwrap();
        assert!(reply.pool_hit);
        // The nudge is within ε of the Pareto baseline rate for item 8,
        // so the warm solver certifies instead of re-solving.
        assert_eq!(reply.outcome, "certified_stale");
        assert!(reply.certificate.is_some());
    }

    #[test]
    fn rekeys_on_structural_delta() {
        let pool = SolverPool::new(4);
        let r = req(
            r#"{"nodes":20,"rho":2,"mu":0.05,"items":6,"utility":"step:5",
                "deltas":[{"mu":0.1}]}"#,
        );
        let reply = pool.solve(&r).unwrap();
        assert_eq!(reply.outcome, "rebuilt");
        // The parked solver now has μ = 0.1: a fresh μ = 0.1 request hits.
        let r2 = req(r#"{"nodes":20,"rho":2,"mu":0.1,"items":6,"utility":"step:5"}"#);
        let reply2 = pool.solve(&r2).unwrap();
        assert!(reply2.pool_hit);
        // And a μ = 0.05 request misses (the old key has no solver).
        let r3 = req(r#"{"nodes":20,"rho":2,"mu":0.05,"items":6,"utility":"step:5"}"#);
        assert!(!pool.solve(&r3).unwrap().pool_hit);
    }

    #[test]
    fn validation_rejects_malformed_requests() {
        for (body, want_status) in [
            (r#"[1,2]"#, 400),
            (r#"{"rho":2,"mu":0.05,"items":6}"#, 400), // no nodes
            (r#"{"nodes":20,"rho":2,"items":6}"#, 400), // no mu
            (r#"{"nodes":20,"rho":2,"mu":0.0,"items":6}"#, 422), // bad mu
            (r#"{"nodes":20,"rho":2,"mu":0.05}"#, 400), // no demand
            (r#"{"nodes":20,"rho":2,"mu":0.05,"items":0}"#, 422), // empty catalog
            (
                r#"{"nodes":20,"servers":20,"rho":2,"mu":0.05,"items":6}"#,
                422,
            ),
            (r#"{"nodes":20,"rho":2,"mu":0.05,"demand":[1.0,-2.0]}"#, 422),
            (
                r#"{"nodes":20,"rho":2,"mu":0.05,"items":6,"stale_eps":-1}"#,
                422,
            ),
            (
                r#"{"nodes":20,"rho":2,"mu":0.05,"items":6,"deltas":[{"item":9,"rate":1}]}"#,
                422,
            ),
            (
                r#"{"nodes":20,"rho":2,"mu":0.05,"items":6,"deltas":[{"x":1}]}"#,
                400,
            ),
            (
                r#"{"nodes":20,"rho":2,"mu":0.05,"items":6,"utility":"warp:9"}"#,
                422,
            ),
        ] {
            let err = SolveRequest::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert_eq!(err.http_status(), want_status, "body: {body}");
        }
    }

    #[test]
    fn solver_error_maps_to_422() {
        // NegLog requires a dedicated population: pure P2P must be a
        // typed solver error, not a panic.
        let r = req(r#"{"nodes":20,"rho":2,"mu":0.05,"items":6,"utility":"neglog"}"#);
        let err = SolverPool::new(1).solve(&r).unwrap_err();
        assert!(matches!(err, ApiError::Solver(_)));
        assert_eq!(err.http_status(), 422);
    }
}
