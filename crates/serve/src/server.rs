//! The HTTP server: socket lifecycle, routing, and handlers.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use impatience_json::Json;
use impatience_obs::write_atomic;

use crate::artifacts::ArtifactStore;
use crate::error::ApiError;
use crate::http::{respond, respond_error, respond_json, start_sse, write_sse_event, Request};
use crate::jobs::{JobManager, JobSpec};
use crate::metrics::ServeMetrics;
use crate::pool::ThreadPool;
use crate::solve::{SolveRequest, SolverPool};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// State directory: `jobs/`, `artifacts/`, and `serve.addr` live here.
    pub data_dir: PathBuf,
    /// Campaign queue capacity (submissions beyond it shed with 429).
    pub queue_cap: usize,
    /// Connection-handling worker threads.
    pub http_threads: usize,
    /// Idle warm solvers kept per system shape.
    pub solver_pool_per_key: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: PathBuf::from("serve-data"),
            queue_cap: 32,
            http_threads: 8,
            solver_pool_per_key: 8,
        }
    }
}

struct Ctx {
    jobs: JobManager,
    store: ArtifactStore,
    solvers: SolverPool,
    metrics: ServeMetrics,
    started: Instant,
    shutting_down: AtomicBool,
}

/// A running `impatience serve` instance.
///
/// Binds in [`Server::start`]; [`Server::shutdown`] (or drop) stops the
/// accept loop, drains in-flight connections, and joins the campaign
/// runner after its current job.
pub struct Server {
    addr: std::net::SocketAddr,
    ctx: Arc<Ctx>,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Bind, recover persisted jobs, and start serving.
    ///
    /// Writes the bound address to `<data_dir>/serve.addr` (atomic) so
    /// scripts and tests can discover an ephemeral port.
    pub fn start(config: ServeConfig) -> Result<Server, ApiError> {
        std::fs::create_dir_all(&config.data_dir)
            .map_err(|e| ApiError::Io(format!("cannot create data dir: {e}")))?;
        let metrics = ServeMetrics::new();
        let store = ArtifactStore::open(&config.data_dir.join("artifacts"))?;
        let jobs = JobManager::start(
            &config.data_dir.join("jobs"),
            store.clone(),
            metrics.clone(),
            config.queue_cap,
        )?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ApiError::Io(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ApiError::Io(format!("cannot resolve bound address: {e}")))?;
        write_atomic(
            &config.data_dir.join("serve.addr"),
            format!("{addr}\n").as_bytes(),
        )
        .map_err(|e| ApiError::Io(format!("cannot write serve.addr: {e}")))?;

        let ctx = Arc::new(Ctx {
            jobs,
            store,
            solvers: SolverPool::new(config.solver_pool_per_key),
            metrics,
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
        });
        let accept = {
            let ctx = Arc::clone(&ctx);
            let threads = config.http_threads;
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &ctx, threads))
                .map_err(|e| ApiError::Io(format!("cannot spawn accept loop: {e}")))?
        };
        Ok(Server {
            addr,
            ctx,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Base URL, e.g. `http://127.0.0.1:41234`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stop accepting connections and wait for in-flight work
    /// (including the currently running campaign, if any) to finish.
    pub fn shutdown(&self) {
        self.ctx.shutting_down.store(true, Ordering::SeqCst);
        // Poke the accept loop out of `accept()`.
        let _ = TcpStream::connect(self.addr);
        let handle = self
            .accept
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        self.ctx.jobs.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>, threads: usize) {
    let pool = ThreadPool::new(threads, "serve-http");
    for conn in listener.incoming() {
        if ctx.shutting_down.load(Ordering::SeqCst) {
            break; // drop the pool: drains queued connections, joins
        }
        let Ok(stream) = conn else { continue };
        let ctx = Arc::clone(ctx);
        pool.execute(move || handle_connection(stream, &ctx));
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &Arc<Ctx>) {
    // A stalled peer must not wedge a pool worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    let req = match Request::read_from(&mut stream) {
        Ok(req) => req,
        Err(err) => {
            ctx.metrics.http_request("*", err.http_status());
            let _ = respond_error(&mut stream, &err);
            return;
        }
    };
    route(stream, req, ctx);
}

/// Split `/v1/campaigns/{id}[/events]` into its parts.
fn campaign_route(path: &str) -> Option<(&str, bool)> {
    let rest = path.strip_prefix("/v1/campaigns/")?;
    match rest.strip_suffix("/events") {
        Some(id) if !id.is_empty() && !id.contains('/') => Some((id, true)),
        None if !rest.is_empty() && !rest.contains('/') => Some((rest, false)),
        _ => None,
    }
}

fn route(mut stream: TcpStream, req: Request, ctx: &Arc<Ctx>) {
    let (template, result): (&str, Result<(), ApiError>) =
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => ("/healthz", handle_healthz(&mut stream, ctx)),
            ("GET", "/metrics") => ("/metrics", handle_metrics(&mut stream, ctx)),
            ("POST", "/v1/solve") => ("/v1/solve", handle_solve(&mut stream, &req, ctx)),
            ("POST", "/v1/campaigns") => ("/v1/campaigns", handle_submit(&mut stream, &req, ctx)),
            ("GET", "/v1/campaigns") => ("/v1/campaigns", handle_list(&mut stream, ctx)),
            ("GET", path) if path.starts_with("/v1/artifacts/") => (
                "/v1/artifacts/{hash}",
                handle_artifact(&mut stream, path, ctx),
            ),
            ("GET", path) => match campaign_route(path) {
                Some((id, true)) => {
                    // SSE long-polls; hand the connection its own thread
                    // so pool workers stay available for short requests.
                    let id = id.to_string();
                    let ctx2 = Arc::clone(ctx);
                    let offset = sse_offset(&req);
                    let follow = req.query.get("follow").map(String::as_str) != Some("0");
                    let _ = std::thread::Builder::new()
                        .name("serve-sse".into())
                        .spawn(move || {
                            let status = match handle_events(stream, &id, offset, follow, &ctx2) {
                                Ok(()) => 200,
                                Err(e) => e.http_status(),
                            };
                            ctx2.metrics
                                .http_request("/v1/campaigns/{id}/events", status);
                        });
                    return;
                }
                Some((id, false)) => ("/v1/campaigns/{id}", handle_status(&mut stream, id, ctx)),
                None => ("*", Err(ApiError::NotFound(format!("no route {path}")))),
            },
            (method, path) => {
                let known = matches!(
                    path,
                    "/healthz" | "/metrics" | "/v1/solve" | "/v1/campaigns"
                ) || campaign_route(path).is_some()
                    || path.starts_with("/v1/artifacts/");
                if known {
                    (
                        "*",
                        Err(ApiError::MethodNotAllowed(format!("{method} {path}"))),
                    )
                } else {
                    ("*", Err(ApiError::NotFound(format!("no route {path}"))))
                }
            }
        };
    match result {
        Ok(()) => ctx.metrics.http_request(template, 200),
        Err(err) => {
            ctx.metrics.http_request(template, err.http_status());
            let _ = respond_error(&mut stream, &err);
        }
    }
}

fn handle_healthz(stream: &mut TcpStream, ctx: &Arc<Ctx>) -> Result<(), ApiError> {
    let body = Json::obj([
        ("status", Json::from("ok")),
        ("queued", Json::from(ctx.jobs.queued())),
        ("running", Json::from(ctx.jobs.running())),
        ("solver_pool_idle", Json::from(ctx.solvers.idle())),
        ("uptime_s", Json::from(ctx.started.elapsed().as_secs_f64())),
    ]);
    respond_json(stream, 200, &body).map_err(|e| ApiError::Io(e.to_string()))
}

fn handle_metrics(stream: &mut TcpStream, ctx: &Arc<Ctx>) -> Result<(), ApiError> {
    let text = ctx.metrics.render();
    respond(stream, 200, "text/plain; version=0.0.4", text.as_bytes())
        .map_err(|e| ApiError::Io(e.to_string()))
}

fn handle_solve(stream: &mut TcpStream, req: &Request, ctx: &Arc<Ctx>) -> Result<(), ApiError> {
    let t0 = Instant::now();
    let body = req.json()?;
    let solve_req = SolveRequest::from_json(&body)?;
    let reply = ctx.solvers.solve(&solve_req)?;
    ctx.metrics
        .solve(t0.elapsed().as_secs_f64() * 1e3, reply.pool_hit);
    respond_json(stream, 200, &reply.to_json()).map_err(|e| ApiError::Io(e.to_string()))
}

fn handle_submit(stream: &mut TcpStream, req: &Request, ctx: &Arc<Ctx>) -> Result<(), ApiError> {
    if ctx.shutting_down.load(Ordering::SeqCst) {
        return Err(ApiError::ShuttingDown);
    }
    let body = req.json()?;
    let spec = JobSpec::from_json(&body)?;
    let id = ctx.jobs.submit(spec)?;
    let reply = Json::obj([
        ("job", Json::from(id.as_str())),
        ("state", Json::from("queued")),
        ("events", Json::from(format!("/v1/campaigns/{id}/events"))),
        ("status_url", Json::from(format!("/v1/campaigns/{id}"))),
    ]);
    respond_json(stream, 202, &reply).map_err(|e| ApiError::Io(e.to_string()))
}

fn handle_list(stream: &mut TcpStream, ctx: &Arc<Ctx>) -> Result<(), ApiError> {
    let (jobs, completed) = ctx.jobs.list();
    let body = Json::obj([
        (
            "jobs",
            Json::Array(jobs.iter().map(|j| j.to_json()).collect()),
        ),
        (
            "completed_order",
            Json::Array(completed.iter().map(|id| Json::from(id.as_str())).collect()),
        ),
    ]);
    respond_json(stream, 200, &body).map_err(|e| ApiError::Io(e.to_string()))
}

fn handle_status(stream: &mut TcpStream, id: &str, ctx: &Arc<Ctx>) -> Result<(), ApiError> {
    let status = ctx
        .jobs
        .status(id)
        .ok_or_else(|| ApiError::NotFound(format!("no job {id}")))?;
    respond_json(stream, 200, &status.to_json()).map_err(|e| ApiError::Io(e.to_string()))
}

fn handle_artifact(stream: &mut TcpStream, path: &str, ctx: &Arc<Ctx>) -> Result<(), ApiError> {
    let hash = path.trim_start_matches("/v1/artifacts/");
    let bytes = ctx.store.get(hash)?;
    respond(stream, 200, "application/json", &bytes).map_err(|e| ApiError::Io(e.to_string()))
}

/// Starting index for an SSE subscription: `?offset=N` wins, else
/// `Last-Event-ID + 1` (the header names the last frame the client
/// *received*), else 0.
fn sse_offset(req: &Request) -> usize {
    if let Some(off) = req.query.get("offset") {
        return off.parse().unwrap_or(0);
    }
    if let Some(last) = req.headers.get("last-event-id") {
        if let Ok(n) = last.parse::<usize>() {
            return n + 1;
        }
    }
    0
}

/// Stream a job's recorder events as SSE frames.
///
/// Subscribing flushes the producing sink's batch (the attach-epoch
/// bump in `obs::stream`), so a fresh client never waits behind a
/// 64 KiB-stale window. Frames carry the published line index as the
/// SSE `id`, making `Last-Event-ID` reconnects gapless; a terminal
/// `event: end` frame reports the job's final state.
fn handle_events(
    mut stream: TcpStream,
    id: &str,
    offset: usize,
    follow: bool,
    ctx: &Arc<Ctx>,
) -> Result<(), ApiError> {
    let events = ctx
        .jobs
        .stream(id)
        .ok_or_else(|| ApiError::NotFound(format!("no job {id}")))?;
    // SSE connections outlive the read timeout set for parsing; writes
    // block only as long as the client reads.
    let _ = stream.set_read_timeout(None);
    start_sse(&mut stream).map_err(|e| ApiError::Io(e.to_string()))?;
    let mut cursor = events.subscribe(offset);
    let mut delivered: u64 = 0;
    loop {
        match cursor.next_timeout(Duration::from_millis(250)) {
            Some((idx, line)) => {
                if write_sse_event(&mut stream, Some(idx), None, &line).is_err() {
                    break; // client went away
                }
                delivered += 1;
            }
            None => {
                if cursor.finished() {
                    let state = ctx
                        .jobs
                        .status(id)
                        .map(|s| s.state.as_str())
                        .unwrap_or("unknown");
                    let mut data = String::new();
                    Json::obj([
                        ("job", Json::from(id)),
                        ("state", Json::from(state)),
                        ("events", Json::from(cursor.position())),
                    ])
                    .write(&mut data);
                    let _ = write_sse_event(&mut stream, None, Some("end"), &data);
                    break;
                }
                if !follow {
                    // Snapshot mode: caught up, don't wait for more.
                    let mut data = String::new();
                    Json::obj([
                        ("job", Json::from(id)),
                        ("state", Json::from("snapshot")),
                        ("events", Json::from(cursor.position())),
                    ])
                    .write(&mut data);
                    let _ = write_sse_event(&mut stream, None, Some("end"), &data);
                    break;
                }
            }
        }
    }
    ctx.metrics.sse_events(delivered);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn temp_data_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("impatience-serve-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
        request(addr, "GET", path, None)
    }

    fn request(
        addr: std::net::SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        s.write_all(head.as_bytes()).unwrap();
        s.write_all(body.as_bytes()).unwrap();
        let mut reply = String::new();
        s.read_to_string(&mut reply).unwrap();
        let status: u16 = reply
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let payload = reply
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, payload)
    }

    #[test]
    fn healthz_solve_metrics_and_404_over_real_socket() {
        let dir = temp_data_dir("unit");
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: dir.clone(),
            queue_cap: 2,
            http_threads: 2,
            solver_pool_per_key: 2,
        })
        .unwrap();
        let addr = server.addr();

        // serve.addr is discoverable.
        let advertised = std::fs::read_to_string(dir.join("serve.addr")).unwrap();
        assert_eq!(advertised.trim(), addr.to_string());

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        let json = Json::parse(body.trim()).unwrap();
        assert_eq!(json.get("status").unwrap().as_str(), Some("ok"));

        let (status, body) = request(
            addr,
            "POST",
            "/v1/solve",
            Some(r#"{"nodes":20,"rho":2,"mu":0.05,"items":8,"utility":"step:5"}"#),
        );
        assert_eq!(status, 200, "{body}");
        let json = Json::parse(body.trim()).unwrap();
        assert_eq!(json.get("outcome").unwrap().as_str(), Some("resolved"));
        assert!(json.get("welfare").unwrap().as_f64().unwrap() > 0.0);

        // Error envelope on a malformed solve.
        let (status, body) = request(addr, "POST", "/v1/solve", Some(r#"{"rho":2}"#));
        assert_eq!(status, 400);
        let json = Json::parse(body.trim()).unwrap();
        assert_eq!(
            json.get("error")
                .unwrap()
                .get("exit_code")
                .unwrap()
                .as_i64(),
            Some(2)
        );

        let (status, _) = get(addr, "/v1/nope");
        assert_eq!(status, 404);
        let (status, _) = request(addr, "POST", "/healthz", None);
        assert_eq!(status, 405);

        let (status, text) = get(addr, "/metrics");
        assert_eq!(status, 200);
        let samples = impatience_obs::parse_prometheus(&text).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.name == "impatience_http_requests_total"));

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
