//! The conference-trace generator — Infocom'06 substitute.
//!
//! The paper (§6.3) attributes its conference-scenario observations to two
//! trace properties beyond mean rates: (a) *heterogeneity* — pairwise
//! rates vary wildly with social structure, and (b) *complex time
//! statistics* — contacts are bursty (heavy-tailed inter-contact times)
//! and follow a day/night activity cycle visible in Fig. 5(a). This
//! generator reproduces exactly those mechanisms:
//!
//! * **community structure** — nodes are partitioned into groups; same-
//!   group pairs meet `affinity×` more often, and every node gets an
//!   individual sociability factor (log-spread), yielding a skewed rate
//!   matrix;
//! * **diurnal modulation** — a repeating 24 h activity profile (low at
//!   night, high during conference hours, medium in the evening) thins
//!   the contact processes;
//! * **burstiness** — pairwise inter-contact gaps are Pareto-distributed
//!   (shape ≈ 1.5, infinite variance in the limit), matching the
//!   heavy-tailed inter-contact observations of Chaintreau et al.
//!
//! Defaults mirror the Infocom'06 setting after the paper's
//! preprocessing: 50 nodes, 3 days, and a mean pairwise rate comparable
//! to the homogeneous experiments.

use impatience_core::rng::Xoshiro256;

use crate::{ContactEvent, ContactTrace};

/// Minutes per day.
const DAY: f64 = 1_440.0;

/// Configuration of the synthetic conference trace.
#[derive(Clone, Debug)]
pub struct ConferenceConfig {
    /// Number of attendees.
    pub nodes: usize,
    /// Trace length in minutes (3 conference days by default).
    pub duration: f64,
    /// Number of social communities.
    pub communities: usize,
    /// Rate multiplier for same-community pairs (≥ 1).
    pub affinity: f64,
    /// Target mean pairwise contact rate (per minute), before diurnal
    /// thinning reduces it.
    pub mean_rate: f64,
    /// Pareto shape of inter-contact gaps (1 < shape ≤ 2 is heavy-tailed;
    /// large values approach periodic gaps).
    pub burst_shape: f64,
    /// Log-normal-ish spread of per-node sociability (0 = identical
    /// nodes).
    pub sociability_spread: f64,
}

impl Default for ConferenceConfig {
    fn default() -> Self {
        ConferenceConfig {
            nodes: 50,
            duration: 3.0 * DAY,
            communities: 5,
            affinity: 6.0,
            mean_rate: 0.05,
            burst_shape: 1.5,
            sociability_spread: 0.8,
        }
    }
}

/// Diurnal activity multiplier at minute `t` (period 24 h):
/// conference hours (09–18) are fully active, evenings (18–24) moderate,
/// nights (00–09) nearly silent.
pub fn diurnal_activity(t: f64) -> f64 {
    let hour = (t.rem_euclid(DAY)) / 60.0;
    if (9.0..18.0).contains(&hour) {
        1.0
    } else if (18.0..24.0).contains(&hour) {
        0.35
    } else {
        0.05
    }
}

impl ConferenceConfig {
    /// Generate the trace.
    ///
    /// # Panics
    /// Panics on nonsensical parameters (zero nodes/communities,
    /// non-positive rates or duration, `burst_shape ≤ 1`).
    pub fn generate(&self, rng: &mut Xoshiro256) -> ContactTrace {
        assert!(self.nodes >= 2, "need at least two attendees");
        assert!(self.communities >= 1, "need at least one community");
        assert!(self.affinity >= 1.0, "affinity must be ≥ 1");
        assert!(self.mean_rate > 0.0 && self.duration > 0.0);
        assert!(
            self.burst_shape > 1.0,
            "burst shape must exceed 1 for finite mean gaps"
        );

        // Per-node sociability: exp(spread · N(0,1)), normalized later
        // through the mean-rate calibration.
        let sociability: Vec<f64> = (0..self.nodes)
            .map(|_| (self.sociability_spread * rng.normal()).exp())
            .collect();

        // Raw pairwise weights: sociability product × community affinity.
        let n = self.nodes;
        let mut weights = vec![0.0; n * n];
        let mut total = 0.0;
        for a in 0..n {
            for b in (a + 1)..n {
                let same = a % self.communities == b % self.communities;
                let w = sociability[a] * sociability[b] * if same { self.affinity } else { 1.0 };
                weights[a * n + b] = w;
                total += w;
            }
        }
        let pairs = (n * (n - 1) / 2) as f64;
        let calibration = self.mean_rate * pairs / total;

        // Mean Pareto gap for shape k and scale x_min is x_min·k/(k−1);
        // choose x_min so the *unthinned* renewal rate matches the pair's
        // target. Diurnal thinning then reshapes arrivals in time.
        let shape = self.burst_shape;
        let mean_gap_factor = shape / (shape - 1.0);
        let mut events = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let rate = weights[a * n + b] * calibration;
                if rate <= 0.0 {
                    continue;
                }
                let x_min = 1.0 / (rate * mean_gap_factor);
                let mut t = rng.range(0.0, 1.0 / rate); // random phase
                while t <= self.duration {
                    // Thin by the activity profile to create the
                    // day/night cycle.
                    if rng.bernoulli(diurnal_activity(t)) {
                        events.push(ContactEvent::new(t, a as u32, b as u32));
                    }
                    t += rng.pareto(x_min, shape);
                }
            }
        }
        ContactTrace::new(n, self.duration, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    fn quick_config() -> ConferenceConfig {
        ConferenceConfig {
            nodes: 20,
            duration: 3.0 * DAY,
            ..ConferenceConfig::default()
        }
    }

    #[test]
    fn diurnal_profile_shape() {
        assert_eq!(diurnal_activity(12.0 * 60.0), 1.0); // noon
        assert_eq!(diurnal_activity(20.0 * 60.0), 0.35); // evening
        assert_eq!(diurnal_activity(3.0 * 60.0), 0.05); // night
                                                        // Periodicity across days.
        assert_eq!(diurnal_activity(12.0 * 60.0 + 2.0 * DAY), 1.0);
    }

    #[test]
    fn trace_is_heterogeneous_and_bursty() {
        let mut rng = Xoshiro256::seed_from_u64(100);
        let trace = quick_config().generate(&mut rng);
        let stats = TraceStats::from_trace(&trace);
        assert!(
            stats.rate_cv() > 0.8,
            "conference rates should be heterogeneous (CV {})",
            stats.rate_cv()
        );
        assert!(
            stats.intercontact_cv() > 1.2,
            "inter-contacts should be bursty (CV {})",
            stats.intercontact_cv()
        );
    }

    #[test]
    fn day_night_alternation_visible() {
        let mut rng = Xoshiro256::seed_from_u64(101);
        let trace = quick_config().generate(&mut rng);
        // Compare activity at conference hours vs night across the trace.
        let hourly = trace.activity_series(60.0);
        let mut day_total = 0.0;
        let mut night_total = 0.0;
        for (h, &v) in hourly.iter().enumerate() {
            let hour_of_day = h % 24;
            if (9..18).contains(&hour_of_day) {
                day_total += v;
            } else if hour_of_day < 9 {
                night_total += v;
            }
        }
        assert!(
            day_total > 5.0 * night_total,
            "day {day_total} vs night {night_total}"
        );
    }

    #[test]
    fn same_community_pairs_meet_more() {
        let mut rng = Xoshiro256::seed_from_u64(102);
        let cfg = ConferenceConfig {
            nodes: 20,
            communities: 4,
            affinity: 8.0,
            sociability_spread: 0.0, // isolate the community effect
            duration: 10.0 * DAY,
            ..ConferenceConfig::default()
        };
        let trace = cfg.generate(&mut rng);
        let stats = TraceStats::from_trace(&trace);
        let mut same = (0.0, 0u32);
        let mut cross = (0.0, 0u32);
        for a in 0..20 {
            for b in (a + 1)..20 {
                let r = stats.rates().rate(a, b);
                if a % 4 == b % 4 {
                    same = (same.0 + r, same.1 + 1);
                } else {
                    cross = (cross.0 + r, cross.1 + 1);
                }
            }
        }
        let ratio = (same.0 / same.1 as f64) / (cross.0 / cross.1 as f64);
        assert!(
            ratio > 4.0,
            "same-community rate should dominate (ratio {ratio})"
        );
    }

    #[test]
    fn mean_rate_roughly_calibrated() {
        let mut rng = Xoshiro256::seed_from_u64(103);
        let cfg = ConferenceConfig {
            nodes: 20,
            mean_rate: 0.05,
            duration: 6.0 * DAY,
            ..ConferenceConfig::default()
        };
        let trace = cfg.generate(&mut rng);
        let stats = TraceStats::from_trace(&trace);
        // Diurnal thinning keeps ~(9·1 + 6·0.35 + 9·0.05)/24 ≈ 48% of
        // contacts; allow a wide band.
        let measured = stats.rates().mean_rate();
        assert!(
            measured > 0.01 && measured < 0.05,
            "mean rate {measured} outside plausible thinned band"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = quick_config();
        let mut r1 = Xoshiro256::seed_from_u64(5);
        let mut r2 = Xoshiro256::seed_from_u64(5);
        assert_eq!(cfg.generate(&mut r1), cfg.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "burst shape")]
    fn rejects_shape_below_one() {
        let mut rng = Xoshiro256::seed_from_u64(0);
        let cfg = ConferenceConfig {
            burst_shape: 0.9,
            ..quick_config()
        };
        let _ = cfg.generate(&mut rng);
    }
}
