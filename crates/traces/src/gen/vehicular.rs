//! The vehicular-trace generator — Cabspotting substitute.
//!
//! The paper extracts one day of contacts between 50 San-Francisco
//! taxicabs, declaring a contact whenever two cabs come within 200 m.
//! We reproduce the setting with `impatience-mobility`'s grid-taxi model:
//! cabs drive L-shaped fares on a Manhattan road grid, pause to pick up
//! passengers, and meet when their routes cross within the contact
//! radius. The resulting trace shows the properties §6.3 highlights —
//! geography-driven heterogeneous rates and re-meeting bursts along
//! shared corridors.
//!
//! Units: meters and minutes (default speeds ≈ 18–42 km/h).

use impatience_core::rng::Xoshiro256;
use impatience_mobility::{detect_contacts, Field, GridTaxi};

use crate::{ContactEvent, ContactTrace};

/// Configuration of the synthetic taxi trace.
#[derive(Clone, Debug)]
pub struct VehicularConfig {
    /// Number of taxicabs.
    pub cabs: usize,
    /// Trace length in minutes (one day by default).
    pub duration: f64,
    /// Side length of the (square) city, meters.
    pub city_size: f64,
    /// Road-grid block spacing, meters.
    pub block: f64,
    /// Contact radius, meters (the Cabspotting extraction used 200 m).
    pub radius: f64,
    /// Cab speed range, meters per minute.
    pub speed: std::ops::Range<f64>,
    /// Dwell (passenger pickup) range at each destination, minutes.
    pub dwell: std::ops::Range<f64>,
    /// Position-sampling step for contact detection, minutes.
    pub sample_step: f64,
}

impl Default for VehicularConfig {
    fn default() -> Self {
        VehicularConfig {
            cabs: 50,
            duration: 1_440.0,
            city_size: 8_000.0,
            block: 500.0,
            radius: 200.0,
            speed: 300.0..700.0,
            dwell: 0.0..10.0,
            sample_step: 0.1,
        }
    }
}

impl VehicularConfig {
    /// Generate the trace.
    ///
    /// # Panics
    /// Panics on nonsensical geometry (see [`GridTaxi::new`]) or a
    /// non-positive duration/step.
    pub fn generate(&self, rng: &mut Xoshiro256) -> ContactTrace {
        assert!(self.duration > 0.0 && self.sample_step > 0.0);
        let field = Field::new(self.city_size, self.city_size);
        let mut taxis = GridTaxi::new(
            self.cabs,
            field,
            self.block,
            self.speed.clone(),
            self.dwell.clone(),
            rng,
        );
        let sightings = detect_contacts(
            &mut taxis,
            self.duration,
            self.sample_step,
            self.radius,
            rng,
        );
        let events: Vec<ContactEvent> = sightings
            .into_iter()
            .map(|s| ContactEvent::new(s.time.min(self.duration), s.a as u32, s.b as u32))
            .collect();
        ContactTrace::new(self.cabs, self.duration, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    fn quick() -> VehicularConfig {
        VehicularConfig {
            cabs: 15,
            duration: 360.0,
            city_size: 3_000.0,
            block: 500.0,
            sample_step: 0.25,
            ..VehicularConfig::default()
        }
    }

    #[test]
    fn taxis_meet() {
        let mut rng = Xoshiro256::seed_from_u64(200);
        let trace = quick().generate(&mut rng);
        assert!(
            trace.len() > 20,
            "15 cabs on a 3 km grid for 6 h should meet (got {})",
            trace.len()
        );
    }

    #[test]
    fn rates_are_heterogeneous() {
        let mut rng = Xoshiro256::seed_from_u64(201);
        let trace = quick().generate(&mut rng);
        let stats = TraceStats::from_trace(&trace);
        assert!(
            stats.rate_cv() > 0.4,
            "vehicular rates should be heterogeneous (CV {})",
            stats.rate_cv()
        );
    }

    #[test]
    fn events_respect_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(202);
        let cfg = quick();
        let trace = cfg.generate(&mut rng);
        assert_eq!(trace.nodes(), cfg.cabs);
        for e in trace.events() {
            assert!(e.time <= cfg.duration);
            assert!((e.b as usize) < cfg.cabs);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = quick();
        let mut r1 = Xoshiro256::seed_from_u64(9);
        let mut r2 = Xoshiro256::seed_from_u64(9);
        assert_eq!(cfg.generate(&mut r1), cfg.generate(&mut r2));
    }
}
