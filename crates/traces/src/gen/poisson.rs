//! Memoryless (Poisson) contact generation.

use impatience_core::rng::Xoshiro256;
use impatience_core::welfare::ContactRates;

use crate::{ContactEvent, ContactTrace};

/// Generate a trace where every unordered pair meets according to an
/// independent Poisson process of rate `mu` — the homogeneous model of
/// §3.4 and the setting of the §6.2 experiments.
pub fn poisson_homogeneous(
    nodes: usize,
    mu: f64,
    duration: f64,
    rng: &mut Xoshiro256,
) -> ContactTrace {
    assert!(mu >= 0.0 && mu.is_finite(), "rate must be finite and ≥ 0");
    poisson_from_rates(&ContactRates::homogeneous(nodes, mu), duration, rng)
}

/// Generate a trace from an arbitrary symmetric rate matrix: pair `(a,b)`
/// meets as a Poisson process of rate `rates.rate(a,b)`, independently of
/// all other pairs.
pub fn poisson_from_rates(
    rates: &ContactRates,
    duration: f64,
    rng: &mut Xoshiro256,
) -> ContactTrace {
    assert!(
        duration > 0.0 && duration.is_finite(),
        "duration must be positive"
    );
    let n = rates.nodes();
    let mut events = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let mu = rates.rate(a, b);
            if mu <= 0.0 {
                continue;
            }
            // Exponential gaps: exact Poisson sampling on [0, duration].
            let mut t = rng.exp(mu);
            while t <= duration {
                events.push(ContactEvent::new(t, a as u32, b as u32));
                t += rng.exp(mu);
            }
        }
    }
    ContactTrace::new(n, duration, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn homogeneous_rate_is_recovered() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mu = 0.05;
        let trace = poisson_homogeneous(20, mu, 10_000.0, &mut rng);
        let stats = TraceStats::from_trace(&trace);
        assert!(
            (stats.rates().mean_rate() - mu).abs() < 0.002,
            "estimated {}",
            stats.rates().mean_rate()
        );
    }

    #[test]
    fn expected_event_count() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let trace = poisson_homogeneous(10, 0.1, 1_000.0, &mut rng);
        // 45 pairs × 0.1 × 1000 = 4500 expected contacts.
        let n = trace.len() as f64;
        assert!((n - 4500.0).abs() < 4.0 * 4500.0f64.sqrt(), "{n} events");
    }

    #[test]
    fn heterogeneous_rates_respected() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut rates = ContactRates::homogeneous(4, 0.0);
        rates.set_rate(0, 1, 0.2);
        rates.set_rate(2, 3, 0.02);
        let trace = poisson_from_rates(&rates, 20_000.0, &mut rng);
        let stats = TraceStats::from_trace(&trace);
        assert!((stats.rates().rate(0, 1) - 0.2).abs() < 0.01);
        assert!((stats.rates().rate(2, 3) - 0.02).abs() < 0.005);
        assert_eq!(stats.rates().rate(0, 2), 0.0);
    }

    #[test]
    fn zero_rate_means_empty() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let trace = poisson_homogeneous(5, 0.0, 100.0, &mut rng);
        assert!(trace.is_empty());
    }

    #[test]
    fn events_are_sorted_and_in_window() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let trace = poisson_homogeneous(6, 0.3, 100.0, &mut rng);
        for w in trace.events().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for e in trace.events() {
            assert!(e.time <= 100.0);
        }
    }
}
