//! Synthetic contact-trace generators.
//!
//! * [`poisson_homogeneous`] / [`poisson_from_rates`] — memoryless
//!   contacts, the regime of the paper's analysis and §6.2 experiments;
//! * [`ConferenceConfig`] — the Infocom'06 substitute: community-
//!   structured heterogeneous rates, a diurnal activity profile, and
//!   heavy-tailed (bursty) inter-contact gaps;
//! * [`VehicularConfig`] — the Cabspotting substitute: grid-taxi mobility
//!   (`impatience-mobility`) with 200 m geometric contact detection.

mod conference;
mod poisson;
mod vehicular;

pub use conference::ConferenceConfig;
pub use poisson::{poisson_from_rates, poisson_homogeneous};
pub use vehicular::VehicularConfig;
