//! Importing real-world contact datasets.
//!
//! Public DTN datasets (the CRAWDAD releases of the paper's Infocom'06
//! Bluetooth sightings, Cabspotting derivations, MIT Reality Mining, …)
//! usually record contacts as *intervals*: one line per sighting with a
//! start and end time. This module parses that shape and converts it to
//! the point-contact model the paper uses (§3.4): each interval becomes a
//! meeting at its start time, optionally re-firing every
//! `refresh_interval` while it lasts (long co-location sessions then
//! count as several exchange opportunities, which is how a slotted
//! Bluetooth scanner would observe them).
//!
//! Accepted line formats (whitespace-separated, `#` comments ignored):
//!
//! ```text
//! <a> <b> <start> <end>            # CRAWDAD imote/cambridge order
//! <start> <end> <a> <b>            # time-first variants
//! ```
//!
//! The variant is chosen per file with [`IntervalColumns`].

use std::io::{BufRead, BufReader, Read};

use crate::{ContactEvent, ContactTrace, TraceIoError};

/// Column order of an interval-format contact file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntervalColumns {
    /// `a b start end` — the common CRAWDAD imote ordering.
    NodesFirst,
    /// `start end a b`.
    TimesFirst,
}

/// Options for interval-format import.
#[derive(Clone, Copy, Debug)]
pub struct ImportOptions {
    /// Column order.
    pub columns: IntervalColumns,
    /// Re-fire a contact every this many time units while the interval
    /// lasts (`None`: one meeting per interval, at its start).
    pub refresh_interval: Option<f64>,
    /// Subtract the smallest start time so the trace begins at 0.
    pub rebase_time: bool,
    /// Node ids in the file are 1-based (common in CRAWDAD dumps).
    pub one_based_ids: bool,
}

impl Default for ImportOptions {
    fn default() -> Self {
        ImportOptions {
            columns: IntervalColumns::NodesFirst,
            refresh_interval: None,
            rebase_time: true,
            one_based_ids: true,
        }
    }
}

/// Parse an interval-format contact file into a point-contact trace.
///
/// Malformed lines produce a [`TraceIoError::Format`] carrying the line
/// number; self-contacts and inverted intervals are rejected.
pub fn read_interval_trace(
    reader: impl Read,
    options: ImportOptions,
) -> Result<ContactTrace, TraceIoError> {
    if let Some(refresh) = options.refresh_interval {
        if !(refresh.is_finite() && refresh > 0.0) {
            return Err(TraceIoError::Format {
                line: 0,
                message: format!("refresh interval must be positive and finite (got {refresh})"),
            });
        }
    }
    let reader = BufReader::new(reader);
    let mut intervals: Vec<(f64, f64, u32, u32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 4 {
            return Err(TraceIoError::Format {
                line: line_no,
                message: format!("expected 4 fields, got {}", fields.len()),
            });
        }
        let parse_f = |s: &str, what: &str| -> Result<f64, TraceIoError> {
            s.parse().map_err(|_| TraceIoError::Format {
                line: line_no,
                message: format!("unparsable {what} `{s}`"),
            })
        };
        let parse_id = |s: &str, what: &str| -> Result<u32, TraceIoError> {
            let raw: u32 = s.parse().map_err(|_| TraceIoError::Format {
                line: line_no,
                message: format!("unparsable {what} `{s}`"),
            })?;
            if options.one_based_ids {
                raw.checked_sub(1).ok_or_else(|| TraceIoError::Format {
                    line: line_no,
                    message: format!("{what} is 0 but ids are declared 1-based"),
                })
            } else {
                Ok(raw)
            }
        };
        let (start, end, a, b) = match options.columns {
            IntervalColumns::NodesFirst => (
                parse_f(fields[2], "start time")?,
                parse_f(fields[3], "end time")?,
                parse_id(fields[0], "first node")?,
                parse_id(fields[1], "second node")?,
            ),
            IntervalColumns::TimesFirst => (
                parse_f(fields[0], "start time")?,
                parse_f(fields[1], "end time")?,
                parse_id(fields[2], "first node")?,
                parse_id(fields[3], "second node")?,
            ),
        };
        if a == b {
            return Err(TraceIoError::Format {
                line: line_no,
                message: format!("self-contact ({a})"),
            });
        }
        if !(start.is_finite() && end.is_finite()) || end < start {
            return Err(TraceIoError::Format {
                line: line_no,
                message: format!("invalid interval [{start}, {end}]"),
            });
        }
        intervals.push((start, end, a, b));
    }
    if intervals.is_empty() {
        return Err(TraceIoError::Format {
            line: 0,
            message: "no contact intervals found".into(),
        });
    }

    let base = if options.rebase_time {
        intervals
            .iter()
            .map(|&(s, _, _, _)| s)
            .fold(f64::INFINITY, f64::min)
    } else {
        0.0
    };
    let mut events = Vec::new();
    let mut max_node = 0u32;
    let mut max_time = 0.0f64;
    for &(start, end, a, b) in &intervals {
        max_node = max_node.max(a).max(b);
        let s = start - base;
        let e = end - base;
        max_time = max_time.max(e);
        events.push(ContactEvent::new(s, a, b));
        if let Some(refresh) = options.refresh_interval {
            let mut t = s + refresh;
            while t <= e {
                events.push(ContactEvent::new(t, a, b));
                t += refresh;
            }
        }
    }
    Ok(ContactTrace::new(
        max_node as usize + 1,
        max_time.max(f64::MIN_POSITIVE),
        events,
    ))
}

/// [`read_interval_trace`] on a file; errors carry the path.
pub fn read_interval_trace_file(
    path: impl AsRef<std::path::Path>,
    options: ImportOptions,
) -> Result<ContactTrace, TraceIoError> {
    let path = path.as_ref();
    let annotate = |e: TraceIoError| e.in_file(path);
    let file = std::fs::File::open(path).map_err(|e| annotate(e.into()))?;
    read_interval_trace(file, options).map_err(annotate)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# CRAWDAD-style: a b start end (1-based ids)
1 2 100.0 160.0
2 3 120.0 125.0
1 3 300.0 300.0
";

    #[test]
    fn parses_nodes_first_with_rebase() {
        let trace = read_interval_trace(SAMPLE.as_bytes(), ImportOptions::default()).unwrap();
        assert_eq!(trace.nodes(), 3);
        assert_eq!(trace.len(), 3);
        // Rebased: first contact at t = 0.
        assert_eq!(trace.events()[0].time, 0.0);
        assert_eq!((trace.events()[0].a, trace.events()[0].b), (0, 1));
        assert_eq!(trace.duration(), 200.0);
    }

    #[test]
    fn refresh_interval_refires_long_contacts() {
        let opts = ImportOptions {
            refresh_interval: Some(20.0),
            ..ImportOptions::default()
        };
        let trace = read_interval_trace(SAMPLE.as_bytes(), opts).unwrap();
        // Interval [100,160] refires at 120, 140, 160 → 4 events; the
        // 5-minute and zero-length intervals contribute 1 each.
        assert_eq!(trace.len(), 4 + 1 + 1);
    }

    #[test]
    fn times_first_ordering() {
        let text = "0.0 10.0 1 2\n5.0 6.0 2 3\n";
        let opts = ImportOptions {
            columns: IntervalColumns::TimesFirst,
            ..ImportOptions::default()
        };
        let trace = read_interval_trace(text.as_bytes(), opts).unwrap();
        assert_eq!(trace.nodes(), 3);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn zero_based_ids() {
        let text = "0 1 0.0 1.0\n";
        let opts = ImportOptions {
            one_based_ids: false,
            ..ImportOptions::default()
        };
        let trace = read_interval_trace(text.as_bytes(), opts).unwrap();
        assert_eq!(trace.nodes(), 2);
    }

    #[test]
    fn error_cases() {
        let e = read_interval_trace("1 1 0 1\n".as_bytes(), ImportOptions::default()).unwrap_err();
        assert!(e.to_string().contains("self-contact"), "{e}");
        let e = read_interval_trace("1 2 5 1\n".as_bytes(), ImportOptions::default()).unwrap_err();
        assert!(e.to_string().contains("invalid interval"), "{e}");
        let e = read_interval_trace("1 2 5\n".as_bytes(), ImportOptions::default()).unwrap_err();
        assert!(e.to_string().contains("expected 4 fields"), "{e}");
        let e = read_interval_trace("0 2 1 5\n".as_bytes(), ImportOptions::default()).unwrap_err();
        assert!(e.to_string().contains("1-based"), "{e}");
        let e =
            read_interval_trace("# nothing\n".as_bytes(), ImportOptions::default()).unwrap_err();
        assert!(e.to_string().contains("no contact intervals"), "{e}");
        // A bad refresh interval is rejected up front with a typed error
        // instead of panicking mid-parse.
        for refresh in [0.0, -5.0, f64::NAN] {
            let opts = ImportOptions {
                refresh_interval: Some(refresh),
                ..ImportOptions::default()
            };
            let e = read_interval_trace("1 2 0 1\n".as_bytes(), opts).unwrap_err();
            assert!(e.to_string().contains("refresh interval"), "{e}");
        }
    }

    #[test]
    fn file_import_annotates_path() {
        let e = read_interval_trace_file("/nonexistent/contacts.dat", ImportOptions::default())
            .unwrap_err();
        assert!(e.to_string().contains("contacts.dat"), "{e}");
    }

    #[test]
    fn feeds_downstream_analysis() {
        let trace = read_interval_trace(SAMPLE.as_bytes(), ImportOptions::default()).unwrap();
        let stats = crate::TraceStats::from_trace(&trace);
        assert!(stats.rates().rate(0, 1) > 0.0);
        let selected = trace.select_most_active(2);
        assert_eq!(selected.nodes(), 2);
    }
}
