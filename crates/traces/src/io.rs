//! On-disk trace formats.
//!
//! Two formats are supported:
//!
//! * a **plain-text** format, one event per line (`time a b`), with a
//!   header carrying the node count and duration — convenient for
//!   importing real datasets (Infocom/Cabspotting dumps use similar
//!   layouts) and for inspection with standard tools;
//! * **JSON** via `impatience-json`, for lossless round-trips inside the
//!   experiment harness.
//!
//! ```text
//! # impatience-trace v1
//! # nodes 3
//! # duration 100.0
//! 0.5 0 1
//! 2.25 1 2
//! ```

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::{ContactEvent, ContactTrace};

/// Errors arising while reading, writing, or importing traces.
///
/// Every variant carries enough context to point at the offending input:
/// [`TraceError::Format`] the 1-based line, [`TraceError::Json`] the byte
/// offset (via [`impatience_json::JsonParseError`]), and
/// [`TraceError::File`] the path wrapped around either.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the text format.
    Format {
        /// 1-based line number (0 when the problem is file-wide).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// JSON (de)serialization failure (carries the byte offset).
    Json(impatience_json::JsonParseError),
    /// Any of the above, annotated with the file it came from.
    File {
        /// The offending file.
        path: PathBuf,
        /// The underlying error.
        source: Box<TraceError>,
    },
}

/// Former name of [`TraceError`], kept for downstream code.
pub type TraceIoError = TraceError;

impl TraceError {
    /// Annotate this error with the file it arose from.
    pub fn in_file(self, path: impl Into<PathBuf>) -> TraceError {
        TraceError::File {
            path: path.into(),
            source: Box::new(self),
        }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Format { line, message } => {
                write!(f, "trace format error at line {line}: {message}")
            }
            TraceError::Json(e) => write!(f, "trace JSON error: {e}"),
            TraceError::File { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Json(e) => Some(e),
            TraceError::Format { .. } => None,
            TraceError::File { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<impatience_json::JsonParseError> for TraceError {
    fn from(e: impatience_json::JsonParseError) -> Self {
        TraceError::Json(e)
    }
}

/// Write a trace in the plain-text format.
pub fn write_trace(trace: &ContactTrace, writer: impl Write) -> Result<(), TraceIoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# impatience-trace v1")?;
    writeln!(w, "# nodes {}", trace.nodes())?;
    writeln!(w, "# duration {}", trace.duration())?;
    for e in trace.events() {
        writeln!(w, "{} {} {}", e.time, e.a, e.b)?;
    }
    w.flush()?;
    Ok(())
}

/// Read a trace in the plain-text format.
pub fn read_trace(reader: impl Read) -> Result<ContactTrace, TraceIoError> {
    let reader = BufReader::new(reader);
    let mut nodes: Option<usize> = None;
    let mut duration: Option<f64> = None;
    let mut events = Vec::new();
    let mut max_node: u32 = 0;
    let mut max_time: f64 = 0.0;

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("nodes") => {
                    nodes = Some(parse_field(parts.next(), line_no, "node count")?);
                }
                Some("duration") => {
                    duration = Some(parse_field(parts.next(), line_no, "duration")?);
                }
                _ => {} // other comments ignored
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let time: f64 = parse_field(parts.next(), line_no, "event time")?;
        let a: u32 = parse_field(parts.next(), line_no, "first node")?;
        let b: u32 = parse_field(parts.next(), line_no, "second node")?;
        if parts.next().is_some() {
            return Err(TraceIoError::Format {
                line: line_no,
                message: "trailing fields after `time a b`".into(),
            });
        }
        if a == b {
            return Err(TraceIoError::Format {
                line: line_no,
                message: format!("self-contact ({a}, {b})"),
            });
        }
        if !(time.is_finite() && time >= 0.0) {
            return Err(TraceIoError::Format {
                line: line_no,
                message: format!("invalid event time {time}"),
            });
        }
        max_node = max_node.max(a).max(b);
        max_time = max_time.max(time);
        events.push(ContactEvent::new(time, a, b));
    }

    // Headers are optional: fall back to the observed extremes.
    let nodes = nodes.unwrap_or(max_node as usize + 1);
    let duration = duration.unwrap_or(max_time.max(f64::MIN_POSITIVE));
    if (max_node as usize) >= nodes && !events.is_empty() {
        return Err(TraceIoError::Format {
            line: 0,
            message: format!("event references node {max_node} but header says {nodes} nodes"),
        });
    }
    if max_time > duration {
        return Err(TraceIoError::Format {
            line: 0,
            message: format!("event at t={max_time} exceeds header duration {duration}"),
        });
    }
    Ok(ContactTrace::new(nodes, duration, events))
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, TraceIoError> {
    field
        .ok_or_else(|| TraceIoError::Format {
            line,
            message: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| TraceIoError::Format {
            line,
            message: format!("unparsable {what}"),
        })
}

/// Serialize a trace as JSON.
pub fn write_trace_json(trace: &ContactTrace, mut writer: impl Write) -> Result<(), TraceIoError> {
    writer.write_all(trace.to_json().to_string().as_bytes())?;
    Ok(())
}

/// Deserialize a trace from JSON.
pub fn read_trace_json(mut reader: impl Read) -> Result<ContactTrace, TraceIoError> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    let value = impatience_json::Json::parse(&text)?;
    ContactTrace::from_json(&value).map_err(|message| TraceIoError::Format { line: 0, message })
}

/// Read a plain-text trace from `path`; errors carry the path.
pub fn read_trace_file(path: impl AsRef<Path>) -> Result<ContactTrace, TraceError> {
    let path = path.as_ref();
    let annotate = |e: TraceError| e.in_file(path);
    let file = std::fs::File::open(path).map_err(|e| annotate(e.into()))?;
    read_trace(file).map_err(annotate)
}

/// Read a JSON trace from `path`; errors carry the path.
pub fn read_trace_json_file(path: impl AsRef<Path>) -> Result<ContactTrace, TraceError> {
    let path = path.as_ref();
    let annotate = |e: TraceError| e.in_file(path);
    let file = std::fs::File::open(path).map_err(|e| annotate(e.into()))?;
    read_trace_json(file).map_err(annotate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ContactTrace {
        ContactTrace::new(
            3,
            100.0,
            vec![ContactEvent::new(0.5, 0, 1), ContactEvent::new(2.25, 1, 2)],
        )
    }

    #[test]
    fn text_roundtrip() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn json_roundtrip() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace_json(&trace, &mut buf).unwrap();
        let back = read_trace_json(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn headerless_text_infers_shape() {
        let text = "1.0 0 2\n5.0 1 2\n";
        let trace = read_trace(text.as_bytes()).unwrap();
        assert_eq!(trace.nodes(), 3);
        assert_eq!(trace.duration(), 5.0);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn blank_lines_and_comments_skipped() {
        let text = "# impatience-trace v1\n# nodes 4\n# duration 10\n\n# a comment\n1 0 1\n";
        let trace = read_trace(text.as_bytes()).unwrap();
        assert_eq!(trace.nodes(), 4);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn error_on_malformed_line() {
        let err = read_trace("1.0 0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Format { line: 1, .. }), "{err}");
        let err = read_trace("abc 0 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unparsable event time"));
        let err = read_trace("1.0 0 1 9\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing fields"));
    }

    #[test]
    fn error_on_self_contact() {
        let err = read_trace("1.0 2 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("self-contact"));
    }

    #[test]
    fn error_on_node_exceeding_header() {
        let text = "# nodes 2\n1.0 0 5\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header says 2 nodes"), "{err}");
    }

    #[test]
    fn error_on_time_exceeding_header_duration() {
        let text = "# duration 2\n3.0 0 1\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceeds header duration"), "{err}");
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let trace = read_trace("# nodes 5\n# duration 10\n".as_bytes()).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.nodes(), 5);
    }

    #[test]
    fn file_errors_carry_the_path() {
        let err = read_trace_file("/nonexistent/trace.txt").unwrap_err();
        assert!(
            matches!(&err, TraceError::File { path, source }
                if path.ends_with("trace.txt") && matches!(**source, TraceError::Io(_))),
            "{err}"
        );
        assert!(err.to_string().contains("/nonexistent/trace.txt"), "{err}");

        let dir = std::env::temp_dir().join("impatience-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "1.0 7 7\n").unwrap();
        let err = read_trace_file(&bad).unwrap_err();
        assert!(err.to_string().contains("bad.txt"), "{err}");
        assert!(err.to_string().contains("self-contact"), "{err}");

        let bad_json = dir.join("bad.json");
        std::fs::write(&bad_json, "{ nope").unwrap();
        let err = read_trace_json_file(&bad_json).unwrap_err();
        assert!(
            matches!(&err, TraceError::File { source, .. }
                if matches!(**source, TraceError::Json(_))),
            "{err}"
        );
        std::fs::remove_file(&bad).ok();
        std::fs::remove_file(&bad_json).ok();
    }
}
