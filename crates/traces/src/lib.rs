//! # impatience-traces
//!
//! Contact-trace infrastructure for the *Age of Impatience* reproduction:
//! containers, synthetic generators, statistics, memoryless resynthesis,
//! and on-disk formats.
//!
//! The paper's §6 evaluates QCR on three contact regimes:
//!
//! 1. **homogeneous** memoryless contacts ([`gen::poisson_homogeneous`]);
//! 2. a **conference** trace (Infocom'06 Bluetooth sightings) — substituted
//!    here by [`gen::ConferenceConfig`]: community-structured rates,
//!    diurnal day/night activity, and heavy-tailed (bursty) inter-contact
//!    gaps;
//! 3. a **vehicular** trace (Cabspotting taxis, 200 m radius) — substituted
//!    by [`gen::VehicularConfig`], which drives `impatience-mobility`'s
//!    grid taxis through geometric contact detection.
//!
//! For Fig. 5(c)-style comparisons, [`synth::resynthesize_memoryless`]
//! keeps a trace's pairwise mean rates but replaces its time statistics
//! with independent Poisson processes — isolating the effect of rate
//! heterogeneity from burstiness, exactly as the paper does.
//!
//! Times are unitless but every built-in generator and experiment in this
//! workspace treats one time unit as **one minute**.
//!
//! ```
//! use impatience_core::rng::Xoshiro256;
//! use impatience_traces::prelude::*;
//!
//! let mut rng = Xoshiro256::seed_from_u64(1);
//! let trace = poisson_homogeneous(10, 0.05, 1_000.0, &mut rng);
//! let stats = TraceStats::from_trace(&trace);
//! // Estimated mean pairwise rate ≈ 0.05.
//! assert!((stats.rates().mean_rate() - 0.05).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod event;
pub mod gen;
mod import;
mod io;
mod stats;
mod stream;
mod synth;
mod trace;

pub use event::ContactEvent;
pub use import::{read_interval_trace, read_interval_trace_file, ImportOptions, IntervalColumns};
pub use io::{
    read_trace, read_trace_file, read_trace_json, read_trace_json_file, write_trace,
    write_trace_json, TraceError, TraceIoError,
};
pub use stats::TraceStats;
pub use stream::{
    pair_from_index, ContactStream, PoissonContactStream, SlotContact, SlotContactStream,
};
pub use synth::resynthesize_memoryless;
pub use trace::ContactTrace;

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::gen::{
        poisson_from_rates, poisson_homogeneous, ConferenceConfig, VehicularConfig,
    };
    pub use crate::{
        read_trace, resynthesize_memoryless, write_trace, ContactEvent, ContactStream,
        ContactTrace, TraceStats,
    };
}
