//! A single pairwise contact.

use impatience_json::Json;

/// One contact (meeting) between two nodes.
///
/// Contacts are point events: the paper's model assumes meetings are long
/// enough to complete the protocol exchange (§6.1), so durations are not
/// tracked.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContactEvent {
    /// Event time (minutes by convention).
    pub time: f64,
    /// First node (always `< b` after normalization).
    pub a: u32,
    /// Second node.
    pub b: u32,
}

impl ContactEvent {
    /// Create a contact, normalizing the pair so `a < b`.
    ///
    /// # Panics
    /// Panics on self-contacts or non-finite/negative times.
    pub fn new(time: f64, a: u32, b: u32) -> Self {
        assert!(a != b, "self-contact ({a}, {a}) is meaningless");
        assert!(
            time >= 0.0 && time.is_finite(),
            "contact time must be finite and ≥ 0"
        );
        if a < b {
            ContactEvent { time, a, b }
        } else {
            ContactEvent { time, a: b, b: a }
        }
    }

    /// Whether this contact involves the given node.
    pub fn involves(&self, node: u32) -> bool {
        self.a == node || self.b == node
    }

    /// The other endpoint of the contact, if `node` participates.
    pub fn peer_of(&self, node: u32) -> Option<u32> {
        if self.a == node {
            Some(self.b)
        } else if self.b == node {
            Some(self.a)
        } else {
            None
        }
    }

    /// JSON form: `{"time": t, "a": a, "b": b}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("time", Json::from(self.time)),
            ("a", Json::from(self.a)),
            ("b", Json::from(self.b)),
        ])
    }

    /// Rebuild from [`ContactEvent::to_json`] output, validating the
    /// same invariants `new` asserts.
    pub fn from_json(v: &Json) -> Result<ContactEvent, String> {
        let time = v
            .get("time")
            .and_then(Json::as_f64)
            .ok_or("contact event missing numeric `time`")?;
        let a = node_field(v, "a")?;
        let b = node_field(v, "b")?;
        if a == b {
            return Err(format!("self-contact ({a}, {b})"));
        }
        if !(time.is_finite() && time >= 0.0) {
            return Err(format!("invalid contact time {time}"));
        }
        Ok(ContactEvent::new(time, a, b))
    }
}

fn node_field(v: &Json, key: &str) -> Result<u32, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| format!("contact event missing node id `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_pair_order() {
        let e = ContactEvent::new(5.0, 9, 2);
        assert_eq!((e.a, e.b), (2, 9));
        assert_eq!(e.time, 5.0);
    }

    #[test]
    fn involvement_and_peer() {
        let e = ContactEvent::new(1.0, 3, 7);
        assert!(e.involves(3));
        assert!(e.involves(7));
        assert!(!e.involves(5));
        assert_eq!(e.peer_of(3), Some(7));
        assert_eq!(e.peer_of(7), Some(3));
        assert_eq!(e.peer_of(1), None);
    }

    #[test]
    #[should_panic(expected = "self-contact")]
    fn rejects_self_contact() {
        let _ = ContactEvent::new(1.0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "finite and ≥ 0")]
    fn rejects_negative_time() {
        let _ = ContactEvent::new(-1.0, 1, 2);
    }

    #[test]
    fn json_roundtrip() {
        let e = ContactEvent::new(2.5, 1, 8);
        let text = e.to_json().to_string();
        let back = ContactEvent::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn json_rejects_malformed_events() {
        for bad in [
            r#"{"time":1.0,"a":2}"#,
            r#"{"time":1.0,"a":2,"b":2}"#,
            r#"{"time":-1.0,"a":0,"b":1}"#,
            r#"{"time":"x","a":0,"b":1}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(ContactEvent::from_json(&v).is_err(), "{bad}");
        }
    }
}
