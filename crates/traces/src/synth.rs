//! Memoryless resynthesis of a measured trace.
//!
//! Fig. 5(b)/(c) of the paper separates two effects of real mobility:
//! *rate heterogeneity* and *complex time statistics* (burstiness,
//! diurnal cycles). The synthesized variant keeps each pair's measured
//! mean contact rate but redraws the contact times as independent Poisson
//! processes — "a synthetic trace where contact rates of all pairs are
//! identical [to the measured ones] but contacts are assumed to follow
//! memoryless time statistics" (§6.3).

use impatience_core::rng::Xoshiro256;

use crate::gen::poisson_from_rates;
use crate::{ContactTrace, TraceStats};

/// Resynthesize `trace` with memoryless (Poisson) time statistics at the
/// same pairwise mean rates and duration.
pub fn resynthesize_memoryless(trace: &ContactTrace, rng: &mut Xoshiro256) -> ContactTrace {
    let stats = TraceStats::from_trace(trace);
    poisson_from_rates(stats.rates(), trace.duration(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ConferenceConfig;

    #[test]
    fn preserves_rates_but_kills_burstiness() {
        let mut rng = Xoshiro256::seed_from_u64(300);
        let original = ConferenceConfig {
            nodes: 20,
            duration: 6.0 * 1_440.0,
            ..ConferenceConfig::default()
        }
        .generate(&mut rng);
        let synth = resynthesize_memoryless(&original, &mut rng);

        let s_orig = TraceStats::from_trace(&original);
        let s_synth = TraceStats::from_trace(&synth);

        // Mean rates preserved (statistically).
        let (r0, r1) = (s_orig.rates().mean_rate(), s_synth.rates().mean_rate());
        assert!((r0 - r1).abs() < 0.15 * r0, "rates {r0} vs {r1}");

        // Pairwise structure preserved: correlate a few heavy pairs.
        let mut heavy = 0;
        for a in 0..20 {
            for b in (a + 1)..20 {
                if s_orig.rates().rate(a, b) > 2.0 * r0 {
                    heavy += 1;
                    let ratio = s_synth.rates().rate(a, b) / s_orig.rates().rate(a, b);
                    assert!(
                        (0.5..2.0).contains(&ratio),
                        "pair ({a},{b}) rate not preserved: ratio {ratio}"
                    );
                }
            }
        }
        assert!(heavy > 0, "expected some heavy pairs in a conference trace");

        // Burstiness is gone: per-pair normalized CV back to ≈ 1 (the
        // pooled CV would stay inflated by rate heterogeneity alone).
        assert!(s_orig.normalized_intercontact_cv() > 1.2);
        assert!(
            (s_synth.normalized_intercontact_cv() - 1.0).abs() < 0.15,
            "synthesized normalized CV {}",
            s_synth.normalized_intercontact_cv()
        );
    }

    #[test]
    fn empty_trace_resynthesizes_empty() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let empty = ContactTrace::new(5, 100.0, vec![]);
        let synth = resynthesize_memoryless(&empty, &mut rng);
        assert!(synth.is_empty());
        assert_eq!(synth.nodes(), 5);
    }
}
