//! Trace statistics: pairwise rate estimation and inter-contact-time
//! analysis.
//!
//! OPT on a real trace is computed "under the approximation of memoryless
//! contacts" (§6.3): estimate each pair's mean meeting rate from the trace
//! and feed the resulting [`ContactRates`] to the heterogeneous greedy.
//! The inter-contact distribution quantifies how far a trace is from
//! memoryless (exponential ICTs have coefficient of variation 1; bursty
//! traces exceed it).

use impatience_core::welfare::ContactRates;

use crate::ContactTrace;

/// Summary statistics of a contact trace.
#[derive(Clone, Debug)]
pub struct TraceStats {
    nodes: usize,
    duration: f64,
    rates: ContactRates,
    intercontact: Vec<f64>,
    /// Inter-contact times divided by their pair's mean gap (pairs with at
    /// least [`MIN_GAPS_FOR_NORMALIZATION`] observations only).
    normalized_intercontact: Vec<f64>,
}

/// Minimum gaps a pair must contribute before its normalized ICTs count.
const MIN_GAPS_FOR_NORMALIZATION: usize = 5;

impl TraceStats {
    /// Estimate statistics from a trace.
    pub fn from_trace(trace: &ContactTrace) -> Self {
        let n = trace.nodes();
        let duration = trace.duration();
        let mut counts = vec![0u32; n * n];
        let mut last_seen: Vec<Option<f64>> = vec![None; n * n];
        let mut intercontact = Vec::new();
        let mut per_pair_gaps: std::collections::HashMap<usize, Vec<f64>> =
            std::collections::HashMap::new();
        for e in trace.events() {
            let idx = e.a as usize * n + e.b as usize;
            counts[idx] += 1;
            if let Some(prev) = last_seen[idx] {
                let gap = e.time - prev;
                intercontact.push(gap);
                per_pair_gaps.entry(idx).or_default().push(gap);
            }
            last_seen[idx] = Some(e.time);
        }
        let rates = ContactRates::from_fn(n, |a, b| {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            counts[lo * n + hi] as f64 / duration
        });
        let mut normalized_intercontact = Vec::new();
        for gaps in per_pair_gaps.values() {
            if gaps.len() < MIN_GAPS_FOR_NORMALIZATION {
                continue;
            }
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            if mean > 0.0 {
                normalized_intercontact.extend(gaps.iter().map(|g| g / mean));
            }
        }
        TraceStats {
            nodes: n,
            duration,
            rates,
            intercontact,
            normalized_intercontact,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Observation-window length.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Estimated pairwise meeting rates (contacts per unit time).
    pub fn rates(&self) -> &ContactRates {
        &self.rates
    }

    /// All observed inter-contact times (pooled across pairs).
    pub fn intercontact_times(&self) -> &[f64] {
        &self.intercontact
    }

    /// Mean of the pooled inter-contact times (`NaN` if none observed).
    pub fn mean_intercontact(&self) -> f64 {
        if self.intercontact.is_empty() {
            return f64::NAN;
        }
        self.intercontact.iter().sum::<f64>() / self.intercontact.len() as f64
    }

    /// Coefficient of variation of the pooled inter-contact times.
    ///
    /// ≈ 1 for memoryless (exponential) contacts; substantially above 1
    /// indicates burstiness (heavy-tailed gaps), the signature property of
    /// the conference trace.
    pub fn intercontact_cv(&self) -> f64 {
        let n = self.intercontact.len();
        if n < 2 {
            return f64::NAN;
        }
        let mean = self.mean_intercontact();
        let var = self
            .intercontact
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt() / mean
    }

    /// Coefficient of variation of the *per-pair normalized*
    /// inter-contact times: each pair's gaps are divided by that pair's
    /// mean gap before pooling, which removes the spurious CV inflation a
    /// heterogeneous rate matrix causes in [`Self::intercontact_cv`].
    ///
    /// This is the burstiness measure of choice: ≈ 1 for memoryless
    /// contacts at *any* rate matrix; > 1 indicates genuinely heavy-tailed
    /// per-pair gaps.
    pub fn normalized_intercontact_cv(&self) -> f64 {
        let n = self.normalized_intercontact.len();
        if n < 2 {
            return f64::NAN;
        }
        let mean = self.normalized_intercontact.iter().sum::<f64>() / n as f64;
        let var = self
            .normalized_intercontact
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt() / mean
    }

    /// Empirical CCDF of the inter-contact times evaluated at `t`
    /// (`P(ICT > t)`).
    pub fn intercontact_ccdf(&self, t: f64) -> f64 {
        if self.intercontact.is_empty() {
            return f64::NAN;
        }
        let above = self.intercontact.iter().filter(|&&x| x > t).count();
        above as f64 / self.intercontact.len() as f64
    }

    /// Heterogeneity of pairwise rates: coefficient of variation of the
    /// off-diagonal rate entries. 0 for homogeneous contacts.
    pub fn rate_cv(&self) -> f64 {
        let n = self.nodes;
        if n < 2 {
            return f64::NAN;
        }
        let mut vals = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n {
            for b in (a + 1)..n {
                vals.push(self.rates.rate(a, b));
            }
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean == 0.0 {
            return f64::NAN;
        }
        let var = vals.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / vals.len() as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ContactEvent;
    use impatience_core::rng::Xoshiro256;

    #[test]
    fn rate_estimation_counts_per_time() {
        let trace = ContactTrace::new(
            3,
            100.0,
            vec![
                ContactEvent::new(10.0, 0, 1),
                ContactEvent::new(20.0, 0, 1),
                ContactEvent::new(30.0, 0, 1),
                ContactEvent::new(40.0, 1, 2),
            ],
        );
        let stats = TraceStats::from_trace(&trace);
        assert!((stats.rates().rate(0, 1) - 0.03).abs() < 1e-12);
        assert!((stats.rates().rate(1, 2) - 0.01).abs() < 1e-12);
        assert_eq!(stats.rates().rate(0, 2), 0.0);
    }

    #[test]
    fn intercontact_times_per_pair() {
        let trace = ContactTrace::new(
            2,
            100.0,
            vec![
                ContactEvent::new(10.0, 0, 1),
                ContactEvent::new(25.0, 0, 1),
                ContactEvent::new(55.0, 0, 1),
            ],
        );
        let stats = TraceStats::from_trace(&trace);
        assert_eq!(stats.intercontact_times(), &[15.0, 30.0]);
        assert!((stats.mean_intercontact() - 22.5).abs() < 1e-12);
    }

    #[test]
    fn poisson_trace_has_cv_near_one() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let trace = crate::gen::poisson_homogeneous(10, 0.05, 5_000.0, &mut rng);
        let stats = TraceStats::from_trace(&trace);
        let cv = stats.intercontact_cv();
        assert!(
            (cv - 1.0).abs() < 0.1,
            "memoryless CV should be ≈ 1, got {cv}"
        );
        assert!(
            stats.rate_cv() < 0.35,
            "homogeneous rates, got CV {}",
            stats.rate_cv()
        );
    }

    #[test]
    fn ccdf_is_monotone() {
        let trace = ContactTrace::new(
            2,
            100.0,
            vec![
                ContactEvent::new(0.0, 0, 1),
                ContactEvent::new(5.0, 0, 1),
                ContactEvent::new(30.0, 0, 1),
            ],
        );
        let stats = TraceStats::from_trace(&trace);
        assert_eq!(stats.intercontact_ccdf(0.0), 1.0);
        assert_eq!(stats.intercontact_ccdf(10.0), 0.5);
        assert_eq!(stats.intercontact_ccdf(50.0), 0.0);
    }

    #[test]
    fn empty_trace_statistics() {
        let trace = ContactTrace::new(3, 10.0, vec![]);
        let stats = TraceStats::from_trace(&trace);
        assert!(stats.mean_intercontact().is_nan());
        assert!(stats.intercontact_cv().is_nan());
        assert!(stats.intercontact_ccdf(1.0).is_nan());
        assert_eq!(stats.rates().mean_rate(), 0.0);
    }
}
