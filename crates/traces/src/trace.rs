//! The contact-trace container.

use impatience_json::Json;

use crate::ContactEvent;

/// A time-ordered sequence of pairwise contacts over `nodes` nodes,
/// covering the observation window `[0, duration]`.
#[derive(Clone, Debug, PartialEq)]
pub struct ContactTrace {
    nodes: usize,
    duration: f64,
    events: Vec<ContactEvent>,
}

impl ContactTrace {
    /// Build a trace from events (sorted by time internally).
    ///
    /// # Panics
    /// Panics if any event references a node `≥ nodes`, exceeds
    /// `duration`, or if `duration` is not positive.
    pub fn new(nodes: usize, duration: f64, mut events: Vec<ContactEvent>) -> Self {
        assert!(
            duration > 0.0 && duration.is_finite(),
            "duration must be positive"
        );
        for e in &events {
            assert!(
                (e.b as usize) < nodes,
                "event references node {} but the trace has {nodes} nodes",
                e.b
            );
            assert!(
                e.time <= duration,
                "event at t={} exceeds trace duration {duration}",
                e.time
            );
        }
        events.sort_by(|x, y| x.time.total_cmp(&y.time));
        ContactTrace {
            nodes,
            duration,
            events,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Observation-window length.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// All events, in time order.
    pub fn events(&self) -> &[ContactEvent] {
        &self.events
    }

    /// Number of contacts.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no contacts.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events within `[from, to)`, re-based so the window starts at 0.
    ///
    /// # Panics
    /// Panics unless `0 ≤ from < to ≤ duration`.
    pub fn window(&self, from: f64, to: f64) -> ContactTrace {
        assert!(
            0.0 <= from && from < to && to <= self.duration,
            "invalid window"
        );
        let events: Vec<ContactEvent> = self
            .events
            .iter()
            .filter(|e| e.time >= from && e.time < to)
            .map(|e| ContactEvent::new(e.time - from, e.a, e.b))
            .collect();
        ContactTrace::new(self.nodes, to - from, events)
    }

    /// Number of contacts each node participates in.
    pub fn contact_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes];
        for e in &self.events {
            counts[e.a as usize] += 1;
            counts[e.b as usize] += 1;
        }
        counts
    }

    /// Restrict the trace to the `k` best-covered nodes (most contacts,
    /// ties by lower id) and renumber them `0..k` preserving id order —
    /// the paper's §6.3 preprocessing ("we selected the contacts for the
    /// 50 participants with the longest measurement periods").
    ///
    /// # Panics
    /// Panics if `k` exceeds the node count or is zero.
    pub fn select_most_active(&self, k: usize) -> ContactTrace {
        assert!(k > 0 && k <= self.nodes, "k must be in 1..=nodes");
        let counts = self.contact_counts();
        let mut order: Vec<usize> = (0..self.nodes).collect();
        order.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
        let mut keep: Vec<usize> = order.into_iter().take(k).collect();
        keep.sort_unstable();
        let mut remap = vec![u32::MAX; self.nodes];
        for (new_id, &old_id) in keep.iter().enumerate() {
            remap[old_id] = new_id as u32;
        }
        let events: Vec<ContactEvent> = self
            .events
            .iter()
            .filter(|e| remap[e.a as usize] != u32::MAX && remap[e.b as usize] != u32::MAX)
            .map(|e| ContactEvent::new(e.time, remap[e.a as usize], remap[e.b as usize]))
            .collect();
        ContactTrace::new(k, self.duration, events)
    }

    /// Contacts per unit time, binned into intervals of width `bin` —
    /// the activity series plotted over the Infocom trace (Fig. 5a shows
    /// its day/night alternation).
    pub fn activity_series(&self, bin: f64) -> Vec<f64> {
        assert!(bin > 0.0);
        let bins = (self.duration / bin).ceil() as usize;
        let mut series = vec![0.0; bins.max(1)];
        for e in &self.events {
            let idx = ((e.time / bin) as usize).min(series.len() - 1);
            series[idx] += 1.0;
        }
        for v in &mut series {
            *v /= bin;
        }
        series
    }

    /// JSON form: `{"nodes": n, "duration": d, "events": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("nodes", Json::from(self.nodes)),
            ("duration", Json::from(self.duration)),
            (
                "events",
                Json::Array(self.events.iter().map(ContactEvent::to_json).collect()),
            ),
        ])
    }

    /// Rebuild from [`ContactTrace::to_json`] output, validating the
    /// same invariants `new` asserts (instead of panicking).
    pub fn from_json(v: &Json) -> Result<ContactTrace, String> {
        let nodes = v
            .get("nodes")
            .and_then(Json::as_u64)
            .ok_or("trace missing integer `nodes`")? as usize;
        let duration = v
            .get("duration")
            .and_then(Json::as_f64)
            .ok_or("trace missing numeric `duration`")?;
        if !(duration > 0.0 && duration.is_finite()) {
            return Err(format!("invalid trace duration {duration}"));
        }
        let raw = v
            .get("events")
            .and_then(Json::as_array)
            .ok_or("trace missing `events` array")?;
        let mut events = Vec::with_capacity(raw.len());
        for item in raw {
            let e = ContactEvent::from_json(item)?;
            if e.b as usize >= nodes {
                return Err(format!(
                    "event references node {} but the trace has {nodes} nodes",
                    e.b
                ));
            }
            if e.time > duration {
                return Err(format!(
                    "event at t={} exceeds trace duration {duration}",
                    e.time
                ));
            }
            events.push(e);
        }
        Ok(ContactTrace::new(nodes, duration, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ContactTrace {
        ContactTrace::new(
            4,
            100.0,
            vec![
                ContactEvent::new(50.0, 0, 1),
                ContactEvent::new(10.0, 2, 3),
                ContactEvent::new(30.0, 0, 2),
                ContactEvent::new(70.0, 0, 1),
            ],
        )
    }

    #[test]
    fn sorts_events() {
        let t = sample();
        let times: Vec<f64> = t.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![10.0, 30.0, 50.0, 70.0]);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn window_rebases_time() {
        let t = sample();
        let w = t.window(20.0, 60.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.events()[0].time, 10.0); // was 30
        assert_eq!(w.duration(), 40.0);
    }

    #[test]
    fn contact_counts_per_node() {
        let t = sample();
        assert_eq!(t.contact_counts(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn select_most_active_renumbers() {
        let t = sample();
        let s = t.select_most_active(2);
        // Keep nodes 0 and 1 (3 and 2 contacts) → renumbered 0, 1.
        assert_eq!(s.nodes(), 2);
        assert_eq!(s.len(), 2); // the two (0,1) contacts survive
        for e in s.events() {
            assert!(e.b < 2);
        }
    }

    #[test]
    fn select_all_is_identity_modulo_order() {
        let t = sample();
        let s = t.select_most_active(4);
        assert_eq!(s.len(), t.len());
        assert_eq!(s.nodes(), 4);
    }

    #[test]
    fn activity_series_counts_rates() {
        let t = sample();
        let series = t.activity_series(50.0);
        assert_eq!(series.len(), 2);
        // Bin [0,50): events at 10, 30 → 2 contacts / 50 min.
        assert!((series[0] - 0.04).abs() < 1e-12);
        // Bin [50,100): events at 50, 70.
        assert!((series[1] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = ContactTrace::new(3, 10.0, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.contact_counts(), vec![0, 0, 0]);
        assert_eq!(t.activity_series(5.0), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds trace duration")]
    fn rejects_event_beyond_duration() {
        let _ = ContactTrace::new(2, 5.0, vec![ContactEvent::new(6.0, 0, 1)]);
    }

    #[test]
    #[should_panic(expected = "references node")]
    fn rejects_out_of_range_node() {
        let _ = ContactTrace::new(2, 5.0, vec![ContactEvent::new(1.0, 0, 5)]);
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let text = t.to_json().to_string();
        let back = ContactTrace::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn json_rejects_inconsistent_traces() {
        let bad = r#"{"nodes":2,"duration":5.0,"events":[{"time":1.0,"a":0,"b":4}]}"#;
        let err = ContactTrace::from_json(&Json::parse(bad).unwrap()).unwrap_err();
        assert!(err.contains("references node"), "{err}");
        let bad = r#"{"nodes":2,"duration":5.0,"events":[{"time":9.0,"a":0,"b":1}]}"#;
        let err = ContactTrace::from_json(&Json::parse(bad).unwrap()).unwrap_err();
        assert!(err.contains("exceeds trace duration"), "{err}");
    }
}
