//! Lazy contact streams: the allocation-free trial hot path.
//!
//! A trial over `n` nodes and horizon `T` sees O(μ·n²·T) contacts.
//! Materializing them up front (the seed pipeline) costs a Vec of that
//! size, a sort, and an `Arc<ContactTrace>` per trial — gigabytes of
//! transient traffic at the population sizes the related work simulates.
//! [`ContactStream`] replaces the vector with a cursor:
//!
//! * [`PoissonContactStream`] samples homogeneous contacts *on the fly*
//!   by superposition: the union of `P = n(n−1)/2` independent
//!   pair-processes of rate μ is one Poisson process of rate `μ·P` whose
//!   events carry uniformly random pair marks. One exponential gap and
//!   one uniform pair index per event, O(1) memory in the trace length,
//!   and events emerge already time-ordered.
//! * [`ContactStream::cursor`] is a zero-copy iterator over a shared
//!   [`ContactTrace`] for replayed (measured or generated) traces.
//!
//! [`SlotContactStream`] is the discrete-time sibling: per §3.4 each pair
//! meets in each slot independently with probability `μ·δ`, which the
//! stream samples in O(contacts) — not O(slots · pairs) — by skipping
//! geometrically over the flattened slot-major Bernoulli sequence.
//!
//! Determinism contract: a stream is driven by its *own* RNG, forked from
//! the trial seed before any demand randomness is drawn. The same seed
//! therefore produces the identical contact sequence whether the stream
//! is consumed lazily, collected into a trace first, or the trial batch
//! is sharded over any number of worker threads.

use std::sync::Arc;

use impatience_core::rng::Xoshiro256;

use crate::{ContactEvent, ContactTrace};

/// Map a lexicographic pair index `k ∈ [0, n(n−1)/2)` to the unordered
/// pair `(a, b)` with `a < b` (row-major over `a`).
///
/// Inverse triangular numbers via one float sqrt plus an exact integer
/// fix-up, so the decode is O(1) and correct for every `n ≤ u32::MAX`.
pub fn pair_from_index(nodes: usize, k: u64) -> (u32, u32) {
    let n = nodes as u64;
    debug_assert!(k < n * (n - 1) / 2, "pair index {k} out of range");
    // Row a starts at offset(a) = a·(2n − a − 1)/2; invert approximately.
    let offset = |a: u64| a * (2 * n - a - 1) / 2;
    let mut a = {
        let nf = n as f64;
        let disc = (2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * k as f64;
        (((2.0 * nf - 1.0 - disc.max(0.0).sqrt()) / 2.0) as i64).clamp(0, n as i64 - 2) as u64
    };
    // Float rounding is at most one row off; walk to the exact row.
    while a > 0 && offset(a) > k {
        a -= 1;
    }
    while a + 2 < n && offset(a + 1) <= k {
        a += 1;
    }
    let b = a + 1 + (k - offset(a));
    (a as u32, b as u32)
}

/// Lazily samples a homogeneous Poisson contact process (rate μ per pair)
/// over `[0, duration]` in time order, holding O(1) state.
#[derive(Clone, Debug)]
pub struct PoissonContactStream {
    nodes: usize,
    total_rate: f64,
    /// −1/total_rate, precomputed: the exponential gap is one `ln` and
    /// one multiply per event instead of an `ln` and a (slow) divide.
    neg_inv_rate: f64,
    duration: f64,
    rng: Xoshiro256,
    lookahead: Option<ContactEvent>,
}

impl PoissonContactStream {
    /// A stream of homogeneous contacts at pairwise rate `mu` over
    /// `nodes` nodes for `duration` time units, driven by `rng`.
    ///
    /// # Panics
    /// Panics unless `mu` is finite and ≥ 0 and `duration` is positive.
    pub fn new(nodes: usize, mu: f64, duration: f64, rng: Xoshiro256) -> Self {
        assert!(mu >= 0.0 && mu.is_finite(), "rate must be finite and ≥ 0");
        assert!(
            duration > 0.0 && duration.is_finite(),
            "duration must be positive"
        );
        let pairs = if nodes < 2 {
            0
        } else {
            nodes as u64 * (nodes as u64 - 1) / 2
        };
        let total_rate = mu * pairs as f64;
        let mut stream = PoissonContactStream {
            nodes,
            total_rate,
            neg_inv_rate: -1.0 / total_rate,
            duration,
            rng,
            lookahead: None,
        };
        stream.lookahead = stream.sample_next(0.0);
        stream
    }

    /// Sample the first superposition event after `t`, if any.
    ///
    /// This is the trial hot path — one `ln`, one multiply, and two
    /// bounded draws per contact. The pair mark is sampled directly
    /// (uniform node `a`, uniform `b ≠ a`, ordered) rather than as a
    /// triangular index through [`pair_from_index`], which costs a float
    /// sqrt; both constructions are exactly uniform over unordered pairs.
    fn sample_next(&mut self, t: f64) -> Option<ContactEvent> {
        if self.total_rate <= 0.0 {
            return None;
        }
        let t = t + self.rng.f64_open().ln() * self.neg_inv_rate;
        if t > self.duration {
            return None;
        }
        let a = self.rng.below(self.nodes as u64) as u32;
        let mut b = self.rng.below(self.nodes as u64 - 1) as u32;
        b += (b >= a) as u32;
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        Some(ContactEvent::new(t, a, b))
    }

    fn advance(&mut self) -> Option<ContactEvent> {
        let event = self.lookahead?;
        self.lookahead = self.sample_next(event.time);
        Some(event)
    }
}

/// A lazy, time-ordered source of [`ContactEvent`]s for one trial.
///
/// Either a [`PoissonContactStream`] (homogeneous contacts sampled on
/// demand) or a zero-copy cursor over a shared [`ContactTrace`].
#[derive(Clone, Debug)]
pub enum ContactStream {
    /// On-the-fly homogeneous Poisson sampling.
    Poisson(PoissonContactStream),
    /// Zero-copy replay of a shared trace.
    Cursor {
        /// The replayed trace (shared across trials, never copied).
        trace: Arc<ContactTrace>,
        /// Index of the next event to yield.
        pos: usize,
    },
}

impl ContactStream {
    /// A homogeneous Poisson stream (see [`PoissonContactStream::new`]).
    pub fn poisson(nodes: usize, mu: f64, duration: f64, rng: Xoshiro256) -> Self {
        ContactStream::Poisson(PoissonContactStream::new(nodes, mu, duration, rng))
    }

    /// A zero-copy cursor over a shared trace.
    pub fn cursor(trace: Arc<ContactTrace>) -> Self {
        ContactStream::Cursor { trace, pos: 0 }
    }

    /// Number of nodes the stream covers.
    pub fn nodes(&self) -> usize {
        match self {
            ContactStream::Poisson(p) => p.nodes,
            ContactStream::Cursor { trace, .. } => trace.nodes(),
        }
    }

    /// Length of the observation window.
    pub fn duration(&self) -> f64 {
        match self {
            ContactStream::Poisson(p) => p.duration,
            ContactStream::Cursor { trace, .. } => trace.duration(),
        }
    }

    /// The next event without consuming it.
    pub fn peek(&self) -> Option<ContactEvent> {
        match self {
            ContactStream::Poisson(p) => p.lookahead,
            ContactStream::Cursor { trace, pos } => trace.events().get(*pos).copied(),
        }
    }

    /// Drain the stream into a materialized trace (the seed pipeline's
    /// shape, kept as the regression/benchmark reference path).
    pub fn collect_trace(self) -> ContactTrace {
        let nodes = self.nodes();
        let duration = self.duration();
        ContactTrace::new(nodes, duration, self.collect())
    }
}

impl Iterator for ContactStream {
    type Item = ContactEvent;

    fn next(&mut self) -> Option<ContactEvent> {
        match self {
            ContactStream::Poisson(p) => p.advance(),
            ContactStream::Cursor { trace, pos } => {
                let event = trace.events().get(*pos).copied();
                *pos += event.is_some() as usize;
                event
            }
        }
    }
}

/// Lazy discrete-time contacts (§3.4): each of the `P` pairs meets in
/// each of the `slots` slots independently with probability `p = μ·δ`.
///
/// The `slots · P` Bernoulli trials form one long i.i.d. sequence in
/// slot-major order; the stream jumps between successes with geometric
/// gaps, so sampling costs O(contacts) instead of O(slots · P) and holds
/// O(1) state.
#[derive(Clone, Debug)]
pub struct SlotContactStream {
    nodes: usize,
    pairs: u64,
    slots: u64,
    /// ln(1 − p), cached for the geometric inversions (0 ⇒ p = 0).
    ln_q: f64,
    /// Flattened index of the next candidate Bernoulli trial.
    pos: u64,
    rng: Xoshiro256,
    lookahead: Option<SlotContact>,
}

/// One discrete-time contact: pair `(a, b)` met during `slot`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotContact {
    /// The slot index in `[0, slots)`.
    pub slot: u64,
    /// First node of the pair (`a < b`).
    pub a: u32,
    /// Second node of the pair.
    pub b: u32,
}

impl SlotContactStream {
    /// A stream over `nodes` nodes and `slots` slots with per-pair,
    /// per-slot contact probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1` (it is a probability, and `p = 1` would
    /// mean every pair meets every slot — not a sparse contact process).
    pub fn new(nodes: usize, p: f64, slots: u64, rng: Xoshiro256) -> Self {
        assert!((0.0..1.0).contains(&p), "need 0 ≤ p < 1 (got {p})");
        let pairs = if nodes < 2 {
            0
        } else {
            nodes as u64 * (nodes as u64 - 1) / 2
        };
        let mut stream = SlotContactStream {
            nodes,
            pairs,
            slots,
            ln_q: (1.0 - p).ln(),
            pos: 0,
            rng,
            lookahead: None,
        };
        stream.lookahead = stream.sample_next();
        stream
    }

    /// Jump to the next success of the flattened Bernoulli sequence.
    fn sample_next(&mut self) -> Option<SlotContact> {
        if self.ln_q == 0.0 || self.pairs == 0 {
            return None; // p = 0: no pair ever meets
        }
        let total = self.slots.checked_mul(self.pairs).unwrap_or_else(|| {
            panic!(
                "trial too long: {} slots x {} pairs overflows u64",
                self.slots, self.pairs
            )
        });
        // Geometric(p) failures before the next success.
        let skip = (self.rng.f64_open().ln() / self.ln_q).floor();
        if skip >= (total - self.pos) as f64 {
            self.pos = total;
            return None;
        }
        let idx = self.pos + skip as u64;
        self.pos = idx + 1;
        let (a, b) = pair_from_index(self.nodes, idx % self.pairs);
        Some(SlotContact {
            slot: idx / self.pairs,
            a,
            b,
        })
    }

    /// Slot of the next contact without consuming it.
    pub fn peek_slot(&self) -> Option<u64> {
        self.lookahead.map(|c| c.slot)
    }
}

impl Iterator for SlotContactStream {
    type Item = SlotContact;

    fn next(&mut self) -> Option<SlotContact> {
        let contact = self.lookahead?;
        self.lookahead = self.sample_next();
        Some(contact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn pair_decode_is_exact_inverse() {
        for nodes in [2usize, 3, 5, 17, 100, 1000] {
            let mut k = 0u64;
            for a in 0..nodes as u32 {
                for b in (a + 1)..nodes as u32 {
                    assert_eq!(pair_from_index(nodes, k), (a, b), "n={nodes} k={k}");
                    k += 1;
                }
            }
        }
    }

    #[test]
    fn poisson_stream_is_sorted_in_window_and_deterministic() {
        let rng = Xoshiro256::seed_from_u64(7);
        let stream = ContactStream::poisson(12, 0.1, 500.0, rng.clone());
        let events: Vec<ContactEvent> = stream.collect();
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for e in &events {
            assert!(e.time <= 500.0 && e.b < 12 && e.a < e.b);
        }
        let again: Vec<ContactEvent> = ContactStream::poisson(12, 0.1, 500.0, rng).collect();
        assert_eq!(events, again, "same rng must give the same stream");
    }

    #[test]
    fn poisson_stream_recovers_rate() {
        let rng = Xoshiro256::seed_from_u64(8);
        let trace = ContactStream::poisson(20, 0.05, 10_000.0, rng).collect_trace();
        let stats = TraceStats::from_trace(&trace);
        assert!(
            (stats.rates().mean_rate() - 0.05).abs() < 0.002,
            "estimated {}",
            stats.rates().mean_rate()
        );
        // Per-pair rates are uniform-ish: no pair should be starved.
        let mut min_rate = f64::INFINITY;
        for a in 0..20 {
            for b in (a + 1)..20 {
                min_rate = min_rate.min(stats.rates().rate(a, b));
            }
        }
        assert!(min_rate > 0.02, "some pair starved ({min_rate})");
    }

    #[test]
    fn collect_trace_equals_lazy_iteration() {
        let rng = Xoshiro256::seed_from_u64(9);
        let collected = ContactStream::poisson(8, 0.2, 300.0, rng.clone()).collect_trace();
        let lazy: Vec<ContactEvent> = ContactStream::poisson(8, 0.2, 300.0, rng).collect();
        assert_eq!(collected.events(), lazy.as_slice());
    }

    #[test]
    fn cursor_replays_trace_and_peeks() {
        let trace = Arc::new(ContactTrace::new(
            4,
            100.0,
            vec![ContactEvent::new(10.0, 0, 1), ContactEvent::new(20.0, 2, 3)],
        ));
        let stream = ContactStream::cursor(Arc::clone(&trace));
        assert_eq!(stream.nodes(), 4);
        assert_eq!(stream.duration(), 100.0);
        assert_eq!(stream.peek().unwrap().time, 10.0);
        assert_eq!(stream.peek().unwrap().time, 10.0, "peek must not consume");
        let events: Vec<ContactEvent> = stream.collect();
        assert_eq!(events.as_slice(), trace.events());
    }

    #[test]
    fn empty_streams_yield_nothing() {
        let rng = Xoshiro256::seed_from_u64(1);
        assert_eq!(
            ContactStream::poisson(5, 0.0, 100.0, rng.clone()).count(),
            0
        );
        assert_eq!(
            ContactStream::poisson(1, 0.5, 100.0, rng.clone()).count(),
            0
        );
        assert_eq!(SlotContactStream::new(5, 0.0, 100, rng.clone()).count(), 0);
        assert_eq!(SlotContactStream::new(1, 0.5, 100, rng).count(), 0);
    }

    #[test]
    fn slot_stream_is_slot_ordered_and_in_range() {
        let rng = Xoshiro256::seed_from_u64(11);
        let contacts: Vec<SlotContact> = SlotContactStream::new(10, 0.1, 200, rng).collect();
        assert!(!contacts.is_empty());
        for w in contacts.windows(2) {
            assert!(
                w[0].slot < w[1].slot
                    || (w[0].slot == w[1].slot && (w[0].a, w[0].b) < (w[1].a, w[1].b)),
                "contacts out of slot-major order: {w:?}"
            );
        }
        for c in &contacts {
            assert!(c.slot < 200 && c.b < 10 && c.a < c.b);
        }
    }

    #[test]
    fn slot_stream_matches_bernoulli_rate() {
        // 45 pairs × 2000 slots × p = 0.02 ⇒ 1800 expected contacts.
        let rng = Xoshiro256::seed_from_u64(12);
        let n = SlotContactStream::new(10, 0.02, 2_000, rng).count() as f64;
        assert!(
            (n - 1_800.0).abs() < 5.0 * 1_800.0f64.sqrt(),
            "{n} contacts"
        );
    }

    #[test]
    fn slot_stream_peek_matches_next() {
        let rng = Xoshiro256::seed_from_u64(13);
        let mut stream = SlotContactStream::new(6, 0.05, 500, rng);
        while let Some(slot) = stream.peek_slot() {
            let c = stream.next().unwrap();
            assert_eq!(c.slot, slot);
        }
        assert!(stream.next().is_none());
    }

    #[test]
    #[should_panic(expected = "0 ≤ p < 1")]
    fn slot_stream_rejects_probability_one() {
        let _ = SlotContactStream::new(3, 1.0, 10, Xoshiro256::seed_from_u64(0));
    }
}
