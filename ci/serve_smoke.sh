#!/usr/bin/env bash
# Smoke-test the allocation service end to end against a real server
# process: readiness via the serve.addr file, /healthz, a synchronous
# solve (plus the machine-readable error envelope), a tiny campaign run
# to completion, its SSE feed and content-addressed artifact, and a
# /metrics scrape that must parse as Prometheus text exposition
# (`impatience trace lint-prom`). Finishes with the loadtest's p99
# latency gate at reduced (--quick) load against the committed
# BENCH_serve.json.
#
# Usage: ci/serve_smoke.sh   (from the repo root, after a release build)
#   BIN=...      override the impatience binary (default target/release)
#   LOADTEST=... override the serve_loadtest binary
set -euo pipefail

BIN=${BIN:-target/release/impatience}
LOADTEST=${LOADTEST:-target/release/serve_loadtest}
DATA=$(mktemp -d)
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
    rm -rf "$DATA"
}
trap cleanup EXIT

"$BIN" serve --addr 127.0.0.1:0 --data-dir "$DATA" --queue 8 &
SRV=$!

# Readiness: the server writes its bound (ephemeral) address atomically.
for _ in $(seq 1 100); do
    [ -s "$DATA/serve.addr" ] && break
    sleep 0.1
done
[ -s "$DATA/serve.addr" ] || { echo "serve.addr never appeared"; exit 1; }
BASE="http://$(cat "$DATA/serve.addr")"
echo "server ready at $BASE"

# Liveness.
curl -fsS "$BASE/healthz" | grep '"status":"ok"' > /dev/null

# Synchronous solve on the warm pool.
curl -fsS -X POST "$BASE/v1/solve" \
    -d '{"nodes":40,"rho":2,"mu":0.05,"items":12,"utility":"step:10"}' \
    | grep '"outcome":"resolved"' > /dev/null

# Bounded-staleness mode round-trips per request.
curl -fsS -X POST "$BASE/v1/solve" \
    -d '{"nodes":40,"rho":2,"mu":0.05,"items":12,"stale_eps":0.05}' \
    | grep '"outcome"' > /dev/null

# Malformed input answers with the error envelope, not a hang or a 500:
# exit_code 2 is the CLI usage code (see API.md's mapping table).
curl -s -X POST "$BASE/v1/solve" -d '{"rho":2}' | grep '"exit_code":2' > /dev/null

# A tiny campaign, run to completion.
SUBMIT=$(curl -fsS -X POST "$BASE/v1/campaigns" \
    -d '{"nodes":14,"mu":0.05,"duration":200.0,"items":6,"rho":2,"trials":2,"seed":11}')
JOB=$(printf '%s' "$SUBMIT" | sed -n 's/.*"job":"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "submit reply had no job id: $SUBMIT"; exit 1; }
echo "campaign $JOB accepted"

STATE=""
for _ in $(seq 1 600); do
    STATUS=$(curl -fsS "$BASE/v1/campaigns/$JOB")
    STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    [ "$STATE" = "done" ] && break
    [ "$STATE" = "failed" ] && { echo "campaign failed: $STATUS"; exit 1; }
    sleep 0.1
done
[ "$STATE" = "done" ] || { echo "campaign stuck in state '$STATE'"; exit 1; }
echo "campaign $JOB done"

# The SSE feed replays the full event stream and ends with a terminal
# frame naming the job's final state.
SSE=$(curl -fsS "$BASE/v1/campaigns/$JOB/events?follow=0")
FRAMES=$(printf '%s' "$SSE" | grep -c '^data:')
[ "$FRAMES" -gt 10 ] || { echo "SSE snapshot looked empty ($FRAMES frames)"; exit 1; }
printf '%s' "$SSE" | grep '^event: end' > /dev/null
echo "SSE snapshot: $FRAMES frames"

# The result artifact round-trips through its content address.
HASH=$(curl -fsS "$BASE/v1/campaigns/$JOB" | sed -n 's/.*"artifact":"\([^"]*\)".*/\1/p')
[ -n "$HASH" ] || { echo "done job had no artifact hash"; exit 1; }
curl -fsS "$BASE/v1/artifacts/$HASH" | grep '"schema":"impatience-serve-result\/1"' > /dev/null
echo "artifact $HASH fetched"

# The metrics scrape must parse as Prometheus text exposition.
curl -fsS "$BASE/metrics" -o "$DATA/metrics.prom"
"$BIN" trace lint-prom "$DATA/metrics.prom"
grep -q impatience_http_requests_total "$DATA/metrics.prom"
grep -q impatience_campaigns_total "$DATA/metrics.prom"

kill "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=""

# Latency regression gate: measured solve p99 (at reduced load) must
# stay within the slack of the committed bench.
"$LOADTEST" --quick --gate BENCH_serve.json
echo "serve smoke: all checks passed"
