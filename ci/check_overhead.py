#!/usr/bin/env python3
"""Observability overhead regression gate.

Parses one or more criterion text outputs containing the
``observability_overhead`` group and asserts that the ``noop`` row's
median stays within 2% of the ``uninstrumented`` row's median.

Both rows run the identical engine — ``run_trial`` is
``run_trial_observed::<NoopSink>`` by construction — so any real gap
means the static-dispatch zero-cost design was broken (a dynamic branch,
a non-inlined hook, work on the disabled span path). Shared CI runners
are noisy, so the gate takes the *best* (minimum) median per row across
all provided runs before comparing; pass three runs for a robust verdict.

Usage: check_overhead.py BENCH_OUT [BENCH_OUT ...]
Exit codes: 0 within budget, 1 regression, 2 parse failure.
"""

import re
import sys

BUDGET = 1.02

UNITS = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}

LINE = re.compile(
    r"observability_overhead/(\w+)\s+time:\s*"
    r"\[\s*([\d.]+)\s*(ns|µs|us|ms|s)"  # min
    r"\s+([\d.]+)\s*(ns|µs|us|ms|s)"  # median
    r"\s+([\d.]+)\s*(ns|µs|us|ms|s)\s*\]"  # max
)


def parse(path):
    """Return {row: median_ns} for the overhead group in one output."""
    rows = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            m = LINE.search(line)
            if m:
                rows[m.group(1)] = float(m.group(4)) * UNITS[m.group(5)]
    return rows


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    best = {}
    for path in argv[1:]:
        for row, median_ns in parse(path).items():
            best[row] = min(best.get(row, float("inf")), median_ns)
    missing = {"uninstrumented", "noop"} - set(best)
    if missing:
        print(f"overhead gate: missing bench rows {sorted(missing)} in {argv[1:]}")
        return 2
    base, noop = best["uninstrumented"], best["noop"]
    ratio = noop / base
    for row in sorted(best):
        print(f"  {row:<16} best median {best[row] / 1e6:9.3f} ms")
    print(f"overhead gate: noop/uninstrumented = {ratio:.4f} (budget {BUDGET})")
    if ratio > BUDGET:
        print("FAIL: no-op sink path regressed beyond 2% of the uninstrumented path")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
