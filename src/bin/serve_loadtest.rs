//! `serve_loadtest` — load bench for the `impatience serve` HTTP server.
//!
//! Spins an in-process [`impatience_serve::Server`] on an ephemeral port
//! and drives it through three phases:
//!
//! 1. **solve storm** — `--clients` threads each issue `--per-client`
//!    `POST /v1/solve` requests (demand deltas vary per request, so the
//!    warm solver pool sees both hits and misses); reports p50/p90/p99
//!    wall latency and throughput.
//! 2. **campaigns + SSE** — `--campaigns` jobs run to completion, each
//!    with a live SSE subscriber from offset 0; every frame id must be
//!    contiguous and the terminal `event: end` count must equal frames
//!    delivered (zero drops), then each result artifact is fetched and
//!    re-hashed. Reports campaigns/hour.
//! 3. **shedding** — a second server with a tiny queue takes a
//!    submission burst; reports accepted vs 429-shed and re-checks
//!    `/healthz` afterwards (graceful degradation, not collapse).
//!
//! The JSON document on stdout (or `-o FILE`, atomic) is the committed
//! `BENCH_serve.json`. `--gate FILE [--slack F]` instead compares the
//! measured solve p99 against the committed one and exits 1 if it
//! regressed beyond `slack`× (the CI latency gate; default slack 3.0
//! absorbs shared-runner noise).
//!
//! ```text
//! cargo run --release --bin serve_loadtest -- -o BENCH_serve.json
//! cargo run --release --bin serve_loadtest -- --quick --gate BENCH_serve.json
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant, SystemTime};

use impatience_json::Json;
use impatience_obs::write_atomic;
use impatience_serve::{fnv1a_hash, ServeConfig, Server};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("serve_loadtest: {e}");
            ExitCode::from(2)
        }
    }
}

struct Opts {
    clients: usize,
    per_client: usize,
    campaigns: usize,
    gate: Option<PathBuf>,
    slack: f64,
    out: Option<PathBuf>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        clients: 50,
        per_client: 24,
        campaigns: 3,
        gate: None,
        slack: 3.0,
        out: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--quick" => {
                opts.clients = 8;
                opts.per_client = 8;
                opts.campaigns = 2;
            }
            "--clients" => opts.clients = num(&value("--clients")?)?,
            "--per-client" => opts.per_client = num(&value("--per-client")?)?,
            "--campaigns" => opts.campaigns = num(&value("--campaigns")?)?,
            "--gate" => opts.gate = Some(PathBuf::from(value("--gate")?)),
            "--slack" => {
                opts.slack = value("--slack")?
                    .parse()
                    .map_err(|_| "cannot parse --slack".to_string())?
            }
            "-o" => opts.out = Some(PathBuf::from(value("-o")?)),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.clients == 0 || opts.per_client == 0 || opts.campaigns == 0 {
        return Err("--clients, --per-client, --campaigns must be >= 1".into());
    }
    Ok(opts)
}

fn num(v: &str) -> Result<usize, String> {
    v.parse().map_err(|_| format!("cannot parse `{v}`"))
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_opts()?;
    let dir = std::env::temp_dir().join(format!("serve-loadtest-{}", std::process::id()));
    let result = bench(&opts, &dir);
    std::fs::remove_dir_all(&dir).ok();
    let doc = result?;

    if let Some(gate) = &opts.gate {
        return gate_check(&doc, gate, opts.slack);
    }
    let mut text = String::new();
    doc.write_pretty(&mut text, 2);
    text.push('\n');
    match &opts.out {
        Some(path) => {
            write_atomic(path, text.as_bytes()).map_err(|e| format!("cannot write: {e}"))?;
            eprintln!("bench → {}", path.display());
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// Compare this run's solve p99 against the committed bench document.
fn gate_check(measured: &Json, committed: &Path, slack: f64) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(committed)
        .map_err(|e| format!("cannot read {}: {e}", committed.display()))?;
    let doc = Json::parse(text.trim()).map_err(|e| format!("{}: {e}", committed.display()))?;
    let p99 = |d: &Json| -> Option<f64> { d.get("solve")?.get("p99_ms")?.as_f64() };
    let committed_p99 = p99(&doc).ok_or("committed bench lacks solve.p99_ms")?;
    let measured_p99 = p99(measured).ok_or("measured bench lacks solve.p99_ms")?;
    let budget = committed_p99 * slack;
    let verdict = if measured_p99 <= budget { "ok" } else { "FAIL" };
    eprintln!(
        "p99 gate: measured {measured_p99:.2} ms vs committed {committed_p99:.2} ms \
         (slack {slack}x → budget {budget:.2} ms): {verdict}"
    );
    if measured_p99 <= budget {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}

fn bench(opts: &Opts, dir: &Path) -> Result<Json, String> {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: dir.join("main"),
        ..ServeConfig::default()
    })
    .map_err(|e| e.message())?;
    let addr = server.addr();
    eprintln!(
        "server on {addr}: {} clients x {} solves, {} campaigns",
        opts.clients, opts.per_client, opts.campaigns
    );

    let solve = solve_storm(addr, opts.clients, opts.per_client)?;
    let campaigns = campaign_phase(addr, opts.campaigns)?;
    server.shutdown();
    let shedding = shed_phase(&dir.join("shed"))?;

    Ok(Json::obj([
        ("bench", Json::from("serve_loadtest")),
        (
            "refresh",
            Json::from("cargo run --release --bin serve_loadtest -- -o BENCH_serve.json"),
        ),
        ("measured", Json::from(today())),
        (
            "host",
            Json::from(
                "single-vCPU container (nproc=1), loopback TCP, one connection per \
                 request; latencies include connect+parse, compare medians",
            ),
        ),
        ("solve", solve),
        ("campaigns", campaigns),
        ("shedding", shedding),
    ]))
}

/// Phase 1: concurrent `POST /v1/solve` storm.
fn solve_storm(addr: SocketAddr, clients: usize, per_client: usize) -> Result<Json, String> {
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        handles.push(std::thread::spawn(move || -> (Vec<f64>, usize, usize) {
            let mut latencies = Vec::with_capacity(per_client);
            let (mut hits, mut errors) = (0, 0);
            for k in 0..per_client {
                // Same system shape throughout (warms the pool); demand
                // deltas vary per request so solves do real work.
                let item = (c * per_client + k) % 16;
                let rate = 0.012 + 0.0008 * ((c + k) % 7) as f64;
                let body = format!(
                    r#"{{"nodes":40,"rho":2,"mu":0.05,"items":16,"omega":1.0,"deltas":[{{"item":{item},"rate":{rate}}}]}}"#
                );
                let t = Instant::now();
                match request(addr, "POST", "/v1/solve", Some(&body)) {
                    Ok((200, reply)) => {
                        latencies.push(t.elapsed().as_secs_f64() * 1e3);
                        if reply.contains(r#""pool":"hit""#) {
                            hits += 1;
                        }
                    }
                    _ => errors += 1,
                }
            }
            (latencies, hits, errors)
        }));
    }
    let mut latencies = Vec::new();
    let (mut hits, mut errors) = (0usize, 0usize);
    for h in handles {
        let (l, h2, e) = h.join().map_err(|_| "solve client panicked")?;
        latencies.extend(l);
        hits += h2;
        errors += e;
    }
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let total = clients * per_client;
    eprintln!(
        "solve storm: {total} requests in {wall:.2}s ({:.0} rps), \
         p50 {:.2} ms p99 {:.2} ms, {errors} errors",
        total as f64 / wall,
        pct(0.50),
        pct(0.99)
    );
    Ok(Json::obj([
        ("requests", Json::from(total)),
        ("clients", Json::from(clients)),
        ("wall_s", Json::from(round3(wall))),
        ("throughput_rps", Json::from(round3(total as f64 / wall))),
        ("p50_ms", Json::from(round3(pct(0.50)))),
        ("p90_ms", Json::from(round3(pct(0.90)))),
        ("p99_ms", Json::from(round3(pct(0.99)))),
        ("max_ms", Json::from(round3(pct(1.0)))),
        (
            "pool_hit_rate",
            Json::from(round3(hits as f64 / total.max(1) as f64)),
        ),
        ("errors", Json::from(errors)),
    ]))
}

/// Phase 2: campaigns to completion with live SSE subscribers.
fn campaign_phase(addr: SocketAddr, jobs: usize) -> Result<Json, String> {
    let t0 = Instant::now();
    let spec = r#"{"nodes":20,"mu":0.05,"duration":300.0,"items":8,"rho":2,"trials":4,"seed":7,"checkpoint_every":2}"#;
    let mut ids = Vec::new();
    for _ in 0..jobs {
        let (status, body) = request(addr, "POST", "/v1/campaigns", Some(spec))
            .map_err(|e| format!("submit: {e}"))?;
        if status != 202 {
            return Err(format!("campaign submit got {status}: {body}"));
        }
        let json = Json::parse(body.trim()).map_err(|e| format!("submit reply: {e}"))?;
        let id = json
            .get("job")
            .and_then(|j| j.as_str().map(str::to_string))
            .ok_or("submit reply lacks job id")?;
        ids.push(id);
    }

    // One live subscriber per job, from offset 0, until `event: end`.
    let mut readers = Vec::new();
    for id in &ids {
        let id = id.clone();
        readers.push(std::thread::spawn(move || read_sse(addr, &id)));
    }
    let (mut delivered, mut expected) = (0usize, 0usize);
    let mut contiguous = true;
    for r in readers {
        let sse = r.join().map_err(|_| "sse reader panicked")??;
        delivered += sse.frames;
        expected += sse.end_events;
        contiguous &= sse.ids_contiguous;
        if sse.end_state != "done" {
            return Err(format!("job finished in state `{}`", sse.end_state));
        }
    }
    if !contiguous {
        return Err("SSE frame ids were not contiguous".into());
    }
    if delivered != expected {
        return Err(format!(
            "SSE drop: delivered {delivered} frames, server recorded {expected}"
        ));
    }
    let wall = t0.elapsed().as_secs_f64();

    // Artifact round-trip: fetch each job's result and re-hash it.
    let mut roundtrips = 0usize;
    for id in &ids {
        let (status, body) = request(addr, "GET", &format!("/v1/campaigns/{id}"), None)
            .map_err(|e| format!("status: {e}"))?;
        if status != 200 {
            return Err(format!("job status got {status}"));
        }
        let json = Json::parse(body.trim()).map_err(|e| format!("status reply: {e}"))?;
        let hash = json
            .get("artifact")
            .and_then(|a| a.as_str().map(str::to_string))
            .ok_or("done job lacks artifact hash")?;
        let (status, artifact) = request(addr, "GET", &format!("/v1/artifacts/{hash}"), None)
            .map_err(|e| format!("artifact: {e}"))?;
        if status != 200 {
            return Err(format!("artifact fetch got {status}"));
        }
        if fnv1a_hash(artifact.as_bytes()) != hash {
            return Err("artifact bytes do not match their content address".into());
        }
        roundtrips += 1;
    }
    eprintln!(
        "campaigns: {jobs} jobs in {wall:.2}s, {delivered} SSE frames, zero dropped, \
         {roundtrips} artifact round-trips"
    );
    Ok(Json::obj([
        ("jobs", Json::from(jobs)),
        ("trials_per_job", Json::from(4usize)),
        ("wall_s", Json::from(round3(wall))),
        (
            "campaigns_per_hour",
            Json::from(round3(jobs as f64 * 3600.0 / wall)),
        ),
        ("sse_frames_delivered", Json::from(delivered)),
        ("sse_frames_expected", Json::from(expected)),
        ("sse_dropped", Json::from(delivered.abs_diff(expected))),
        ("artifact_roundtrips", Json::from(roundtrips)),
    ]))
}

/// Phase 3: saturate a tiny queue and verify graceful 429 shedding.
fn shed_phase(dir: &Path) -> Result<Json, String> {
    const QUEUE_CAP: usize = 2;
    const BURST: usize = 12;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: dir.to_path_buf(),
        queue_cap: QUEUE_CAP,
        ..ServeConfig::default()
    })
    .map_err(|e| e.message())?;
    let addr = server.addr();
    let spec = r#"{"nodes":12,"mu":0.05,"duration":150.0,"items":5,"rho":1,"trials":2,"seed":3}"#;
    let (mut accepted, mut shed) = (0usize, 0usize);
    for _ in 0..BURST {
        match request(addr, "POST", "/v1/campaigns", Some(spec)) {
            Ok((202, _)) => accepted += 1,
            Ok((429, _)) => shed += 1,
            Ok((status, body)) => return Err(format!("burst got {status}: {body}")),
            Err(e) => return Err(format!("burst: {e}")),
        }
    }
    let (health, _) =
        request(addr, "GET", "/healthz", None).map_err(|e| format!("healthz: {e}"))?;
    server.shutdown();
    if shed == 0 {
        return Err(format!(
            "expected shedding with queue_cap={QUEUE_CAP} and burst={BURST}"
        ));
    }
    if health != 200 {
        return Err(format!("healthz degraded to {health} under saturation"));
    }
    eprintln!("shedding: {accepted} accepted, {shed} shed with 429, healthz 200");
    Ok(Json::obj([
        ("queue_cap", Json::from(QUEUE_CAP)),
        ("burst", Json::from(BURST)),
        ("accepted", Json::from(accepted)),
        ("shed_429", Json::from(shed)),
        ("healthz_after", Json::from(i64::from(health))),
    ]))
}

// ---------------------------------------------------------------- client

/// One `Connection: close` HTTP exchange; returns (status, body).
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    let mut reply = String::new();
    stream.read_to_string(&mut reply)?;
    let status: u16 = reply
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

struct SseOutcome {
    frames: usize,
    ids_contiguous: bool,
    end_events: usize,
    end_state: String,
}

/// Subscribe to a job's SSE feed from offset 0 and read to the terminal
/// `event: end` frame, verifying frame-id contiguity along the way.
fn read_sse(addr: SocketAddr, job: &str) -> Result<SseOutcome, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("sse connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let head = format!(
        "GET /v1/campaigns/{job}/events?offset=0 HTTP/1.1\r\nHost: bench\r\nAccept: text/event-stream\r\n\r\n"
    );
    reader
        .get_mut()
        .write_all(head.as_bytes())
        .map_err(|e| format!("sse write: {e}"))?;

    // Headers.
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("sse status: {e}"))?;
    if !line.starts_with("HTTP/1.1 200") {
        return Err(format!("sse got: {}", line.trim()));
    }
    loop {
        line.clear();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if line == "\r\n" || line == "\n" || line.is_empty() {
            break;
        }
    }

    // Frames: `id:`/`event:`/`data:` fields, blank-line terminated.
    let mut outcome = SseOutcome {
        frames: 0,
        ids_contiguous: true,
        end_events: 0,
        end_state: String::new(),
    };
    let (mut id, mut event, mut data): (Option<usize>, Option<String>, String) =
        (None, None, String::new());
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("sse stream ended without `event: end`".into());
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            // Frame boundary.
            if event.as_deref() == Some("end") {
                let end = Json::parse(&data).map_err(|e| format!("end frame: {e}"))?;
                outcome.end_events = end
                    .get("events")
                    .and_then(|v| v.as_i64())
                    .unwrap_or(-1)
                    .max(0) as usize;
                outcome.end_state = end
                    .get("state")
                    .and_then(|v| v.as_str().map(str::to_string))
                    .unwrap_or_default();
                return Ok(outcome);
            }
            if !data.is_empty() {
                if id != Some(outcome.frames) {
                    outcome.ids_contiguous = false;
                }
                outcome.frames += 1;
            }
            id = None;
            event = None;
            data.clear();
        } else if let Some(v) = trimmed.strip_prefix("id:") {
            id = v.trim().parse().ok();
        } else if let Some(v) = trimmed.strip_prefix("event:") {
            event = Some(v.trim().to_string());
        } else if let Some(v) = trimmed.strip_prefix("data:") {
            data.push_str(v.trim_start());
        }
    }
}

// ---------------------------------------------------------------- misc

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Today as `YYYY-MM-DD` (UTC), from the Unix clock — no date crate.
fn today() -> String {
    let secs = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil-from-days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
