//! `impatience` — command-line front end to the workspace.
//!
//! ```text
//! impatience generate poisson    --nodes 50 --mu 0.05 --duration 5000 -o trace.txt
//! impatience generate conference --nodes 50 --days 3               -o conf.txt
//! impatience generate vehicular  --cabs 50 --duration 1440         -o taxi.txt
//! impatience stats    trace.txt
//! impatience solve    --items 50 --servers 50 --rho 5 --mu 0.05 --utility step:10
//! impatience simulate trace.txt --utility step:10 --policy qcr --trials 15
//! impatience simulate trace.txt --trace-out events.jsonl --verbose
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency): every option is
//! `--name value` (except the boolean `--verbose`), subcommand first,
//! one optional positional (the trace file).

use std::collections::HashMap;
use std::fs::File;
use std::process::ExitCode;
use std::sync::Arc;

use age_of_impatience::prelude::*;
use impatience_core::demand::DemandProfile;
use impatience_core::rng::Xoshiro256;
use impatience_core::solver::greedy::greedy_homogeneous_observed;
use impatience_core::solver::relaxed::relaxed_optimum;
use impatience_core::utility::{parse_utility, DelayUtility};
use impatience_core::welfare::HeterogeneousSystem;
use impatience_json::Json;
use impatience_obs::{Event, JsonlSink, Manifest, MemorySink, Recorder, TallySink};
use impatience_sim::config::SimConfig;
use impatience_sim::policy::PolicyKind;
use impatience_traces::gen::{ConferenceConfig, VehicularConfig};
use impatience_traces::write_trace;

fn main() -> ExitCode {
    // Dying mid-pipe (`impatience stats t | head`) closes our stdout;
    // Rust's println! panics on the resulting EPIPE. Exit quietly instead,
    // like every well-behaved Unix filter.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("Broken pipe"));
        if broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `impatience help` for usage");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
impatience — optimal replication for opportunistic networks

USAGE:
  impatience generate <poisson|conference|vehicular> [opts] -o FILE
  impatience stats    TRACE
  impatience solve    [--items N --servers N --rho N --mu F --omega F --utility SPEC]
  impatience simulate TRACE [--items N --rho N --utility SPEC --policy P --trials N --seed N]
                            [--trace-out FILE] [--verbose]
  impatience help

UTILITY SPECS:  step:<tau> | exp:<nu> | power:<alpha> | neglog
POLICIES:       qcr | qcr-no-routing | opt | uni | sqrt | prop | dom | passive

OBSERVABILITY:
  --trace-out FILE   write a JSONL event trace; a run manifest (config,
                     seeds, git revision, wall time, percentiles) lands at
                     FILE with extension .manifest.json. Trials still run
                     on all workers; events are flushed in trial order, so
                     the stream is complete, ordered, and deterministic.
  --verbose          print counters, percentiles, and solver/worker
                     telemetry after the run

COMMON OPTIONS (defaults):
  --items 50  --rho 5  --omega 1.0  --utility step:10  --trials 15  --seed 42
  generate poisson:    --nodes 50 --mu 0.05 --duration 5000
  generate conference: --nodes 50 --days 3
  generate vehicular:  --cabs 50 --duration 1440
";

struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = HashMap::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // Boolean flags take no value.
                if name == "verbose" {
                    options.insert(name.to_string(), "true".to_string());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{name} requires a value"))?;
                options.insert(name.to_string(), value.clone());
            } else if arg == "-o" {
                let value = it.next().ok_or("-o requires a file path")?;
                options.insert("out".to_string(), value.clone());
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args {
            positional,
            options,
        })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("cannot parse --{name} {v}")),
        }
    }

    fn verbose(&self) -> bool {
        self.options.contains_key("verbose")
    }

    fn utility(&self) -> Result<Arc<dyn DelayUtility>, String> {
        let spec = self
            .options
            .get("utility")
            .map(String::as_str)
            .unwrap_or("step:10");
        parse_utility(spec).map_err(|e| e.to_string())
    }
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(&raw[1..])?;
    match command.as_str() {
        "generate" => generate(&args),
        "stats" => stats(&args),
        "solve" => solve(&args),
        "simulate" => simulate(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let kind = args
        .positional
        .first()
        .ok_or("generate needs a kind: poisson | conference | vehicular")?;
    let seed: u64 = args.get("seed", 42)?;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let trace = match kind.as_str() {
        "poisson" => {
            let nodes: usize = args.get("nodes", 50)?;
            let mu: f64 = args.get("mu", 0.05)?;
            let duration: f64 = args.get("duration", 5_000.0)?;
            poisson_homogeneous(nodes, mu, duration, &mut rng)
        }
        "conference" => {
            let cfg = ConferenceConfig {
                nodes: args.get("nodes", 50)?,
                duration: args.get::<f64>("days", 3.0)? * 1_440.0,
                ..ConferenceConfig::default()
            };
            cfg.generate(&mut rng)
        }
        "vehicular" => {
            let cfg = VehicularConfig {
                cabs: args.get("cabs", 50)?,
                duration: args.get("duration", 1_440.0)?,
                ..VehicularConfig::default()
            };
            cfg.generate(&mut rng)
        }
        other => return Err(format!("unknown trace kind `{other}`")),
    };
    let out = args
        .options
        .get("out")
        .ok_or("generate needs an output file (-o FILE)")?;
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_trace(&trace, file).map_err(|e| e.to_string())?;
    println!(
        "wrote {} contacts / {} nodes / {:.0} min to {out}",
        trace.len(),
        trace.nodes(),
        trace.duration()
    );
    Ok(())
}

fn load_trace(args: &Args) -> Result<ContactTrace, String> {
    let path = args
        .positional
        .first()
        .ok_or("expected a trace file argument")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_trace(file).map_err(|e| e.to_string())
}

fn stats(args: &Args) -> Result<(), String> {
    let trace = load_trace(args)?;
    let s = TraceStats::from_trace(&trace);
    println!("nodes               : {}", trace.nodes());
    println!("duration            : {:.1} min", trace.duration());
    println!("contacts            : {}", trace.len());
    println!("mean pairwise rate  : {:.6} /min", s.rates().mean_rate());
    println!("rate heterogeneity  : CV {:.3}", s.rate_cv());
    println!("mean inter-contact  : {:.2} min", s.mean_intercontact());
    println!(
        "burstiness          : normalized ICT CV {:.3} (≈1 = memoryless)",
        s.normalized_intercontact_cv()
    );
    let counts = trace.contact_counts();
    let (min, max) = (
        counts.iter().min().copied().unwrap_or(0),
        counts.iter().max().copied().unwrap_or(0),
    );
    println!("contacts per node   : min {min}, max {max}");
    Ok(())
}

fn solve(args: &Args) -> Result<(), String> {
    let items: usize = args.get("items", 50)?;
    let servers: usize = args.get("servers", 50)?;
    let rho: usize = args.get("rho", 5)?;
    if items == 0 || servers == 0 || rho == 0 {
        return Err("--items, --servers and --rho must all be at least 1".into());
    }
    let mu: f64 = args.get("mu", 0.05)?;
    let omega: f64 = args.get("omega", 1.0)?;
    let clients: usize = args.get("clients", 0)?;
    let utility = args.utility()?;

    let system = if clients > 0 {
        SystemModel::dedicated(clients, servers, rho, mu)
    } else {
        SystemModel::pure_p2p(servers, rho, mu)
    };
    if utility.requires_dedicated() && clients == 0 {
        return Err(format!(
            "{} requires a dedicated population; pass --clients N",
            utility.kind()
        ));
    }
    let demand = Popularity::pareto(items, omega).demand_rates(1.0);

    let opt = if args.verbose() {
        let mut rec = Recorder::new(MemorySink::new());
        let opt = greedy_homogeneous_observed(&system, &demand, utility.as_ref(), &mut rec);
        if let Some(Event::SolverDone {
            iterations,
            evaluations,
            wall_s,
            ..
        }) = rec
            .sink()
            .events
            .iter()
            .rfind(|e| matches!(e, Event::SolverDone { .. }))
        {
            println!(
                "greedy: {iterations} placements, {evaluations} marginal evaluations, {:.2} ms",
                wall_s * 1e3
            );
        }
        opt
    } else {
        greedy_homogeneous(&system, &demand, utility.as_ref())
    };
    let relaxed = relaxed_optimum(&system, &demand, utility.as_ref());
    println!(
        "system: |I|={items} |S|={servers} ρ={rho} μ={mu} ω={omega} utility={}",
        utility.kind()
    );
    println!(
        "\n{:>5} {:>10} {:>8} {:>8}",
        "item", "demand", "OPT", "relaxed"
    );
    for i in 0..items.min(15) {
        println!(
            "{i:>5} {:>10.5} {:>8} {:>8.2}",
            demand.rate(i),
            opt.count(i),
            relaxed.x[i]
        );
    }
    if items > 15 {
        println!("  ... ({} more items)", items - 15);
    }
    for (label, counts) in [
        ("OPT", opt),
        ("UNI", uniform(items, servers, rho)),
        ("SQRT", sqrt_proportional(&demand, servers, rho)),
        ("PROP", proportional(&demand, servers, rho)),
        ("DOM", dominant(&demand, servers, rho)),
    ] {
        let w = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &counts.as_f64());
        println!("welfare {label:<5} {w:>12.5} utility/min");
    }
    Ok(())
}

fn simulate(args: &Args) -> Result<(), String> {
    let trace_file = args.positional.first().cloned().unwrap_or_default();
    let trace = load_trace(args)?;
    let items: usize = args.get("items", 50)?;
    let rho: usize = args.get("rho", 5)?;
    let omega: f64 = args.get("omega", 1.0)?;
    let trials: usize = args.get("trials", 15)?;
    let seed: u64 = args.get("seed", 42)?;
    let utility = args.utility()?;
    let policy_name = args
        .options
        .get("policy")
        .map(String::as_str)
        .unwrap_or("qcr");

    let demand = Popularity::pareto(items, omega).demand_rates(1.0);
    let profile = DemandProfile::uniform(items, trace.nodes());
    let stats = TraceStats::from_trace(&trace);
    let nodes = trace.nodes();

    let policy = match policy_name {
        "qcr" => PolicyKind::qcr_default(),
        "qcr-no-routing" => PolicyKind::Qcr(impatience_sim::policy::QcrConfig {
            mandate_routing: false,
            ..Default::default()
        }),
        "passive" => PolicyKind::Passive { replicas: 1.0 },
        "opt" => {
            let hsys = HeterogeneousSystem::pure_p2p(stats.rates().clone(), rho);
            let alloc = greedy_heterogeneous(&hsys, &demand, &profile, utility.as_ref());
            PolicyKind::Static {
                label: "OPT",
                counts: alloc.to_counts(),
            }
        }
        "uni" => PolicyKind::Static {
            label: "UNI",
            counts: uniform(items, nodes, rho),
        },
        "sqrt" => PolicyKind::Static {
            label: "SQRT",
            counts: sqrt_proportional(&demand, nodes, rho),
        },
        "prop" => PolicyKind::Static {
            label: "PROP",
            counts: proportional(&demand, nodes, rho),
        },
        "dom" => PolicyKind::Static {
            label: "DOM",
            counts: dominant(&demand, nodes, rho),
        },
        other => return Err(format!("unknown policy `{other}`")),
    };

    let config = SimConfig::builder(items, rho)
        .demand(demand)
        .profile(profile)
        .utility(utility.clone())
        .bin(60.0)
        .warmup_fraction(0.25)
        .build();
    let source = ContactSource::trace(trace);
    let verbose = args.verbose();

    let (agg, stats) = match args.options.get("trace-out") {
        Some(out) => {
            let path = std::path::Path::new(out);
            let file = File::create(path).map_err(|e| format!("cannot create {out}: {e}"))?;
            let mut rec = Recorder::new(JsonlSink::new(std::io::BufWriter::new(file)));
            let agg = run_trials_observed(&config, &source, &policy, trials, seed, &mut rec);
            let stats = rec.summary_json();
            rec.into_sink()
                .into_inner()
                .map_err(|e| format!("writing {out}: {e}"))?;

            let mut manifest = Manifest::new("simulate");
            manifest.set("trace", trace_file.as_str());
            manifest.set("events_file", out.as_str());
            manifest.set("policy", agg.label.as_str());
            manifest.set("utility", utility.kind().to_string());
            manifest.set("items", items as u64);
            manifest.set("rho", rho as u64);
            manifest.set("omega", omega);
            manifest.set("trials", trials as u64);
            manifest.set("base_seed", seed);
            manifest.set("warmup_fraction", config.warmup_fraction);
            manifest.set("workers", agg.workers as u64);
            manifest.set("wall_s", agg.wall_s);
            manifest.set("mean_trial_wall_s", agg.mean_trial_wall_s);
            manifest.set("worker_utilization", agg.worker_utilization);
            manifest.set("stats", stats.clone());
            let mpath = Manifest::sibling_path(path);
            manifest
                .write_to(&mpath)
                .map_err(|e| format!("cannot write {}: {e}", mpath.display()))?;
            println!("events  → {out}");
            println!("manifest→ {}", mpath.display());
            (agg, Some(stats))
        }
        None if verbose => {
            // Tallies without the event stream (runs on all workers;
            // per-trial tallies merge deterministically in trial order).
            let mut rec = Recorder::new(TallySink);
            let agg = run_trials_observed(&config, &source, &policy, trials, seed, &mut rec);
            (agg, Some(rec.summary_json()))
        }
        None => (run_trials(&config, &source, &policy, trials, seed), None),
    };

    println!(
        "policy {} over {trials} trials (utility {}):",
        agg.label,
        utility.kind()
    );
    println!("  mean observed utility : {:>10.5} /min", agg.mean_rate);
    println!(
        "  5–95% band            : {:>10.5} … {:.5}",
        agg.p5_rate, agg.p95_rate
    );
    println!("  transmissions/trial   : {:>10.1}", agg.mean_transmissions);
    if verbose {
        println!(
            "  immediate hits/trial  : {:>10.1}",
            agg.mean_immediate_hits
        );
        println!("  unfulfilled/trial     : {:>10.1}", agg.mean_unfulfilled);
        println!(
            "  mandates/trial        : {:>10.1}",
            agg.mean_mandates_created
        );
        println!(
            "  workers               : {:>10} ({:.0}% utilized)",
            agg.workers,
            agg.worker_utilization * 100.0
        );
        println!(
            "  wall time             : {:>10.3} s ({:.4} s/trial)",
            agg.wall_s, agg.mean_trial_wall_s
        );
        if let Some(stats) = &stats {
            let get = |h: &str, q: &str| {
                stats
                    .get(h)
                    .and_then(|o| o.get(q))
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN)
            };
            println!(
                "  fulfillment delay     : p50 {:.1}  p95 {:.1}  p99 {:.1} min",
                get("fulfillment_delay", "p50"),
                get("fulfillment_delay", "p95"),
                get("fulfillment_delay", "p99")
            );
            println!(
                "  inter-contact         : mean {:.2} min (p95 {:.1})",
                get("inter_contact", "mean"),
                get("inter_contact", "p95")
            );
            if let Some(peak) = stats
                .get("peaks")
                .and_then(|o| o.get("open_requests"))
                .and_then(Json::as_u64)
            {
                println!("  peak open requests    : {peak:>10}");
            }
        }
    }
    Ok(())
}
