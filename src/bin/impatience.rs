//! `impatience` — command-line front end to the workspace.
//!
//! ```text
//! impatience generate poisson    --nodes 50 --mu 0.05 --duration 5000 -o trace.txt
//! impatience generate conference --nodes 50 --days 3               -o conf.txt
//! impatience generate vehicular  --cabs 50 --duration 1440         -o taxi.txt
//! impatience stats    trace.txt
//! impatience solve    --items 50 --servers 50 --rho 5 --mu 0.05 --utility step:10
//! impatience simulate trace.txt --utility step:10 --policy qcr --trials 15
//! impatience simulate trace.txt --trace-out events.jsonl --verbose
//! impatience simulate trace.txt --drop-p 0.2 --churn-up 300 --churn-down 30
//! impatience simulate trace.txt --trials 200 --checkpoint run.ckpt
//! impatience resume   run.ckpt
//! impatience verify   --quick -o conformance.jsonl
//! impatience reproduce --all
//! impatience reproduce --fig 4 --check
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency): every option is
//! `--name value` (except the boolean `--verbose`), subcommand first,
//! one optional positional (the trace file).
//!
//! Errors are typed ([`CliError`]) and mapped to distinct exit codes so
//! scripts can tell a usage mistake from a torn checkpoint from a
//! degraded (skipped-trials) campaign.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use age_of_impatience::prelude::*;
use impatience_core::demand::DemandProfile;
use impatience_core::rng::Xoshiro256;
use impatience_core::solver::greedy::try_greedy_homogeneous_observed;
use impatience_core::solver::incremental::{Delta, DeltaOutcome, DeltaSolver};
use impatience_core::solver::relaxed::try_relaxed_optimum;
use impatience_core::solver::SolverError;
use impatience_core::utility::{parse_utility, DelayUtility};
use impatience_core::welfare::HeterogeneousSystem;
use impatience_exp::{run_spec, CheckOutcome, ExecContext, ExpError, Registry, Spec};
use impatience_json::Json;
use impatience_net::{
    run_net_trials_observed, ChaosEvent, ChaosKind, NetAggregate, NetConfig, NetError,
};
use impatience_obs::{
    parse_prometheus, render_diff, AtomicFile, Event, JsonlSink, Manifest, MemorySink,
    MetricsRegistry, Progress, Recorder, Sink, TallySink, TraceSummary,
};
use impatience_oracle::{
    delta_vs_scratch, net_vs_engine, run_matrix, summary_table, write_report, CheckStatus,
    MatrixOptions,
};
use impatience_serve::{ServeConfig, Server};
use impatience_sim::config::SimConfig;
use impatience_sim::faults::{CacheFaults, Churn, ContactDrop, FaultConfig, MsgFaults};
use impatience_sim::policy::PolicyKind;
use impatience_sim::runner::{
    run_trials_observed_with_workers, run_trials_sharded, CampaignOutcome,
};
use impatience_sim::sharded::LOGICAL_SHARDS;
use impatience_traces::gen::{ConferenceConfig, VehicularConfig};
use impatience_traces::{read_trace_file, write_trace, TraceError};

fn main() -> ExitCode {
    // Dying mid-pipe (`impatience stats t | head`) closes our stdout;
    // Rust's println! panics on the resulting EPIPE. Exit quietly instead,
    // like every well-behaved Unix filter.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("Broken pipe"));
        if broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error[{}]: {e}", e.kind());
            if matches!(e, CliError::Usage(_)) {
                eprintln!("run `impatience help` for usage");
            }
            e.exit_code()
        }
    }
}

/// Everything that can go wrong at the CLI boundary, each class with its
/// own exit code (listed in `USAGE`).
#[derive(Debug)]
enum CliError {
    /// Bad flags, values, or subcommands.
    Usage(String),
    /// The simulation configuration was rejected.
    Config(ConfigError),
    /// A solver rejected its instance.
    Solver(SolverError),
    /// A contact trace could not be read or parsed.
    Trace(TraceError),
    /// A campaign checkpoint could not be read, written, or matched.
    Checkpoint(CheckpointError),
    /// The campaign itself failed (e.g. every trial panicked).
    Campaign(CampaignError),
    /// Results could not be written.
    Io(String),
    /// The campaign finished but had to skip trials (degraded result).
    TrialsSkipped { skipped: usize, trials: usize },
    /// The conformance matrix ran but at least one invariant failed.
    Verify { failed: u32, scenarios: usize },
    /// The experiment pipeline failed (spec parse, validation, execution).
    Exp(ExpError),
    /// `reproduce --check` regenerated results that differ from the
    /// committed baselines.
    Drift { drifted: usize, checked: usize },
    /// The distributed runtime failed: conservation violation, strict
    /// transport timeout, codec corruption, or a bad `NetConfig`.
    Net(NetError),
    /// The distributed batch finished but some trials were degraded
    /// (supervisor condemned a node, or the event cap tripped).
    NetDegraded { degraded: usize, trials: usize },
    /// `netrun --verify` ran, but the distributed runtime disagreed with
    /// the engine on at least one scenario.
    NetVerify { failed: usize, scenarios: usize },
}

impl CliError {
    fn kind(&self) -> &'static str {
        match self {
            CliError::Usage(_) => "usage",
            CliError::Config(_) => "config",
            CliError::Solver(_) => "solver",
            CliError::Trace(_) => "trace",
            CliError::Checkpoint(_) => "checkpoint",
            CliError::Campaign(_) => "campaign",
            CliError::Io(_) => "io",
            CliError::TrialsSkipped { .. } => "degraded",
            CliError::Verify { .. } => "verify",
            CliError::Exp(e) => match e {
                ExpError::Io { .. } => "io",
                ExpError::Campaign { .. } => "campaign",
                _ => "config",
            },
            CliError::Drift { .. } => "drift",
            CliError::Net(_) => "net",
            CliError::NetDegraded { .. } => "degraded",
            CliError::NetVerify { .. } => "verify",
        }
    }

    fn exit_code(&self) -> ExitCode {
        ExitCode::from(match self {
            CliError::Usage(_) => 2,
            CliError::Config(_) => 3,
            CliError::Solver(_) => 4,
            CliError::Trace(_) => 5,
            CliError::Checkpoint(_) => 6,
            CliError::Campaign(_) => 7,
            CliError::Io(_) => 8,
            CliError::TrialsSkipped { .. } => 9,
            CliError::Verify { .. } => 10,
            CliError::Exp(e) => match e {
                ExpError::Io { .. } => 8,
                ExpError::Campaign { .. } => 7,
                _ => 3,
            },
            CliError::Drift { .. } => 11,
            CliError::Net(_) => 12,
            CliError::NetDegraded { .. } => 9,
            CliError::NetVerify { .. } => 10,
        })
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Io(m) => f.write_str(m),
            CliError::Config(e) => write!(f, "{e}"),
            CliError::Solver(e) => write!(f, "{e}"),
            CliError::Trace(e) => write!(f, "{e}"),
            CliError::Checkpoint(e) => write!(f, "{e}"),
            CliError::Campaign(e) => write!(f, "{e}"),
            CliError::TrialsSkipped { skipped, trials } => write!(
                f,
                "campaign degraded: skipped {skipped} of {trials} trial(s); \
                 aggregate covers the rest (details above)"
            ),
            CliError::Verify { failed, scenarios } => write!(
                f,
                "conformance matrix failed: {failed} invariant violation(s) \
                 across {scenarios} scenario(s); details above and in the report"
            ),
            CliError::Exp(e) => write!(f, "{e}"),
            CliError::Drift { drifted, checked } => write!(
                f,
                "reproduction drift: {drifted} of {checked} artifact(s) \
                 differ from the committed results (details above)"
            ),
            CliError::Net(e) => write!(f, "{e}"),
            CliError::NetDegraded { degraded, trials } => write!(
                f,
                "distributed batch degraded: {degraded} of {trials} trial(s) \
                 finished under a supervisor kill or the event cap; \
                 conservation held in all of them (details above)"
            ),
            CliError::NetVerify { failed, scenarios } => write!(
                f,
                "distributed runtime disagreed with the engine on {failed} of \
                 {scenarios} scenario(s); details above"
            ),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Usage(m.to_string())
    }
}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> CliError {
        CliError::Config(e)
    }
}

impl From<SolverError> for CliError {
    fn from(e: SolverError) -> CliError {
        CliError::Solver(e)
    }
}

impl From<TraceError> for CliError {
    fn from(e: TraceError) -> CliError {
        CliError::Trace(e)
    }
}

impl From<CheckpointError> for CliError {
    fn from(e: CheckpointError) -> CliError {
        CliError::Checkpoint(e)
    }
}

impl From<ExpError> for CliError {
    fn from(e: ExpError) -> CliError {
        CliError::Exp(e)
    }
}

impl From<NetError> for CliError {
    fn from(e: NetError) -> CliError {
        CliError::Net(e)
    }
}

impl From<CampaignError> for CliError {
    fn from(e: CampaignError) -> CliError {
        // Unwrap the typed causes so the exit code reflects the root.
        match e {
            CampaignError::Config(c) => CliError::Config(c),
            CampaignError::Checkpoint(c) => CliError::Checkpoint(c),
            other => CliError::Campaign(other),
        }
    }
}

const USAGE: &str = "\
impatience — optimal replication for opportunistic networks

USAGE:
  impatience generate <poisson|conference|vehicular> [opts] -o FILE
  impatience stats    TRACE
  impatience solve    [--items N --servers N --rho N --mu F --omega F --utility SPEC]
                      [--incremental [--deltas N] [--stale-eps F] [--seed N]]
  impatience simulate TRACE [--items N --rho N --utility SPEC --policy P --trials N --seed N]
                            [--trace-out FILE] [--verbose] [--workers N] [--profile]
                            [fault injection] [--checkpoint FILE]
  impatience simulate --shards W --nodes N --mu F --duration T
                            [--items N --rho N --utility SPEC --policy P --trials N
                             --seed N --verbose --profile] [fault injection]
  impatience resume   CKPT
  impatience netrun   [TRACE | --nodes N --mu F --duration T] [--items N --rho N
                       --utility SPEC --trials N --seed N --workers N]
                      [--loss-p F --dup-p F --reorder N] [fault injection]
                      [--window MIN --msg-delay MIN --deadline MIN]
                      [--kill T:NODE:DOWN] [--stall T:NODE]
                      [--trace-out FILE] [--verbose]
  impatience netrun   --verify [--quick] [--seed N] [--z F]
  impatience verify   [--quick|--full] [--seed N] [-o FILE] [--trace-out FILE] [--limit N]
                      [--profile]
  impatience verify   --solver-deltas [--quick] [--seed N]
  impatience reproduce [SPEC..] [--fig N | --all] [--list] [--check] [--resume]
                       [--specs DIR] [-o DIR] [--workers N] [--trace-out FILE] [--verbose]
                       [--profile]
  impatience trace    summarize FILE [--top K]
  impatience trace    diff FILE_A FILE_B
  impatience trace    export FILE --prom [-o FILE]
  impatience trace    lint-prom FILE
  impatience serve    [--addr HOST:PORT] [--data-dir DIR] [--queue N]
                      [--http-threads N] [--solver-pool N]
  impatience help

UTILITY SPECS:  step:<tau> | exp:<nu> | power:<alpha> | neglog
POLICIES:       qcr | qcr-no-routing | opt | uni | sqrt | prop | dom | passive

OBSERVABILITY:
  --trace-out FILE   write a JSONL event trace; a run manifest (config,
                     seeds, git revision, wall time, percentiles) lands at
                     FILE with extension .manifest.json. Trials still run
                     on all workers; events are flushed in trial order, so
                     the stream is complete, ordered, and deterministic.
                     Both files commit atomically (write-temp-then-rename).
  --verbose          print counters, percentiles, and solver/worker
                     telemetry after the run
  --profile          time the run with hierarchical spans (trial, contact,
                     exchange, solve.*, checkpoint, write_csv, ...) and
                     print the phase tree — wall, self, calls, p50/p95 —
                     after the run. reproduce writes the tree as
                     NAME.profile.json next to each spec's first artifact
                     plus a Prometheus NAME.prom; verify writes them as
                     siblings of the conformance report; simulate writes
                     them next to --trace-out when given. Off by default:
                     the disarmed span probes cost one relaxed atomic
                     load, and results are bit-identical either way.

TRACE ANALYSIS (trace; operates on --trace-out JSONL files):
  summarize FILE     event counts by kind, time range, the span phase
                     tree reconstructed from solver/trial events, and the
                     top --top K slowest cells and trials (default 5)
  diff A B           per-phase wall-time deltas and event-kind counts
                     between two traces (new/missing kinds flagged)
  export FILE --prom re-render a trace's tallies as Prometheus text
                     exposition; -o FILE writes atomically, else stdout
  lint-prom FILE     parse FILE as Prometheus text exposition and report
                     the sample count; any malformed line exits 5 with
                     its line number (CI gate for /metrics scrapes)

SERVICE MODE (serve; the allocation-as-a-service HTTP server):
  Runs the dependency-free HTTP/1.1 server from impatience-serve until
  killed: POST /v1/solve (warm incremental solver pool, per-request
  --stale-eps), POST /v1/campaigns (bounded FIFO queue, 429 shedding,
  checkpointed jobs that resume bit-identically after a crash),
  GET /v1/campaigns/{id}/events (live SSE with Last-Event-ID replay),
  GET /v1/artifacts/{hash} (content-addressed results), /healthz, and
  /metrics. The bound address lands in DIR/serve.addr for scripts.
  See API.md for the endpoint reference and DESIGN.md §17 for the
  architecture.
  --addr HOST:PORT   bind address (default 127.0.0.1:7199; port 0 picks
                     an ephemeral port)
  --data-dir DIR     state directory for jobs, checkpoints, and
                     artifacts (default serve-data)
  --queue N          campaign queue capacity before 429s (default 32)
  --http-threads N   connection worker threads (default 8)
  --solver-pool N    idle warm solvers kept per system shape (default 8)

SCALE RUNS (simulate --shards; the intra-trial sharded engine):
  --shards W         run each trial on the sharded engine with W worker
                     threads. Nodes split into 16 logical shards; contacts
                     are sampled streaming per shard lane from a synthetic
                     homogeneous Poisson source (--nodes/--mu/--duration
                     replace the TRACE argument), so million-node trials
                     with ~1e9 contacts fit in memory. Output — welfare
                     series, fault log, event digest — is bit-identical
                     for every W. Supports qcr/passive/static policies and
                     drop/cache/truncation faults; churn, traces, and
                     demand shifts stay on the serial engine.

FAULT INJECTION (simulate; seeded, deterministic, off by default):
  --drop-p F             drop each contact with probability F; with
  --drop-burst MEAN      drops arriving in bursts of mean length MEAN
                         (default 1 = independent Bernoulli)
  --churn-up MIN         exponential server on/off churn: mean up-time and
  --churn-down MIN       mean down-time in minutes (give both)
  --cache-fault-rate F   cache-slot failures per node-minute
  --truncate F           end each trial at fraction F of the horizon (0<F<=1)
  --fault-seed N         dedicated RNG stream for the fault processes

DISTRIBUTED RUNTIME (netrun; the message-passing QCR kernel):
  Runs QCR as independent node tasks exchanging a typed 5-message
  protocol (advert/request/fulfill/handoff/ack) over an unreliable
  in-process transport driven by the same contact stream as the engine.
  Every mandate movement is a two-phase acked transfer with capped
  exponential backoff; a quiesce-time audit proves exact mandate
  conservation (minted = executed + discarded + pooled + escrowed) or
  the run exits 12. Churn (--churn-up/--churn-down) crashes and
  restarts node tasks from their last checkpoint; a heartbeat
  supervisor condemns wedged nodes and degrades the run (exit 9)
  instead of hanging it.
  --loss-p F         drop each wire message with probability F
  --dup-p F          deliver each message twice with probability F
  --reorder N        extra per-message jitter of U(0,N) delay slots
                     (messages up to N slots apart can swap order)
  --window MIN       contact link-up window (default 0.05)
  --msg-delay MIN    one-way message delay (default 0.002)
  --deadline MIN     abandon requests older than this (default: horizon)
  --kill T:NODE:DOWN crash NODE at minute T, restart DOWN minutes later
  --stall T:NODE     wedge NODE at minute T (supervisor must condemn it)
  --trace-out FILE   JSONL events + manifest + a Prometheus .prom
                     sibling carrying the transport/protocol counters
  --verify           differential mode: run clean-transport scenarios
                     through both this runtime and the engine on paired
                     seeds and require agreement within the CLT budget
                     (exit 10 on disagreement), then a lossy sweep that
                     must terminate conserving at 5/10/20% loss.
                     --quick shrinks horizons for CI; --z sets the gate.

VERIFICATION (verify; deterministic given --seed):
  Runs the oracle conformance matrix — 5 utility families x 3 population
  shapes x {hom,het} contacts x {clean,faults} — and checks each cell
  against the paper's invariants: submodularity, the Property 1
  equilibrium residual, welfare monotonicity, greedy vs brute-force
  optima (Theorems 1-2), bit-level determinism, slot-refinement
  convergence, and the solver-variant cell (incremental delta solves
  bit-identical to scratch, staleness certificates sound). --full adds
  the Monte-Carlo differential checks (analytic vs simulated welfare,
  continuous vs discrete engines); --quick is the default and the CI
  gate. The JSONL report lands at -o FILE (default conformance.jsonl)
  with a manifest sibling; --trace-out streams per-scenario events;
  --limit N truncates the matrix (test hook).
  --solver-deltas    run only the delta_vs_scratch differential sweep:
                     random delta sequences through the incremental
                     solver, checked for bit-identity against scratch
                     solves, brute-force optimality on tiny instances,
                     and soundness of every bounded-staleness
                     certificate (exit 10 on any violation). --quick
                     shortens the sequences for CI.

INCREMENTAL SOLVES (solve --incremental):
  Replays --deltas N (default 16) seeded single-item demand changes
  through the incremental DeltaSolver and a from-scratch greedy solve
  side by side, timing both and requiring bit-identical allocations
  (exit 10 on divergence). --stale-eps F switches the solver to
  bounded-staleness mode: stale allocations are reused when a
  weak-duality certificate proves their welfare is within F of fresh,
  and every accepted certificate is audited against the actual fresh
  solve.

REPRODUCTION (reproduce; deterministic, seeds live in the specs):
  Compiles the declarative TOML scenario specs in experiments/ (one per
  paper figure / table / ablation / extension) into simulation campaigns
  and writes each results/NAME.csv atomically with a provenance manifest
  sibling (spec hash, seeds, trials, git revision) at
  NAME.manifest.json. Select specs by name (`reproduce fig4 table1`), by
  figure (`--fig 4`), or all of them (`--all`).
  --list             show every spec with its outputs instead of running
  --check            regenerate into a scratch directory and byte-compare
                     against the committed CSVs; any drift exits 11
  --resume           checkpoint each campaign under OUT/.checkpoints and
                     resume finished trials from a previous killed run
  --specs DIR        spec directory (default experiments)
  -o DIR             results directory (default results)

CHECKPOINTING (simulate):
  --checkpoint FILE      save campaign state to FILE after every chunk of
                         trials (atomic rename); panicking trials are
                         skipped and reported instead of killing the run
  --checkpoint-every N   trials per chunk (default 16; 0 = end only)
  resume CKPT            re-run the invocation stored in CKPT, restoring
                         finished trials bit-identically and running the rest

EXIT CODES:
  0 ok | 2 usage | 3 config | 4 solver | 5 trace | 6 checkpoint
  7 campaign | 8 io | 9 degraded (some trials skipped)
  10 verify (conformance invariant violated, or netrun --verify disagreed)
  11 drift (reproduce --check differs from committed results)
  12 net (distributed runtime: conservation violation or transport fault)

COMMON OPTIONS (defaults):
  --items 50  --rho 5  --omega 1.0  --utility step:10  --trials 15  --seed 42
  generate poisson:    --nodes 50 --mu 0.05 --duration 5000
  generate conference: --nodes 50 --days 3
  generate vehicular:  --cabs 50 --duration 1440
";

struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = HashMap::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // Boolean flags take no value.
                if matches!(
                    name,
                    "verbose"
                        | "quick"
                        | "full"
                        | "all"
                        | "list"
                        | "check"
                        | "resume"
                        | "profile"
                        | "prom"
                        | "verify"
                        | "incremental"
                        | "solver-deltas"
                ) {
                    options.insert(name.to_string(), "true".to_string());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{name} requires a value"))?;
                options.insert(name.to_string(), value.clone());
            } else if arg == "-o" {
                let value = it.next().ok_or("-o requires a file path")?;
                options.insert("out".to_string(), value.clone());
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args {
            positional,
            options,
        })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("cannot parse --{name} {v}")),
        }
    }

    /// `Some(parsed)` if the option was given, `None` otherwise.
    fn get_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.options.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("cannot parse --{name} {v}")),
        }
    }

    fn verbose(&self) -> bool {
        self.options.contains_key("verbose")
    }

    fn utility(&self) -> Result<Arc<dyn DelayUtility>, String> {
        let spec = self
            .options
            .get("utility")
            .map(String::as_str)
            .unwrap_or("step:10");
        parse_utility(spec).map_err(|e| e.to_string())
    }
}

fn run() -> Result<(), CliError> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(&raw[1..])?;
    match command.as_str() {
        "generate" => generate(&args),
        "stats" => stats(&args),
        "solve" => solve(&args),
        "simulate" => simulate(&args, &raw),
        "resume" => resume(args.positional.first()),
        "netrun" => netrun(&args),
        "verify" => verify(&args),
        "reproduce" => reproduce(&args, &raw),
        "trace" => trace_cmd(&args),
        "serve" => serve_cmd(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// `impatience resume CKPT`: load the checkpoint and replay the CLI
/// invocation stored inside it. `run_campaign` re-verifies the
/// fingerprint and skips every trial already recorded, so finished work
/// is restored bit-identically and only the remainder executes.
fn resume(path: Option<&String>) -> Result<(), CliError> {
    let path = path.ok_or("resume needs a checkpoint file argument")?;
    let ckpt = CampaignCheckpoint::load(Path::new(path))?;
    if ckpt.cli_args.is_empty() {
        return Err(CliError::Usage(format!(
            "checkpoint {path} stores no CLI invocation; \
             re-run the original command with --checkpoint {path}"
        )));
    }
    let stored = ckpt.cli_args.clone();
    let (command, rest) = stored
        .split_first()
        .unwrap_or_else(|| unreachable!("non-empty cli_args"));
    if command != "simulate" {
        return Err(CliError::Usage(format!(
            "checkpoint {path} stores unsupported command `{command}`"
        )));
    }
    eprintln!(
        "resuming ({}/{} trials done): impatience {}",
        ckpt.completed.len(),
        ckpt.trials,
        stored.join(" ")
    );
    let args = Args::parse(rest)?;
    simulate(&args, &stored)
}

fn generate(args: &Args) -> Result<(), CliError> {
    let kind = args
        .positional
        .first()
        .ok_or("generate needs a kind: poisson | conference | vehicular")?;
    let seed: u64 = args.get("seed", 42)?;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let trace = match kind.as_str() {
        "poisson" => {
            let nodes: usize = args.get("nodes", 50)?;
            let mu: f64 = args.get("mu", 0.05)?;
            let duration: f64 = args.get("duration", 5_000.0)?;
            poisson_homogeneous(nodes, mu, duration, &mut rng)
        }
        "conference" => {
            let cfg = ConferenceConfig {
                nodes: args.get("nodes", 50)?,
                duration: args.get::<f64>("days", 3.0)? * 1_440.0,
                ..ConferenceConfig::default()
            };
            cfg.generate(&mut rng)
        }
        "vehicular" => {
            let cfg = VehicularConfig {
                cabs: args.get("cabs", 50)?,
                duration: args.get("duration", 1_440.0)?,
                ..VehicularConfig::default()
            };
            cfg.generate(&mut rng)
        }
        other => return Err(CliError::Usage(format!("unknown trace kind `{other}`"))),
    };
    let out = args
        .options
        .get("out")
        .ok_or("generate needs an output file (-o FILE)")?;
    // Traces commit atomically like every other artifact: a crash here
    // never leaves a half-written trace that `stats` would half-parse.
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).map_err(|e| CliError::Io(format!("serializing trace: {e}")))?;
    impatience_obs::write_atomic(Path::new(out), &buf)
        .map_err(|e| CliError::Io(format!("cannot write {out}: {e}")))?;
    println!(
        "wrote {} contacts / {} nodes / {:.0} min to {out}",
        trace.len(),
        trace.nodes(),
        trace.duration()
    );
    Ok(())
}

fn load_trace(args: &Args) -> Result<ContactTrace, CliError> {
    let path = args
        .positional
        .first()
        .ok_or("expected a trace file argument")?;
    Ok(read_trace_file(Path::new(path))?)
}

fn stats(args: &Args) -> Result<(), CliError> {
    let trace = load_trace(args)?;
    let s = TraceStats::from_trace(&trace);
    println!("nodes               : {}", trace.nodes());
    println!("duration            : {:.1} min", trace.duration());
    println!("contacts            : {}", trace.len());
    println!("mean pairwise rate  : {:.6} /min", s.rates().mean_rate());
    println!("rate heterogeneity  : CV {:.3}", s.rate_cv());
    println!("mean inter-contact  : {:.2} min", s.mean_intercontact());
    println!(
        "burstiness          : normalized ICT CV {:.3} (≈1 = memoryless)",
        s.normalized_intercontact_cv()
    );
    let counts = trace.contact_counts();
    let (min, max) = (
        counts.iter().min().copied().unwrap_or(0),
        counts.iter().max().copied().unwrap_or(0),
    );
    println!("contacts per node   : min {min}, max {max}");
    Ok(())
}

fn solve(args: &Args) -> Result<(), CliError> {
    let items: usize = args.get("items", 50)?;
    let servers: usize = args.get("servers", 50)?;
    let rho: usize = args.get("rho", 5)?;
    if items == 0 || servers == 0 || rho == 0 {
        return Err("--items, --servers and --rho must all be at least 1".into());
    }
    let mu: f64 = args.get("mu", 0.05)?;
    let omega: f64 = args.get("omega", 1.0)?;
    let clients: usize = args.get("clients", 0)?;
    let utility = args.utility()?;

    let system = if clients > 0 {
        SystemModel::dedicated(clients, servers, rho, mu)
    } else {
        SystemModel::pure_p2p(servers, rho, mu)
    };
    if utility.requires_dedicated() && clients == 0 {
        return Err(CliError::Usage(format!(
            "{} requires a dedicated population; pass --clients N",
            utility.kind()
        )));
    }
    let demand = Popularity::pareto(items, omega).demand_rates(1.0);

    if args.options.contains_key("incremental") {
        return solve_incremental(args, system, demand, utility);
    }

    let opt = if args.verbose() {
        let mut rec = Recorder::new(MemorySink::new());
        let opt = try_greedy_homogeneous_observed(&system, &demand, utility.as_ref(), &mut rec)?;
        if let Some(Event::SolverDone {
            iterations,
            evaluations,
            wall_s,
            ..
        }) = rec
            .sink()
            .events
            .iter()
            .rfind(|e| matches!(e, Event::SolverDone { .. }))
        {
            println!(
                "greedy: {iterations} placements, {evaluations} marginal evaluations, {:.2} ms",
                wall_s * 1e3
            );
        }
        opt
    } else {
        try_greedy_homogeneous(&system, &demand, utility.as_ref())?
    };
    let relaxed = try_relaxed_optimum(&system, &demand, utility.as_ref())?;
    println!(
        "system: |I|={items} |S|={servers} ρ={rho} μ={mu} ω={omega} utility={}",
        utility.kind()
    );
    println!(
        "\n{:>5} {:>10} {:>8} {:>8}",
        "item", "demand", "OPT", "relaxed"
    );
    for i in 0..items.min(15) {
        println!(
            "{i:>5} {:>10.5} {:>8} {:>8.2}",
            demand.rate(i),
            opt.count(i),
            relaxed.x[i]
        );
    }
    if items > 15 {
        println!("  ... ({} more items)", items - 15);
    }
    for (label, counts) in [
        ("OPT", opt),
        ("UNI", uniform(items, servers, rho)),
        ("SQRT", sqrt_proportional(&demand, servers, rho)),
        ("PROP", proportional(&demand, servers, rho)),
        ("DOM", dominant(&demand, servers, rho)),
    ] {
        let w = social_welfare_homogeneous(&system, &demand, utility.as_ref(), &counts.as_f64());
        println!("welfare {label:<5} {w:>12.5} utility/min");
    }
    Ok(())
}

/// `solve --incremental`: replay seeded demand deltas through the
/// incremental solver and a from-scratch greedy side by side, timing
/// both and checking the incremental path at every step — bit-identity
/// in exact mode, certificate soundness in `--stale-eps` mode.
fn solve_incremental(
    args: &Args,
    system: SystemModel,
    demand: DemandRates,
    utility: Arc<dyn DelayUtility>,
) -> Result<(), CliError> {
    let steps: usize = args.get("deltas", 16)?;
    let seed: u64 = args.get("seed", 42)?;
    let stale_eps: Option<f64> = args.get_opt("stale-eps")?;
    if steps == 0 {
        return Err("--deltas must be at least 1".into());
    }
    if let Some(eps) = stale_eps {
        if !eps.is_finite() || eps < 0.0 {
            return Err("--stale-eps must be finite and non-negative".into());
        }
    }
    let items = demand.items();
    let mut solver = DeltaSolver::try_new(system, &demand, Arc::clone(&utility))?;
    if let Some(eps) = stale_eps {
        solver = solver.with_staleness(eps);
    }

    let mut rng = Xoshiro256::seed_from_u64(seed);
    let (mut inc_wall, mut scratch_wall) = (0.0f64, 0.0f64);
    let mut divergences = 0u32;
    for step in 0..steps {
        let delta = [Delta::Demand {
            item: rng.index(items),
            rate: rng.range(0.01, 2.0),
        }];
        let t = std::time::Instant::now();
        let outcome = solver.apply(&delta)?;
        inc_wall += t.elapsed().as_secs_f64();

        let current = DemandRates::new(solver.rates().to_vec());
        let t = std::time::Instant::now();
        let fresh = try_greedy_homogeneous(&system, &current, utility.as_ref())?;
        scratch_wall += t.elapsed().as_secs_f64();

        match outcome {
            DeltaOutcome::CertifiedStale(cert) => {
                let w_fresh = social_welfare_homogeneous(
                    &system,
                    &current,
                    utility.as_ref(),
                    &fresh.as_f64(),
                );
                if w_fresh - cert.stale_welfare > cert.gap + 1e-9 * cert.scale {
                    divergences += 1;
                    eprintln!(
                        "step {step}: unsound certificate — true gap {} over certified {}",
                        w_fresh - cert.stale_welfare,
                        cert.gap
                    );
                }
            }
            _ => {
                if *solver.counts() != fresh {
                    divergences += 1;
                    eprintln!(
                        "step {step}: incremental {:?} != scratch {:?}",
                        solver.counts().counts(),
                        fresh.counts()
                    );
                }
            }
        }
    }

    let stats = solver.stats();
    println!(
        "incremental: {steps} deltas over |I|={items} |S|={} ρ={} utility={}{}",
        system.servers(),
        system.cache_capacity,
        utility.kind(),
        match stale_eps {
            Some(eps) => format!(" (bounded staleness ε={eps})"),
            None => String::new(),
        }
    );
    println!(
        "  delta solves {:>4}   replicas moved {:>6}   rebuilds {}",
        stats.delta_solves, stats.replicas_moved, stats.rebuilds
    );
    if stale_eps.is_some() {
        println!(
            "  certificates {:>4}   reused stale  {:>6}   fell back {}",
            stats.certificates, stats.certified_reuses, stats.certificate_fallbacks
        );
    }
    println!(
        "  wall: incremental {:.3} ms vs scratch {:.3} ms ({:.1}x)",
        inc_wall * 1e3,
        scratch_wall * 1e3,
        scratch_wall / inc_wall.max(1e-12)
    );
    if divergences > 0 {
        return Err(CliError::Verify {
            failed: divergences,
            scenarios: steps,
        });
    }
    println!("  every step checked against a from-scratch solve: ok");
    Ok(())
}

/// Build a [`FaultConfig`] from the `--drop-p`/`--churn-*`/… flags.
/// `None` when no fault flag was given (the clean network).
fn fault_config(args: &Args) -> Result<Option<FaultConfig>, CliError> {
    let mut fc = FaultConfig {
        seed: args.get("fault-seed", 0)?,
        ..FaultConfig::default()
    };
    let p: f64 = args.get("drop-p", 0.0)?;
    if p > 0.0 {
        fc.drop = Some(ContactDrop {
            p,
            mean_burst: args.get("drop-burst", 1.0)?,
        });
    } else if args.options.contains_key("drop-burst") {
        return Err("--drop-burst needs --drop-p > 0".into());
    }
    let up: f64 = args.get("churn-up", 0.0)?;
    let down: f64 = args.get("churn-down", 0.0)?;
    match (up > 0.0, down > 0.0) {
        (true, true) => {
            fc.churn = Some(Churn {
                mean_up: up,
                mean_down: down,
            })
        }
        (false, false) => {}
        _ => {
            return Err("--churn-up and --churn-down must be given together (both > 0)".into());
        }
    }
    let rate: f64 = args.get("cache-fault-rate", 0.0)?;
    if rate > 0.0 {
        fc.cache = Some(CacheFaults { rate });
    }
    fc.truncate_fraction = args.get_opt("truncate")?;
    if fc.is_active() {
        fc.validate()?;
        Ok(Some(fc))
    } else {
        Ok(None)
    }
}

fn simulate(args: &Args, invocation: &[String]) -> Result<(), CliError> {
    if args.options.contains_key("shards") {
        return simulate_sharded(args);
    }
    let trace_file = args.positional.first().cloned().unwrap_or_default();
    let trace = load_trace(args)?;
    let items: usize = args.get("items", 50)?;
    let rho: usize = args.get("rho", 5)?;
    let omega: f64 = args.get("omega", 1.0)?;
    let trials: usize = args.get("trials", 15)?;
    let seed: u64 = args.get("seed", 42)?;
    let utility = args.utility()?;
    // Arm the span probes before any solver runs so `--policy opt`'s
    // allocation solve lands in the profile too. (`profiling`, not
    // `profile`: the demand profile below owns that name.)
    let profiling = args.options.contains_key("profile");
    if profiling {
        impatience_obs::span::enable();
    }
    let policy_name = args
        .options
        .get("policy")
        .map(String::as_str)
        .unwrap_or("qcr");

    let demand = Popularity::pareto(items, omega).demand_rates(1.0);
    let profile = DemandProfile::uniform(items, trace.nodes());
    let stats = TraceStats::from_trace(&trace);
    let nodes = trace.nodes();

    let policy = match policy_name {
        "qcr" => PolicyKind::qcr_default(),
        "qcr-no-routing" => PolicyKind::Qcr(impatience_sim::policy::QcrConfig {
            mandate_routing: false,
            ..Default::default()
        }),
        "passive" => PolicyKind::Passive { replicas: 1.0 },
        "opt" => {
            let hsys = HeterogeneousSystem::pure_p2p(stats.rates().clone(), rho);
            let alloc = greedy_heterogeneous(&hsys, &demand, &profile, utility.as_ref());
            PolicyKind::Static {
                label: "OPT",
                counts: alloc.to_counts(),
            }
        }
        "uni" => PolicyKind::Static {
            label: "UNI",
            counts: uniform(items, nodes, rho),
        },
        "sqrt" => PolicyKind::Static {
            label: "SQRT",
            counts: sqrt_proportional(&demand, nodes, rho),
        },
        "prop" => PolicyKind::Static {
            label: "PROP",
            counts: proportional(&demand, nodes, rho),
        },
        "dom" => PolicyKind::Static {
            label: "DOM",
            counts: dominant(&demand, nodes, rho),
        },
        other => return Err(CliError::Usage(format!("unknown policy `{other}`"))),
    };

    let faults = fault_config(args)?;
    let mut builder = SimConfig::builder(items, rho)
        .demand(demand)
        .profile(profile)
        .utility(utility.clone())
        .bin(60.0)
        .warmup_fraction(0.25);
    if let Some(fc) = faults.clone() {
        builder = builder.faults(fc);
    }
    let config = builder.build();
    let source = ContactSource::trace(trace);
    let verbose = args.verbose();
    let workers: Option<usize> = args.get_opt("workers")?;

    if args.options.contains_key("checkpoint") {
        return campaign(
            args,
            invocation,
            &config,
            &source,
            &policy,
            trials,
            seed,
            &utility,
            &trace_file,
            faults.as_ref(),
        );
    }

    let (agg, stats) = match args.options.get("trace-out") {
        Some(out) => {
            let path = Path::new(out);
            let file = AtomicFile::create(path)
                .map_err(|e| CliError::Io(format!("cannot create {out}: {e}")))?;
            let mut rec = Recorder::new(JsonlSink::new(file));
            let agg = run_trials_observed_with_workers(
                &config, &source, &policy, trials, seed, workers, &mut rec,
            );
            let stats = rec.summary_json();
            let span_wall = if profiling {
                emit_profile(
                    &rec,
                    Some(&path.with_extension("profile.json")),
                    Some(&path.with_extension("prom")),
                )?
            } else {
                None
            };
            rec.into_sink()
                .into_inner()
                .and_then(AtomicFile::commit)
                .map_err(|e| CliError::Io(format!("writing {out}: {e}")))?;

            let mut manifest = Manifest::new("simulate");
            fill_manifest(
                &mut manifest,
                &trace_file,
                out,
                &agg,
                &utility,
                items,
                rho,
                omega,
                trials,
                seed,
                &config,
                faults.as_ref(),
            );
            manifest.stamp_runtime(span_wall);
            manifest.set("stats", stats.clone());
            let mpath = Manifest::sibling_path(path);
            manifest
                .write_to(&mpath)
                .map_err(|e| CliError::Io(format!("cannot write {}: {e}", mpath.display())))?;
            println!("events  → {out}");
            println!("manifest→ {}", mpath.display());
            (agg, Some(stats))
        }
        None if verbose || profiling => {
            // Tallies without the event stream (runs on all workers;
            // per-trial tallies merge deterministically in trial order).
            // --profile rides this path so the .prom-able tallies exist
            // even when nobody asked for the event file.
            let mut rec = Recorder::new(TallySink);
            let agg = run_trials_observed_with_workers(
                &config, &source, &policy, trials, seed, workers, &mut rec,
            );
            if profiling {
                emit_profile(&rec, None, None)?;
            }
            (agg, Some(rec.summary_json()))
        }
        None => {
            let mut rec = Recorder::disabled();
            let agg = run_trials_observed_with_workers(
                &config, &source, &policy, trials, seed, workers, &mut rec,
            );
            (agg, None)
        }
    };

    report(&agg, stats.as_ref(), trials, &utility, verbose);
    Ok(())
}

/// Peak resident set size of this process in kilobytes, from
/// `/proc/self/status` (`None` off Linux or if the field is missing).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `impatience simulate --shards W --nodes N --mu F --duration T`: one
/// trial at a time on the intra-trial sharded engine, its 16 logical
/// shards spread over W worker threads. The contact source is synthetic
/// homogeneous Poisson (sampled streaming per shard lane — no trace file
/// is ever materialized), which is what makes million-node populations
/// with ~10⁹ contacts fit in memory. Results are bit-identical for every
/// W; only the wall clock changes.
fn simulate_sharded(args: &Args) -> Result<(), CliError> {
    if let Some(path) = args.positional.first() {
        return Err(CliError::Usage(format!(
            "--shards runs on a synthetic homogeneous source; drop the trace \
             argument `{path}` and pass --nodes/--mu/--duration instead"
        )));
    }
    for unsupported in ["checkpoint", "trace-out", "workers"] {
        if args.options.contains_key(unsupported) {
            return Err(CliError::Usage(format!(
                "--{unsupported} is not supported with --shards \
                 (parallelism is inside each trial)"
            )));
        }
    }
    let shards: usize = args.get("shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let nodes: usize = args.get("nodes", 10_000)?;
    let mu: f64 = args.get("mu", 0.005)?;
    let duration: f64 = args.get("duration", 3_000.0)?;
    let items: usize = args.get("items", 50)?;
    let rho: usize = args.get("rho", 5)?;
    let omega: f64 = args.get("omega", 1.0)?;
    let trials: usize = args.get("trials", 3)?;
    let seed: u64 = args.get("seed", 42)?;
    let utility = args.utility()?;
    let verbose = args.verbose();
    let profiling = args.options.contains_key("profile");
    if profiling {
        impatience_obs::span::enable();
    }

    let demand = Popularity::pareto(items, omega).demand_rates(1.0);
    let policy_name = args
        .options
        .get("policy")
        .map(String::as_str)
        .unwrap_or("qcr");
    let policy = match policy_name {
        "qcr" => PolicyKind::qcr_default(),
        "qcr-no-routing" => PolicyKind::Qcr(impatience_sim::policy::QcrConfig {
            mandate_routing: false,
            ..Default::default()
        }),
        "passive" => PolicyKind::Passive { replicas: 1.0 },
        "opt" => {
            // The homogeneous greedy optimum — analytic, so it costs the
            // same at 10⁶ nodes as at 50.
            let system = SystemModel::pure_p2p(nodes, rho, mu);
            let counts = try_greedy_homogeneous(&system, &demand, utility.as_ref())?;
            PolicyKind::Static {
                label: "OPT",
                counts,
            }
        }
        "uni" => PolicyKind::Static {
            label: "UNI",
            counts: uniform(items, nodes, rho),
        },
        "sqrt" => PolicyKind::Static {
            label: "SQRT",
            counts: sqrt_proportional(&demand, nodes, rho),
        },
        "prop" => PolicyKind::Static {
            label: "PROP",
            counts: proportional(&demand, nodes, rho),
        },
        "dom" => PolicyKind::Static {
            label: "DOM",
            counts: dominant(&demand, nodes, rho),
        },
        other => {
            return Err(CliError::Usage(format!(
                "unknown policy `{other}` (with --shards: qcr, qcr-no-routing, \
                 passive, opt, uni, sqrt, prop, dom)"
            )))
        }
    };

    let faults = fault_config(args)?;
    let mut builder = SimConfig::builder(items, rho)
        .demand(demand)
        .utility(utility.clone())
        .bin(60.0)
        .warmup_fraction(0.25);
    if let Some(fc) = faults.clone() {
        builder = builder.faults(fc);
    }
    let config = builder.build();
    let source = ContactSource::homogeneous(nodes, mu, duration);

    let agg = run_trials_sharded(&config, &source, &policy, trials, seed, Some(shards))?;

    report(&agg.aggregate, None, trials, &utility, verbose);
    println!(
        "  shard workers         : {:>10} ({LOGICAL_SHARDS} logical shards)",
        shards
    );
    println!("  contacts processed    : {:>10}", agg.contacts_processed);
    let batch_digest = agg
        .event_digests
        .iter()
        .fold(0u64, |h, &d| h.rotate_left(7) ^ d);
    println!("  event digest          : {batch_digest:#018x}");
    if agg.fault_events > 0 {
        println!("  fault events          : {:>10}", agg.fault_events);
    }
    if let Some(kb) = peak_rss_kb() {
        println!("  peak RSS              : {:>10.1} MiB", kb as f64 / 1024.0);
    }
    if profiling {
        emit_profile(&Recorder::disabled(), None, None)?;
    }
    Ok(())
}

/// Contact source for `netrun`: a trace positional, or the synthetic
/// homogeneous family via `--nodes/--mu/--duration`.
fn net_source(args: &Args) -> Result<(ContactSource, usize, String), CliError> {
    match args.positional.first() {
        Some(path) => {
            let trace = read_trace_file(Path::new(path))?;
            let nodes = trace.nodes();
            Ok((ContactSource::trace(trace), nodes, path.clone()))
        }
        None => {
            let nodes: usize = args.get("nodes", 16)?;
            let mu: f64 = args.get("mu", 0.05)?;
            let duration: f64 = args.get("duration", 2_000.0)?;
            let label = format!("poisson n={nodes} mu={mu} T={duration}");
            Ok((
                ContactSource::homogeneous(nodes, mu, duration),
                nodes,
                label,
            ))
        }
    }
}

/// The engine-side fault model for `netrun`: the shared flags from
/// [`fault_config`] plus the message-layer family
/// (`--loss-p/--dup-p/--reorder`) that only the net transport consumes.
fn net_fault_config(args: &Args) -> Result<Option<FaultConfig>, CliError> {
    let mut fc = match fault_config(args)? {
        Some(fc) => fc,
        None => FaultConfig {
            seed: args.get("fault-seed", 0)?,
            ..FaultConfig::default()
        },
    };
    let msg = MsgFaults {
        loss_p: args.get("loss-p", 0.0)?,
        dup_p: args.get("dup-p", 0.0)?,
        reorder_window: args.get("reorder", 0)?,
    };
    if msg.is_active() {
        fc.msg = Some(msg);
    }
    if fc.is_active() {
        fc.validate()?;
        Ok(Some(fc))
    } else {
        Ok(None)
    }
}

/// The [`NetConfig`] for `netrun`, from defaults plus the CLI overrides
/// and the `--kill/--stall` chaos injections.
fn net_run_config(args: &Args) -> Result<NetConfig, CliError> {
    let d = NetConfig::default();
    let mut net = NetConfig {
        window: args.get("window", d.window)?,
        msg_delay: args.get("msg-delay", d.msg_delay)?,
        rto_base: args.get("rto-base", d.rto_base)?,
        rto_cap: args.get("rto-cap", d.rto_cap)?,
        max_attempts: args.get("max-attempts", d.max_attempts)?,
        deadline: args.get_opt("deadline")?,
        max_events: args.get("max-events", 0)?,
        ..d
    };
    if let Some(spec) = args.options.get("kill") {
        let parts: Vec<&str> = spec.split(':').collect();
        let bad = || CliError::Usage(format!("--kill wants T:NODE:DOWN_FOR, got `{spec}`"));
        if parts.len() != 3 {
            return Err(bad());
        }
        net.chaos.push(ChaosEvent {
            t: parts[0].parse().map_err(|_| bad())?,
            node: parts[1].parse().map_err(|_| bad())?,
            kind: ChaosKind::Kill {
                down_for: parts[2].parse().map_err(|_| bad())?,
            },
        });
    }
    if let Some(spec) = args.options.get("stall") {
        let parts: Vec<&str> = spec.split(':').collect();
        let bad = || CliError::Usage(format!("--stall wants T:NODE, got `{spec}`"));
        if parts.len() != 2 {
            return Err(bad());
        }
        net.chaos.push(ChaosEvent {
            t: parts[0].parse().map_err(|_| bad())?,
            node: parts[1].parse().map_err(|_| bad())?,
            kind: ChaosKind::Stall,
        });
    }
    net.validate()?;
    Ok(net)
}

/// The transport/protocol counters and conservation terms of a
/// distributed batch as a Prometheus registry, merged with whatever the
/// recorder tallied.
fn net_registry<S: Sink>(rec: &Recorder<S>, agg: &NetAggregate) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.absorb_recorder(rec);
    let s = &agg.stats;
    let counters: [(&str, &str, u64); 17] = [
        (
            "net_msgs_sent",
            "Frames submitted to an open link",
            s.msgs_sent,
        ),
        (
            "net_msgs_delivered",
            "Frames delivered to a live node",
            s.msgs_delivered,
        ),
        (
            "net_msgs_lost",
            "Frames destroyed by injected loss",
            s.msgs_lost,
        ),
        (
            "net_msgs_duplicated",
            "Extra copies from duplication faults",
            s.msgs_duplicated,
        ),
        (
            "net_transport_closed",
            "Sends or deliveries on a dead link",
            s.transport_closed,
        ),
        ("net_retries", "Protocol retransmissions", s.retries),
        (
            "net_ack_timeouts",
            "Transfers parked after the retry budget",
            s.ack_timeouts,
        ),
        (
            "net_handshake_timeouts",
            "Windows closed without an advert exchange",
            s.handshake_timeouts,
        ),
        (
            "net_handoffs_started",
            "Two-phase mandate transfers initiated",
            s.handoffs_started,
        ),
        (
            "net_handoffs_applied",
            "Custody handoffs applied at the receiver",
            s.handoffs_applied,
        ),
        (
            "net_acks_received",
            "Acks received back at the escrow holder",
            s.acks_received,
        ),
        (
            "net_execs_applied",
            "Mandated copies written by execute transfers",
            s.execs_applied,
        ),
        (
            "net_crashes",
            "Node crashes (churn plus chaos kills)",
            s.crashes,
        ),
        ("net_restarts", "Node restarts from checkpoint", s.restarts),
        (
            "net_stalls",
            "Nodes condemned by the heartbeat supervisor",
            s.stalls,
        ),
        (
            "net_requests_expired",
            "Requests abandoned by the deadline budget",
            s.requests_expired,
        ),
        (
            "net_heartbeats",
            "Heartbeats observed by the supervisor",
            s.heartbeats,
        ),
    ];
    for (name, help, v) in counters {
        reg.counter_add(&format!("impatience_{name}_total"), help, &[], v as f64);
    }
    let c = &agg.conservation;
    for (term, v) in [
        ("minted", c.minted),
        ("executed", c.executed),
        ("discarded", c.discarded),
        ("pooled", c.pooled),
        ("escrowed", c.escrowed),
    ] {
        reg.gauge_set(
            "impatience_net_mandates",
            "Mandate conservation terms at quiesce (minted = sum of the rest)",
            &[("term", term)],
            v as f64,
        );
    }
    reg.gauge_set(
        "impatience_net_degraded_trials",
        "Trials that finished under a supervisor kill or the event cap",
        &[],
        agg.degraded_trials as f64,
    );
    reg
}

/// Result panel for a distributed batch.
fn net_report(agg: &NetAggregate, utility: &Arc<dyn DelayUtility>, source: &str, verbose: bool) {
    let s = &agg.stats;
    let c = &agg.conservation;
    println!(
        "distributed QCR over {} trials (utility {}, source {source}):",
        agg.trials,
        utility.kind()
    );
    println!("  mean observed utility : {:>10.5} /min", agg.mean_rate);
    println!(
        "  5–95% band            : {:>10.5} … {:.5}",
        agg.p5_rate, agg.p95_rate
    );
    println!("  unfulfilled/trial     : {:>10.1}", agg.mean_unfulfilled);
    println!(
        "  messages              : {:>10} sent · {} delivered · {} lost · {} dup",
        s.msgs_sent, s.msgs_delivered, s.msgs_lost, s.msgs_duplicated
    );
    println!(
        "  retries/timeouts      : {:>10} retries · {} ack · {} handshake",
        s.retries, s.ack_timeouts, s.handshake_timeouts
    );
    println!(
        "  mandate two-phase     : {:>10} handoffs · {} acks · {} executes",
        s.handoffs_started, s.acks_received, s.execs_applied
    );
    println!(
        "  conservation          : {} minted = {} executed + {} discarded + {} pooled + {} escrowed",
        c.minted, c.executed, c.discarded, c.pooled, c.escrowed
    );
    if verbose || s.crashes + s.stalls + s.requests_expired > 0 {
        println!(
            "  churn/deadline        : {:>10} crashes · {} restarts · {} condemned · {} expired",
            s.crashes, s.restarts, s.stalls, s.requests_expired
        );
    }
    if agg.degraded_trials > 0 {
        println!("  degraded trials       : {:>10}", agg.degraded_trials);
    }
    if verbose {
        println!("  workers               : {:>10}", agg.workers);
        println!("  wall time             : {:>10.3} s", agg.wall_s);
    }
}

/// `impatience netrun`: run QCR on the distributed message-passing
/// kernel (`impatience-net`) — independent node tasks, a typed
/// five-message protocol, an unreliable transport, two-phase acked
/// mandate transfers, and an exact conservation audit at quiesce.
/// `--verify` switches to the differential mode instead.
fn netrun(args: &Args) -> Result<(), CliError> {
    if args.options.contains_key("verify") {
        return netrun_verify(args);
    }
    let (source, nodes, source_label) = net_source(args)?;
    let items: usize = args.get("items", 20)?;
    let rho: usize = args.get("rho", 4)?;
    let omega: f64 = args.get("omega", 1.0)?;
    let trials: usize = args.get("trials", 10)?;
    let seed: u64 = args.get("seed", 42)?;
    let workers: Option<usize> = args.get_opt("workers")?;
    let utility = args.utility()?;
    let verbose = args.verbose();

    let demand = Popularity::pareto(items, omega).demand_rates(1.0);
    let mut builder = SimConfig::builder(items, rho)
        .demand(demand)
        .profile(DemandProfile::uniform(items, nodes))
        .utility(utility.clone())
        .bin(60.0)
        .warmup_fraction(0.25);
    let faults = net_fault_config(args)?;
    if let Some(fc) = faults.clone() {
        builder = builder.faults(fc);
    }
    let config = builder.build();
    let net = net_run_config(args)?;

    let agg = match args.options.get("trace-out") {
        Some(out) => {
            let path = Path::new(out);
            let file = AtomicFile::create(path)
                .map_err(|e| CliError::Io(format!("cannot create {out}: {e}")))?;
            let mut rec = Recorder::new(JsonlSink::new(file));
            let agg =
                run_net_trials_observed(&config, &source, &net, trials, seed, workers, &mut rec)?;
            let reg = net_registry(&rec, &agg);
            rec.into_sink()
                .into_inner()
                .and_then(AtomicFile::commit)
                .map_err(|e| CliError::Io(format!("writing {out}: {e}")))?;
            let prom = path.with_extension("prom");
            reg.write_prom(&prom)
                .map_err(|e| CliError::Io(format!("cannot write {}: {e}", prom.display())))?;

            let mut manifest = Manifest::new("netrun");
            manifest.set("source", source_label.as_str());
            manifest.set("trials", trials as u64);
            manifest.set("base_seed", seed);
            manifest.set("mean_rate", agg.mean_rate);
            manifest.set("degraded_trials", agg.degraded_trials as u64);
            manifest.set("msgs_sent", agg.stats.msgs_sent);
            manifest.set("msgs_lost", agg.stats.msgs_lost);
            manifest.set("retries", agg.stats.retries);
            manifest.set("mandates_minted", agg.conservation.minted);
            let mpath = Manifest::sibling_path(path);
            manifest
                .write_to(&mpath)
                .map_err(|e| CliError::Io(format!("cannot write {}: {e}", mpath.display())))?;
            println!("events  → {out}");
            println!("metrics → {}", prom.display());
            println!("manifest→ {}", mpath.display());
            agg
        }
        None => run_net_trials_observed(
            &config,
            &source,
            &net,
            trials,
            seed,
            workers,
            &mut Recorder::disabled(),
        )?,
    };

    net_report(&agg, &utility, &source_label, verbose);
    if agg.degraded_trials > 0 {
        return Err(CliError::NetDegraded {
            degraded: agg.degraded_trials,
            trials,
        });
    }
    Ok(())
}

/// One cell of the `netrun --verify` differential panel.
struct NetScenario {
    name: &'static str,
    utility: &'static str,
    nodes: usize,
    mu: f64,
    items: usize,
    rho: usize,
    omega: f64,
    dedicated: Option<usize>,
}

impl NetScenario {
    fn build(&self, duration: f64) -> Result<(SimConfig, ContactSource), CliError> {
        let utility = parse_utility(self.utility).map_err(|e| CliError::Usage(e.to_string()))?;
        let mut builder = SimConfig::builder(self.items, self.rho)
            .demand(Popularity::pareto(self.items, self.omega).demand_rates(1.0))
            .utility(utility)
            .bin(60.0)
            .warmup_fraction(0.25);
        if let Some(servers) = self.dedicated {
            builder = builder.dedicated_servers(servers);
        }
        Ok((
            builder.build(),
            ContactSource::homogeneous(self.nodes, self.mu, duration),
        ))
    }
}

/// The clean-transport differential panel: utility families ×
/// populations × contact regimes, every cell run through both runtimes
/// on paired seeds.
#[rustfmt::skip]
const NET_SCENARIOS: [NetScenario; 10] = [
    NetScenario { name: "step10-small",  utility: "step:10", nodes: 10, mu: 0.10, items: 10, rho: 2, omega: 1.0, dedicated: None },
    NetScenario { name: "step25-mid",    utility: "step:25", nodes: 16, mu: 0.05, items: 12, rho: 3, omega: 1.0, dedicated: None },
    NetScenario { name: "exp-fast",      utility: "exp:0.1", nodes: 12, mu: 0.10, items: 10, rho: 2, omega: 1.0, dedicated: None },
    NetScenario { name: "exp-slow",      utility: "exp:0.02", nodes: 20, mu: 0.04, items: 16, rho: 4, omega: 1.0, dedicated: None },
    NetScenario { name: "power-0.5",     utility: "power:0.5", nodes: 12, mu: 0.08, items: 10, rho: 2, omega: 1.0, dedicated: None },
    NetScenario { name: "neglog-ded",    utility: "neglog", nodes: 12, mu: 0.08, items: 10, rho: 2, omega: 1.0, dedicated: Some(4) },
    NetScenario { name: "flat-demand",   utility: "step:10", nodes: 14, mu: 0.06, items: 12, rho: 3, omega: 0.5, dedicated: None },
    NetScenario { name: "skewed-demand", utility: "step:10", nodes: 14, mu: 0.06, items: 12, rho: 3, omega: 2.0, dedicated: None },
    NetScenario { name: "dedicated",     utility: "step:10", nodes: 16, mu: 0.08, items: 10, rho: 3, omega: 1.0, dedicated: Some(4) },
    NetScenario { name: "dense",         utility: "step:10", nodes: 24, mu: 0.12, items: 8, rho: 2, omega: 1.0, dedicated: None },
];

/// `impatience netrun --verify [--quick]`: run every clean-transport
/// scenario through both the distributed kernel and the engine on paired
/// seeds and require statistical agreement, then sweep message loss and
/// require every run to terminate with conservation intact.
fn netrun_verify(args: &Args) -> Result<(), CliError> {
    let quick = args.options.contains_key("quick");
    let seed: u64 = args.get("seed", 42)?;
    let z: f64 = args.get("z", 3.5)?;
    let (trials, duration) = if quick { (4usize, 900.0) } else { (8, 2_000.0) };
    let net = NetConfig::default();

    println!("netrun --verify: distributed runtime vs engine on paired seeds");
    println!(
        "({} scenarios × {trials} trials, z = {z}, horizon {duration} min)",
        NET_SCENARIOS.len()
    );
    println!(
        "{:<14} {:>11} {:>12} {:>10} {:>10}  verdict",
        "scenario", "engine", "distributed", "diff", "budget"
    );
    let mut failed = 0;
    let mut clean_rate = f64::NAN;
    for (i, s) in NET_SCENARIOS.iter().enumerate() {
        let (config, source) = s.build(duration)?;
        let cmp = net_vs_engine(
            &config,
            &source,
            &net,
            trials,
            seed.wrapping_add(i as u64 * 1_000),
            z,
        )?;
        let ok = cmp.agrees();
        if i == 0 {
            clean_rate = cmp.estimate;
        }
        println!(
            "{:<14} {:>11.5} {:>12.5} {:>+10.2e} {:>10.2e}  {}",
            s.name,
            cmp.reference,
            cmp.estimate,
            cmp.difference(),
            cmp.half_width + cmp.allowance,
            if ok { "agree" } else { "MISMATCH" }
        );
        if !ok {
            failed += 1;
        }
    }

    println!();
    println!("lossy sweep on {} ({trials} trials each; every run must terminate with the conservation audit intact):", NET_SCENARIOS[0].name);
    println!(
        "{:<6} {:>11} {:>7} {:>9} {:>9} {:>9}",
        "loss", "welfare", "ratio", "retries", "lost", "degraded"
    );
    for loss in [0.05, 0.10, 0.20] {
        let (mut config, source) = NET_SCENARIOS[0].build(duration)?;
        config.faults = Some(FaultConfig {
            seed: 7,
            msg: Some(MsgFaults {
                loss_p: loss,
                dup_p: loss / 5.0,
                reorder_window: 3,
            }),
            ..FaultConfig::default()
        });
        let agg = run_net_trials_observed(
            &config,
            &source,
            &net,
            trials,
            seed,
            None,
            &mut Recorder::disabled(),
        )?;
        println!(
            "{:<6} {:>11.5} {:>7.3} {:>9} {:>9} {:>9}",
            format!("{:.0}%", loss * 100.0),
            agg.mean_rate,
            agg.mean_rate / clean_rate,
            agg.stats.retries,
            agg.stats.msgs_lost,
            agg.degraded_trials
        );
    }

    if failed > 0 {
        return Err(CliError::NetVerify {
            failed,
            scenarios: NET_SCENARIOS.len(),
        });
    }
    println!();
    println!(
        "all {} scenarios agree; lossy sweep conserved at every rate",
        NET_SCENARIOS.len()
    );
    Ok(())
}

/// `impatience verify [--quick|--full]`: run the seeded scenario
/// conformance matrix from the oracle crate and fail (exit 10) on any
/// invariant violation. Quick mode — the default and the CI gate —
/// covers the solver-side invariants plus short determinism trials;
/// `--full` adds the Monte-Carlo differential checks (analytic vs
/// simulated welfare, continuous vs discrete engine duality).
/// `verify --solver-deltas`: only the `delta_vs_scratch` differential
/// sweep, reported to stdout; any violation exits 10.
fn verify_solver_deltas(args: &Args) -> Result<(), CliError> {
    let quick = args.options.contains_key("quick");
    let seed: u64 = args.get("seed", 42)?;
    let report = delta_vs_scratch(seed, quick);
    print!("{}", report.describe());
    if !report.ok() {
        let failed = (report.exact_mismatches
            + report.brute_mismatches
            + report.certificate_violations) as u32
            + u32::from(!report.clt_ok());
        return Err(CliError::Verify {
            failed,
            scenarios: report.cases as usize,
        });
    }
    Ok(())
}

fn verify(args: &Args) -> Result<(), CliError> {
    if args.options.contains_key("solver-deltas") {
        return verify_solver_deltas(args);
    }
    let quick = args.options.contains_key("quick");
    let full = args.options.contains_key("full");
    if quick && full {
        return Err("--quick and --full are mutually exclusive".into());
    }
    let seed: u64 = args.get("seed", 42)?;
    let profile = args.options.contains_key("profile");
    if profile {
        impatience_obs::span::enable();
    }
    let mut opts = if full {
        MatrixOptions::full(seed)
    } else {
        MatrixOptions::quick(seed)
    };
    if let Some(limit) = args.get_opt("limit")? {
        opts = opts.with_limit(limit);
    }
    let out = args
        .options
        .get("out")
        .cloned()
        .unwrap_or_else(|| "conformance.jsonl".to_string());
    let report_path = PathBuf::from(&out);
    let profile_paths = (
        report_path.with_extension("profile.json"),
        report_path.with_extension("prom"),
    );

    // Scenario progress streams through the Recorder either way: into a
    // JSONL event file when asked for, or into in-memory tallies whose
    // summary lands in the manifest.
    let (records, stats, span_wall) = match args.options.get("trace-out") {
        Some(events) => {
            let path = Path::new(events);
            let file = AtomicFile::create(path)
                .map_err(|e| CliError::Io(format!("cannot create {events}: {e}")))?;
            let mut rec = Recorder::new(JsonlSink::new(file));
            let records = run_matrix(&opts, &mut rec);
            let stats = rec.summary_json();
            let span_wall = if profile {
                emit_profile(&rec, Some(&profile_paths.0), Some(&profile_paths.1))?
            } else {
                None
            };
            rec.into_sink()
                .into_inner()
                .and_then(AtomicFile::commit)
                .map_err(|e| CliError::Io(format!("writing {events}: {e}")))?;
            println!("events  → {events}");
            (records, stats, span_wall)
        }
        None => {
            let mut rec = Recorder::new(TallySink);
            let records = run_matrix(&opts, &mut rec);
            let stats = rec.summary_json();
            let span_wall = if profile {
                emit_profile(&rec, Some(&profile_paths.0), Some(&profile_paths.1))?
            } else {
                None
            };
            (records, stats, span_wall)
        }
    };

    write_report(&report_path, &records)
        .map_err(|e| CliError::Io(format!("cannot write {out}: {e}")))?;

    let scenarios = records.len();
    let runnable = records.iter().filter(|r| r.ran()).count();
    let (mut passed, mut failed, mut skipped) = (0u32, 0u32, 0u32);
    for r in &records {
        passed += r.passed();
        failed += r.failed();
        skipped += r.skipped();
    }
    let wall_s: f64 = records.iter().map(|r| r.wall_s).sum();

    let mut manifest = Manifest::new("verify");
    manifest.set("mode", if full { "full" } else { "quick" });
    manifest.set("base_seed", seed);
    manifest.set("report", out.as_str());
    manifest.set("scenarios", scenarios as u64);
    manifest.set("runnable", runnable as u64);
    manifest.set("checks_passed", u64::from(passed));
    manifest.set("checks_failed", u64::from(failed));
    manifest.set("checks_skipped", u64::from(skipped));
    manifest.set("wall_s", wall_s);
    manifest.stamp_runtime(span_wall);
    manifest.set("stats", stats);
    let mpath = Manifest::sibling_path(&report_path);
    manifest
        .write_to(&mpath)
        .map_err(|e| CliError::Io(format!("cannot write {}: {e}", mpath.display())))?;

    print!("{}", summary_table(&records));
    println!("report  → {out}");
    println!("manifest→ {}", mpath.display());
    for r in &records {
        for check in r.results.iter().filter(|c| c.status == CheckStatus::Fail) {
            eprintln!(
                "violation: {} / {}: {} (value {:.3e})",
                r.name, check.name, check.detail, check.value
            );
        }
    }
    if failed > 0 {
        return Err(CliError::Verify { failed, scenarios });
    }
    Ok(())
}

/// Shared by the `--profile` handlers: drain the span tree, print the
/// phase report, and optionally write it as `.profile.json` and as
/// Prometheus text exposition (span series plus the recorder's counters
/// and delay histograms). Returns the summed root wall time for the
/// manifest's `span_wall_s` cross-reference, or `None` when nothing was
/// recorded.
fn emit_profile<S: Sink>(
    rec: &Recorder<S>,
    json_path: Option<&Path>,
    prom_path: Option<&Path>,
) -> Result<Option<f64>, CliError> {
    let report = impatience_obs::span::take_report();
    if report.is_empty() {
        println!("profile: no spans recorded");
        return Ok(None);
    }
    print!("{}", report.render());
    if let Some(path) = json_path {
        let mut text = report.to_json().to_string();
        text.push('\n');
        impatience_obs::write_atomic(path, text.as_bytes())
            .map_err(|e| CliError::Io(format!("cannot write {}: {e}", path.display())))?;
        println!("profile → {}", path.display());
    }
    if let Some(path) = prom_path {
        let mut registry = MetricsRegistry::new();
        registry.absorb_recorder(rec);
        registry.absorb_phase_report(&report);
        registry
            .write_prom(path)
            .map_err(|e| CliError::Io(format!("cannot write {}: {e}", path.display())))?;
        println!("metrics → {}", path.display());
    }
    Ok(Some(report.total_wall_s))
}

/// `impatience trace <summarize|diff|export>`: offline analysis of the
/// JSONL event traces that `simulate`, `verify`, and `reproduce` write
/// with `--trace-out`. Parsing is lenient — unreadable lines are counted,
/// not fatal — so a truncated trace from a killed run still summarizes.
fn trace_cmd(args: &Args) -> Result<(), CliError> {
    let sub = args
        .positional
        .first()
        .ok_or("trace needs a subcommand: summarize | diff | export")?;
    let load = |path: &str| -> Result<TraceSummary, CliError> {
        TraceSummary::from_file(Path::new(path))
            .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))
    };
    match sub.as_str() {
        "summarize" => {
            let path = args
                .positional
                .get(1)
                .ok_or("trace summarize needs a JSONL trace file")?;
            let top: usize = args.get("top", 5)?;
            print!("{}", load(path)?.render(top));
            Ok(())
        }
        "diff" => {
            let a = args
                .positional
                .get(1)
                .ok_or("trace diff needs two JSONL trace files")?;
            let b = args
                .positional
                .get(2)
                .ok_or("trace diff needs two JSONL trace files")?;
            print!("{}", render_diff(&load(a)?, &load(b)?, a, b));
            Ok(())
        }
        "export" => {
            let path = args
                .positional
                .get(1)
                .ok_or("trace export needs a JSONL trace file")?;
            if !args.options.contains_key("prom") {
                return Err("trace export needs --prom (the only export format)".into());
            }
            let registry = load(path)?.to_registry();
            match args.options.get("out") {
                Some(out) => {
                    registry
                        .write_prom(Path::new(out))
                        .map_err(|e| CliError::Io(format!("cannot write {out}: {e}")))?;
                    println!("metrics → {out}");
                }
                None => print!("{}", registry.render()),
            }
            Ok(())
        }
        "lint-prom" => {
            let path = args
                .positional
                .get(1)
                .ok_or("trace lint-prom needs a Prometheus text file")?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
            let samples = parse_prometheus(&text).map_err(|(line, msg)| {
                CliError::Trace(TraceError::Format {
                    line,
                    message: format!("{path}: not valid Prometheus exposition: {msg}"),
                })
            })?;
            let families: std::collections::BTreeSet<&str> = samples
                .iter()
                .map(|s| {
                    s.name
                        .strip_suffix("_bucket")
                        .or_else(|| s.name.strip_suffix("_sum"))
                        .or_else(|| s.name.strip_suffix("_count"))
                        .unwrap_or(&s.name)
                })
                .collect();
            println!(
                "{path}: ok — {} sample(s) across {} metric famil{}",
                samples.len(),
                families.len(),
                if families.len() == 1 { "y" } else { "ies" }
            );
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown trace subcommand `{other}` (summarize | diff | export | lint-prom)"
        ))),
    }
}

/// `impatience serve`: run the allocation-as-a-service HTTP server until
/// the process is killed. The bound address is printed on stdout and
/// written to `<data-dir>/serve.addr`, so scripts can poll for
/// readiness; campaign jobs checkpoint continuously, so a killed server
/// resumes its queue bit-identically on the next start.
fn serve_cmd(args: &Args) -> Result<(), CliError> {
    if !args.positional.is_empty() {
        return Err(CliError::Usage(format!(
            "serve takes no positional arguments (got `{}`)",
            args.positional[0]
        )));
    }
    let config = ServeConfig {
        addr: args
            .options
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7199".to_string()),
        data_dir: PathBuf::from(
            args.options
                .get("data-dir")
                .map(String::as_str)
                .unwrap_or("serve-data"),
        ),
        queue_cap: args.get("queue", 32)?,
        http_threads: args.get("http-threads", 8)?,
        solver_pool_per_key: args.get("solver-pool", 8)?,
    };
    if config.queue_cap == 0 || config.http_threads == 0 {
        return Err("serve needs --queue >= 1 and --http-threads >= 1".into());
    }
    let data_dir = config.data_dir.clone();
    let server = Server::start(config).map_err(|e| CliError::Io(e.message()))?;
    println!("impatience serve listening on {}", server.url());
    println!(
        "  data dir  {}  (address file: {})",
        data_dir.display(),
        data_dir.join("serve.addr").display()
    );
    println!("  endpoints /healthz /metrics /v1/solve /v1/campaigns /v1/artifacts");
    // Serve until killed. Recovery on the next start replays the job
    // queue from the persisted specs and checkpoints.
    loop {
        std::thread::park();
    }
}

/// What one `reproduce` invocation did, across every selected spec.
#[derive(Default)]
struct ReproOutcome {
    specs: usize,
    artifacts: usize,
    trials_total: usize,
    skipped: Vec<(String, String)>,
    drifted: usize,
    checked: usize,
}

/// `impatience reproduce`: compile the declarative TOML specs in
/// `experiments/` into simulation campaigns and write every figure's
/// CSV — with a provenance manifest sibling — under `results/`.
/// `--check` regenerates into a scratch directory, byte-compares
/// against the committed CSVs, and exits 11 on any drift; `--resume`
/// checkpoints each campaign so a killed run restarts where it stopped.
fn reproduce(args: &Args, invocation: &[String]) -> Result<(), CliError> {
    let specs_dir = args
        .options
        .get("specs")
        .map(String::as_str)
        .unwrap_or("experiments");
    let profile = args.options.contains_key("profile");
    if profile {
        impatience_obs::span::enable();
    }
    let compile_span = impatience_obs::span!("spec.compile");
    let registry = Registry::load_dir(Path::new(specs_dir))?;
    compile_span.close();

    let list = args.options.contains_key("list");
    let selected: Vec<&Spec> = if let Some(fig) = args.get_opt::<u32>("fig")? {
        registry.by_figure(fig)?
    } else if !args.positional.is_empty() {
        registry.by_names(&args.positional)?
    } else if args.options.contains_key("all") || list {
        registry.all().iter().collect()
    } else {
        return Err(
            "reproduce needs spec names, --fig N, or --all (--list shows what is available)".into(),
        );
    };

    if list {
        println!(
            "{:<18} {:>3}  {:<15} {:>5} {:>6}  outputs",
            "spec", "fig", "kind", "cells", "trials"
        );
        for spec in &selected {
            let plan = spec.plan()?;
            let fig = spec
                .figure
                .map_or_else(|| "-".to_string(), |f| f.to_string());
            let outputs: Vec<String> = plan.outputs.iter().map(|o| format!("{o}.csv")).collect();
            println!(
                "{:<18} {:>3}  {:<15} {:>5} {:>6}  {}",
                spec.name,
                fig,
                spec.kind.name(),
                plan.cells.len(),
                plan.trials,
                outputs.join(" ")
            );
        }
        return Ok(());
    }

    let check = args.options.contains_key("check");
    let baseline_dir = PathBuf::from(
        args.options
            .get("out")
            .map(String::as_str)
            .unwrap_or("results"),
    );
    // --check runs into a scratch directory so a drifted regeneration
    // can never clobber the committed baselines it is judging.
    let run_dir = if check {
        baseline_dir.join(".check")
    } else {
        baseline_dir.clone()
    };
    let checkpoint_dir = args
        .options
        .contains_key("resume")
        .then(|| run_dir.join(".checkpoints"));
    let workers: Option<usize> = args.get_opt("workers")?;
    let verbose = args.verbose();

    let outcome = match args.options.get("trace-out") {
        Some(out) => {
            let path = Path::new(out);
            let file = AtomicFile::create(path)
                .map_err(|e| CliError::Io(format!("cannot create {out}: {e}")))?;
            let mut rec = Recorder::new(JsonlSink::new(file));
            let outcome = reproduce_run(
                &selected,
                &run_dir,
                &baseline_dir,
                check,
                checkpoint_dir,
                workers,
                invocation,
                profile,
                &mut rec,
            );
            rec.into_sink()
                .into_inner()
                .and_then(AtomicFile::commit)
                .map_err(|e| CliError::Io(format!("writing {out}: {e}")))?;
            println!("events  → {out}");
            outcome?
        }
        None if verbose || profile => {
            // --profile rides the tally path so the per-spec .prom has
            // recorder counters to absorb alongside the span tree.
            let mut rec = Recorder::new(TallySink);
            reproduce_run(
                &selected,
                &run_dir,
                &baseline_dir,
                check,
                checkpoint_dir,
                workers,
                invocation,
                profile,
                &mut rec,
            )?
        }
        None => {
            let mut rec = Recorder::disabled();
            reproduce_run(
                &selected,
                &run_dir,
                &baseline_dir,
                check,
                checkpoint_dir,
                workers,
                invocation,
                profile,
                &mut rec,
            )?
        }
    };

    if check {
        let _ = std::fs::remove_dir_all(&run_dir);
        if outcome.drifted > 0 {
            return Err(CliError::Drift {
                drifted: outcome.drifted,
                checked: outcome.checked,
            });
        }
        println!(
            "check ok: {} artifact(s) byte-identical to {}/",
            outcome.checked,
            baseline_dir.display()
        );
    } else {
        println!(
            "reproduced {} spec(s), {} artifact(s) → {}/",
            outcome.specs,
            outcome.artifacts,
            run_dir.display()
        );
    }
    if !outcome.skipped.is_empty() {
        for (cell, msg) in &outcome.skipped {
            eprintln!("warning: {cell} skipped: {msg}");
        }
        return Err(CliError::TrialsSkipped {
            skipped: outcome.skipped.len(),
            trials: outcome.trials_total,
        });
    }
    Ok(())
}

/// The sink-generic body of `reproduce`: run every selected spec,
/// collect artifacts and skipped trials, and (in check mode) compare
/// each regenerated CSV against its committed baseline.
#[allow(clippy::too_many_arguments)]
fn reproduce_run<S: impatience_obs::Sink>(
    selected: &[&Spec],
    run_dir: &Path,
    baseline_dir: &Path,
    check: bool,
    checkpoint_dir: Option<PathBuf>,
    workers: Option<usize>,
    invocation: &[String],
    profile: bool,
    rec: &mut Recorder<S>,
) -> Result<ReproOutcome, CliError> {
    let mut outcome = ReproOutcome::default();
    for spec in selected {
        println!("── {} — {}", spec.name, spec.title);
        let plan = spec.plan()?;
        outcome.trials_total += plan.trials * plan.cells.len().max(1);
        let mut ctx = ExecContext {
            out_dir: run_dir.to_path_buf(),
            checkpoint_dir: checkpoint_dir.clone(),
            workers,
            cli_args: invocation.to_vec(),
            quiet: check,
            rec,
            progress: Progress::new(&spec.name, plan.cells.len() as u64),
        };
        let report = run_spec(spec, &mut ctx)?;
        ctx.progress.finish();
        // One profile per spec, drained right after it ran so the next
        // spec starts from an empty span tree. Named after the spec's
        // first artifact: results/fig2_alloc_exponent.{profile.json,prom}.
        if profile {
            let stem = report.artifacts.first();
            let json_path = stem.map(|p| p.with_extension("profile.json"));
            let prom_path = stem.map(|p| p.with_extension("prom"));
            emit_profile(ctx.rec, json_path.as_deref(), prom_path.as_deref())?;
        }
        outcome.specs += 1;
        outcome.artifacts += report.artifacts.len();
        for (cell, msg) in report.skipped {
            outcome.skipped.push((format!("{}:{cell}", spec.name), msg));
        }
        if check {
            for artifact in &report.artifacts {
                let name = artifact
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let baseline = baseline_dir.join(&name);
                outcome.checked += 1;
                match impatience_exp::check::compare(&baseline, artifact)? {
                    CheckOutcome::Match => println!("  check {name} … ok"),
                    CheckOutcome::MissingBaseline => {
                        outcome.drifted += 1;
                        println!("  check {name} … MISSING baseline {}", baseline.display());
                    }
                    CheckOutcome::Drift {
                        first_line,
                        expected,
                        actual,
                    } => {
                        outcome.drifted += 1;
                        println!("  check {name} … DRIFT at line {first_line}");
                        if let Some(e) = expected {
                            println!("    committed  : {e}");
                        }
                        if let Some(a) = actual {
                            println!("    regenerated: {a}");
                        }
                    }
                }
            }
        }
    }
    // An empty checkpoint directory means every campaign finished and
    // cleaned up after itself.
    if let Some(dir) = checkpoint_dir {
        let _ = std::fs::remove_dir(dir);
    }
    Ok(outcome)
}

/// The checkpointed campaign path of `simulate`: trials run behind a
/// panic barrier (skip-and-report), progress commits to the checkpoint
/// file after every chunk, and `resume` picks up exactly where a killed
/// process stopped.
#[allow(clippy::too_many_arguments)]
fn campaign(
    args: &Args,
    invocation: &[String],
    config: &SimConfig,
    source: &ContactSource,
    policy: &PolicyKind,
    trials: usize,
    seed: u64,
    utility: &Arc<dyn DelayUtility>,
    trace_file: &str,
    faults: Option<&FaultConfig>,
) -> Result<(), CliError> {
    let ckpt_path = PathBuf::from(args.options.get("checkpoint").cloned().unwrap_or_default());
    let options = CampaignOptions {
        checkpoint_path: Some(ckpt_path.clone()),
        checkpoint_every: args.get("checkpoint-every", 16)?,
        workers: args.get_opt("workers")?,
        // Undocumented test hook: die after N chunks as if killed.
        abort_after_chunks: args.get_opt("abort-after-chunks")?,
        cli_args: invocation.to_vec(),
    };
    let verbose = args.verbose();
    let profile = args.options.contains_key("profile");

    let (outcome, stats): (CampaignOutcome, Option<Json>) = match args.options.get("trace-out") {
        Some(out) => {
            let path = Path::new(out);
            let file = AtomicFile::create(path)
                .map_err(|e| CliError::Io(format!("cannot create {out}: {e}")))?;
            let mut rec = Recorder::new(JsonlSink::new(file));
            let outcome = run_campaign(config, source, policy, trials, seed, &options, &mut rec)?;
            let stats = rec.summary_json();
            let span_wall = if profile {
                emit_profile(
                    &rec,
                    Some(&path.with_extension("profile.json")),
                    Some(&path.with_extension("prom")),
                )?
            } else {
                None
            };
            rec.into_sink()
                .into_inner()
                .and_then(AtomicFile::commit)
                .map_err(|e| CliError::Io(format!("writing {out}: {e}")))?;

            let mut manifest = Manifest::new("campaign");
            fill_manifest(
                &mut manifest,
                trace_file,
                out,
                &outcome.aggregate,
                utility,
                config.items,
                config.rho,
                args.get("omega", 1.0)?,
                trials,
                seed,
                config,
                faults,
            );
            manifest.set("checkpoint", ckpt_path.display().to_string());
            manifest.set("trials_resumed", outcome.resumed as u64);
            manifest.set("trials_executed", outcome.executed as u64);
            manifest.set("trials_skipped", outcome.skipped.len() as u64);
            manifest.stamp_runtime(span_wall);
            manifest.set("stats", stats.clone());
            let mpath = Manifest::sibling_path(path);
            manifest
                .write_to(&mpath)
                .map_err(|e| CliError::Io(format!("cannot write {}: {e}", mpath.display())))?;
            println!("events  → {out}");
            println!("manifest→ {}", mpath.display());
            (outcome, Some(stats))
        }
        None if verbose || profile => {
            let mut rec = Recorder::new(TallySink);
            let outcome = run_campaign(config, source, policy, trials, seed, &options, &mut rec)?;
            let stats = rec.summary_json();
            if profile {
                emit_profile(&rec, None, None)?;
            }
            (outcome, Some(stats))
        }
        None => {
            let mut rec = Recorder::disabled();
            let outcome = run_campaign(config, source, policy, trials, seed, &options, &mut rec)?;
            (outcome, None)
        }
    };

    if outcome.resumed > 0 {
        println!(
            "resumed {} trial(s) from checkpoint, executed {} this run",
            outcome.resumed, outcome.executed
        );
    }
    println!("checkpoint → {}", ckpt_path.display());
    for (k, msg) in &outcome.skipped {
        eprintln!("warning: trial {k} skipped: {msg}");
    }
    report(&outcome.aggregate, stats.as_ref(), trials, utility, verbose);
    if !outcome.skipped.is_empty() {
        return Err(CliError::TrialsSkipped {
            skipped: outcome.skipped.len(),
            trials,
        });
    }
    Ok(())
}

/// The manifest fields shared by plain and campaign simulate runs.
#[allow(clippy::too_many_arguments)]
fn fill_manifest(
    manifest: &mut Manifest,
    trace_file: &str,
    events_file: &str,
    agg: &TrialAggregate,
    utility: &Arc<dyn DelayUtility>,
    items: usize,
    rho: usize,
    omega: f64,
    trials: usize,
    seed: u64,
    config: &SimConfig,
    faults: Option<&FaultConfig>,
) {
    manifest.set("trace", trace_file);
    manifest.set("events_file", events_file);
    manifest.set("policy", agg.label.as_str());
    manifest.set("utility", utility.kind().to_string());
    manifest.set("items", items as u64);
    manifest.set("rho", rho as u64);
    manifest.set("omega", omega);
    manifest.set("trials", trials as u64);
    manifest.set("base_seed", seed);
    manifest.set("warmup_fraction", config.warmup_fraction);
    manifest.set(
        "faults",
        faults.map_or_else(|| "none".to_string(), FaultConfig::summary),
    );
    manifest.set("workers", agg.workers as u64);
    manifest.set("wall_s", agg.wall_s);
    manifest.set("mean_trial_wall_s", agg.mean_trial_wall_s);
    manifest.set("worker_utilization", agg.worker_utilization);
}

fn report(
    agg: &TrialAggregate,
    stats: Option<&Json>,
    trials: usize,
    utility: &Arc<dyn DelayUtility>,
    verbose: bool,
) {
    println!(
        "policy {} over {trials} trials (utility {}):",
        agg.label,
        utility.kind()
    );
    println!("  mean observed utility : {:>10.5} /min", agg.mean_rate);
    println!(
        "  5–95% band            : {:>10.5} … {:.5}",
        agg.p5_rate, agg.p95_rate
    );
    println!("  transmissions/trial   : {:>10.1}", agg.mean_transmissions);
    if verbose {
        println!(
            "  immediate hits/trial  : {:>10.1}",
            agg.mean_immediate_hits
        );
        println!("  unfulfilled/trial     : {:>10.1}", agg.mean_unfulfilled);
        println!(
            "  mandates/trial        : {:>10.1}",
            agg.mean_mandates_created
        );
        println!(
            "  workers               : {:>10} ({:.0}% utilized)",
            agg.workers,
            agg.worker_utilization * 100.0
        );
        println!(
            "  wall time             : {:>10.3} s ({:.4} s/trial)",
            agg.wall_s, agg.mean_trial_wall_s
        );
        if let Some(stats) = stats {
            let get = |h: &str, q: &str| {
                stats
                    .get(h)
                    .and_then(|o| o.get(q))
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN)
            };
            println!(
                "  fulfillment delay     : p50 {:.1}  p95 {:.1}  p99 {:.1} min",
                get("fulfillment_delay", "p50"),
                get("fulfillment_delay", "p95"),
                get("fulfillment_delay", "p99")
            );
            println!(
                "  inter-contact         : mean {:.2} min (p95 {:.1})",
                get("inter_contact", "mean"),
                get("inter_contact", "p95")
            );
            if let Some(peak) = stats
                .get("peaks")
                .and_then(|o| o.get("open_requests"))
                .and_then(Json::as_u64)
            {
                println!("  peak open requests    : {peak:>10}");
            }
            if let Some(faults) = stats
                .get("counters")
                .and_then(|o| o.get("faults"))
                .and_then(Json::as_u64)
            {
                if faults > 0 {
                    println!("  fault events          : {faults:>10}");
                }
            }
        }
    }
}
