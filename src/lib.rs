//! # age-of-impatience
//!
//! A faithful, from-scratch Rust reproduction of **"The Age of Impatience:
//! Optimal Replication Schemes for Opportunistic Networks"** (Joshua Reich
//! & Augustin Chaintreau, CoNEXT 2009).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] (`impatience-core`) — delay-utility functions, social
//!   welfare, and optimal cache-allocation solvers;
//! * [`mobility`] (`impatience-mobility`) — 2-D mobility models and
//!   geometric contact detection;
//! * [`traces`] (`impatience-traces`) — contact-trace generation,
//!   statistics, resynthesis, and I/O;
//! * [`sim`] (`impatience-sim`) — the discrete-event simulator with the
//!   QCR replication protocol, mandate routing, and the fixed-allocation
//!   baselines;
//! * [`obs`] (`impatience-obs`) — zero-cost-when-disabled instrumentation:
//!   counters, delay histograms, JSONL event traces, and run manifests;
//! * [`oracle`] (`impatience-oracle`) — the differential verification
//!   oracle: brute-force optima for tiny instances, analytic-vs-Monte-Carlo
//!   cross checks, and the scenario conformance matrix behind
//!   `impatience verify`;
//! * [`json`] (`impatience-json`) — the dependency-free JSON value type
//!   the instrumentation and trace I/O are built on;
//! * [`exp`] (`impatience-exp`) — the declarative experiment pipeline:
//!   TOML scenario specs in `experiments/` compiled into simulation
//!   campaigns, behind `impatience reproduce`.
//!
//! ## Sixty-second tour
//!
//! ```
//! use age_of_impatience::prelude::*;
//!
//! // The paper's §6.2 setting: 50 pure-P2P nodes, 50 items, ρ = 5,
//! // homogeneous contacts at rate μ = 0.05, Pareto(ω = 1) popularity.
//! let system = SystemModel::pure_p2p(50, 5, 0.05);
//! let demand = Popularity::pareto(50, 1.0).demand_rates(1.0);
//! let utility = Step::new(10.0); // users give up after 10 time units
//!
//! // Exact optimal allocation and its social welfare.
//! let opt = greedy_homogeneous(&system, &demand, &utility);
//! let w_opt = social_welfare_homogeneous(&system, &demand, &utility, &opt.as_f64());
//!
//! // A heuristic competitor: square-root allocation.
//! let sqrt = sqrt_proportional(&demand, 50, 5);
//! let w_sqrt = social_welfare_homogeneous(&system, &demand, &utility, &sqrt.as_f64());
//! assert!(w_sqrt <= w_opt + 1e-12);
//! ```
//!
//! See `examples/` for end-to-end scenarios, including the paper's
//! "VideoForU" motivating deployment and trace-driven simulations.

pub use impatience_core as core;
pub use impatience_exp as exp;
pub use impatience_json as json;
pub use impatience_mobility as mobility;
pub use impatience_obs as obs;
pub use impatience_oracle as oracle;
pub use impatience_sim as sim;
pub use impatience_traces as traces;

pub mod prelude {
    //! Everything most programs need, in one import.
    pub use impatience_core::prelude::*;
    pub use impatience_sim::prelude::*;
    pub use impatience_traces::prelude::*;
}
